#include "src/cache/simulator.h"

#include <algorithm>
#include <cassert>

#include "src/util/stats.h"

namespace bsdtrace {

const char* WritePolicyName(WritePolicy policy) {
  switch (policy) {
    case WritePolicy::kWriteThrough:
      return "write-through";
    case WritePolicy::kFlushBack:
      return "flush-back";
    case WritePolicy::kDelayedWrite:
      return "delayed-write";
  }
  return "?";
}

std::string CacheConfig::ToString() const {
  std::string out = FormatBytes(static_cast<double>(size_bytes)) + " cache, " +
                    FormatBytes(block_size) + " blocks, " + WritePolicyName(policy);
  if (policy == WritePolicy::kFlushBack) {
    out += "(" + flush_interval.ToString() + ")";
  }
  if (replacement != ReplacementPolicy::kLru) {
    out += std::string(", ") + ReplacementPolicyName(replacement);
  }
  if (simulate_execve_pagein) {
    out += ", +page-in";
  }
  return out;
}

CacheSimulator::CacheSimulator(const CacheConfig& config) : level_(config) {}

void CacheSimulator::ReserveFiles(size_t file_count) {
  if (transfer_extent_feed_ == nullptr) {
    known_extent_.Reserve(file_count);
  }
  if (config().simulate_metadata) {
    meta_dirty_.reserve(file_count);
  }
}

void CacheSimulator::Access(SimTime now, FileId file, uint64_t offset, uint64_t length,
                            bool is_write) {
  if (length == 0) {
    return;
  }
  // One extent lookup per transfer, not per block: within the transfer the
  // table is untouched, so every block sees the same value ("no entry" reads
  // as extent 0 — every block is then beyond known data, as before).
  uint64_t* ext = known_extent_.Find(file);
  level_.AccessBlocks(now, file, offset, length, is_write, ext != nullptr ? *ext : 0);
  // Reads prove the data existed; writes create it: either way the file now
  // extends at least this far.
  if (ext != nullptr) {
    *ext = std::max(*ext, offset + length);
  } else {
    known_extent_[file] = offset + length;
  }
}

// Metadata approximation (§8 extension).  The trace carries no pathnames, so
// locality is modelled through file ids: i-nodes pack 16 per block of a
// reserved "i-node table" file, and files with nearby ids (created together,
// usually in the same directory) share a directory content block of 32
// entries.  Each open costs an i-node read plus a directory read; each close
// after writing costs an i-node write; unlinks write both.
namespace {
constexpr FileId kInodeTableFile = 1ull << 62;
constexpr FileId kDirectoryFile = (1ull << 62) + 1;
constexpr uint64_t kInodesPerBlock = 16;
constexpr uint64_t kDirEntriesPerBlock = 32;
// Metadata blocks always exist on disk: the reserved files behave as fully
// populated, so partial writes to them fetch first (read-modify-write).
// Passed straight to AccessBlock — the reserved ids never appear in
// transfers or invalidations, so they need no known_extent_ entries.
constexpr uint64_t kMetadataExtent = UINT64_MAX / 2;
}  // namespace

void CacheSimulator::MetadataAccess(SimTime now, FileId file, bool is_write) {
  level_.AdvanceClock(now);
  level_.mutable_metrics().metadata_accesses += 2;
  level_.AccessBlock(now, BlockKey{.file = kInodeTableFile, .index = file / kInodesPerBlock},
                     is_write, false, kMetadataExtent);
  level_.AccessBlock(now, BlockKey{.file = kDirectoryFile, .index = file / kDirEntriesPerBlock},
                     is_write, false, kMetadataExtent);
}

void CacheSimulator::InvalidateFrom(SimTime now, FileId file, uint64_t first_byte) {
  level_.Invalidate(now, file, first_byte);
  if (transfer_extent_feed_ != nullptr) {
    return;  // extent trajectory is precomputed in the feeds
  }
  if (first_byte == 0) {
    known_extent_.Erase(file);
  } else {
    if (uint64_t* extent = known_extent_.Find(file)) {
      *extent = std::min(*extent, first_byte);
    }
  }
}

void CacheSimulator::OnRecord(const TraceRecord& r) {
  if (config().simulate_metadata) {
    switch (r.type) {
      case EventType::kOpen:
        MetadataAccess(r.time, r.file_id, /*is_write=*/false);
        break;
      case EventType::kCreate:
        MetadataAccess(r.time, r.file_id, /*is_write=*/true);
        break;
      case EventType::kClose:
        if (meta_dirty_.erase(r.file_id) > 0) {
          // The i-node's size/mtime must reach disk eventually.
          level_.mutable_metrics().metadata_accesses += 1;
          level_.AccessBlock(r.time, BlockKey{.file = kInodeTableFile,
                                              .index = r.file_id / kInodesPerBlock},
                             /*is_write=*/true, false, kMetadataExtent);
        }
        break;
      case EventType::kUnlink:
        MetadataAccess(r.time, r.file_id, /*is_write=*/true);
        break;
      default:
        break;
    }
  }
  switch (r.type) {
    case EventType::kCreate:
      // The open created or zero-truncated the file: cached data is void.
      InvalidateFrom(r.time, r.file_id, 0);
      break;
    case EventType::kUnlink:
      InvalidateFrom(r.time, r.file_id, 0);
      break;
    case EventType::kTruncate:
      InvalidateFrom(r.time, r.file_id, r.size);
      break;
    case EventType::kExecve:
      // Fig. 7: demand page-in approximated as a whole-file read.  The feed
      // holds one slot per nonempty execve regardless of whether page-in is
      // simulated, so consume it either way to stay in sync.
      if (execve_extent_feed_ != nullptr) {
        if (r.size > 0) {
          const uint64_t extent = execve_extent_feed_[execve_feed_pos_++];
          if (config().simulate_execve_pagein) {
            level_.AccessBlocks(r.time, r.file_id, 0, r.size, /*is_write=*/false, extent);
          }
        }
      } else if (config().simulate_execve_pagein && r.size > 0) {
        Access(r.time, r.file_id, 0, r.size, /*is_write=*/false);
      }
      break;
    default:
      level_.AdvanceClock(r.time);
      break;
  }
}

// ---------------------------------------------------------------------------
// FusedCacheSimulator
// ---------------------------------------------------------------------------

FusedCacheSimulator::FusedCacheSimulator(const CacheConfig& base,
                                         const std::vector<PolicyLane>& lanes)
    : base_(base),
      lanes_(lanes),
      cache_(base.block_count(), base.replacement),
      lane_counters_(lanes.size()),
      next_flush_(lanes.size()),
      fb_pending_(lanes.size(), 0),
      written_(base.block_count(), 0),
      last_write_(base.block_count()) {
  assert(!base.simulate_metadata);
  assert(lanes_.size() >= 1 && lanes_.size() <= 8);
  for (size_t i = 0; i < lanes_.size(); ++i) {
    if (lanes_[i].policy == WritePolicy::kDelayedWrite) {
      delayed_lanes_.push_back(i);
    } else if (lanes_[i].policy == WritePolicy::kFlushBack) {
      flush_lanes_.push_back(i);
      next_flush_[i] = SimTime::Origin() + lanes_[i].flush_interval;
    }
  }
}

void FusedCacheSimulator::ReserveFiles(size_t file_count) {
  if (transfer_extent_feed_ == nullptr) {
    known_extent_.Reserve(file_count);
  }
}

void FusedCacheSimulator::RecordResidency(SimTime now, const CacheEntry& entry) {
  const double seconds = (now - entry.loaded).seconds();
  shared_.residency_seconds.Add(seconds);
  shared_.residency_samples += 1;
  if (seconds > 20.0 * 60.0) {
    shared_.residency_over_20min += 1;
  }
}

void FusedCacheSimulator::AccessBlock(SimTime now, const BlockKey& key, bool is_write,
                                      bool whole_block, uint64_t known_extent) {
  shared_.logical_accesses += 1;
  if (is_write) {
    shared_.write_accesses += 1;
  } else {
    shared_.read_accesses += 1;
  }

  CacheEntry* entry = cache_.Touch(key);
  if (entry == nullptr) {
    const uint64_t block_start = key.index * base_.block_size;
    const bool beyond_known_data = block_start >= known_extent;
    if (!(is_write && (whole_block || beyond_known_data))) {
      shared_.disk_reads += 1;
    }
    entry = cache_.Insert(key, now, [this, now](const CacheEntry& victim) {
      shared_.evictions += 1;
      RecordResidency(now, victim);
      const size_t slot = static_cast<size_t>(cache_.SlotOf(&victim));
      if (written_[slot] != 0) {
        for (const size_t lane : delayed_lanes_) {
          lane_counters_[lane].disk_writes += 1;  // eviction write-back
        }
        for (const size_t lane : flush_lanes_) {
          if (last_write_[slot] >= EpochStart(lane)) {
            // Dirty at eviction: the write happens now instead of at the
            // epoch boundary the pending counter was aimed at.
            fb_pending_[lane] -= 1;
            lane_counters_[lane].disk_writes += 1;
          }
        }
        written_[slot] = 0;
      }
    });
    cache_.Retouch(entry);
    written_[static_cast<size_t>(cache_.SlotOf(entry))] = 0;
  }

  if (is_write) {
    // Write-through lanes pay one disk write per write access (reconstructed
    // in LaneMetrics from write_accesses); the others derive dirtiness from
    // the slot's write state.  A flush-back lane owes one flush write per
    // clean->dirty transition in its epoch.
    const size_t slot = static_cast<size_t>(cache_.SlotOf(entry));
    for (const size_t lane : flush_lanes_) {
      if (written_[slot] == 0 || last_write_[slot] < EpochStart(lane)) {
        fb_pending_[lane] += 1;
      }
    }
    written_[slot] = 1;
    last_write_[slot] = now;
  }
}

void FusedCacheSimulator::Access(SimTime now, FileId file, uint64_t offset,
                                 uint64_t length, bool is_write) {
  if (length == 0) {
    return;
  }
  uint64_t* ext = known_extent_.Find(file);
  AccessBlocks(now, file, offset, length, is_write, ext != nullptr ? *ext : 0);
  if (ext != nullptr) {
    *ext = std::max(*ext, offset + length);
  } else {
    known_extent_[file] = offset + length;
  }
}

void FusedCacheSimulator::AccessBlocks(SimTime now, FileId file, uint64_t offset,
                                       uint64_t length, bool is_write, uint64_t extent) {
  AdvanceClock(now);
  const uint32_t bs = base_.block_size;
  const uint64_t first = offset / bs;
  const uint64_t last = (offset + length - 1) / bs;
  for (uint64_t b = first; b <= last; ++b) {
    const uint64_t block_start = b * bs;
    const uint64_t block_end = block_start + bs;
    const bool whole_block = is_write && offset <= block_start && offset + length >= block_end;
    AccessBlock(now, BlockKey{.file = file, .index = b}, is_write, whole_block, extent);
  }
}

void FusedCacheSimulator::InvalidateFrom(SimTime now, FileId file, uint64_t first_byte) {
  AdvanceClock(now);
  const uint64_t first_block = (first_byte + base_.block_size - 1) / base_.block_size;
  cache_.RemoveFileBlocks(file, first_block, [this, now](const CacheEntry& dropped) {
    RecordResidency(now, dropped);
    const size_t slot = static_cast<size_t>(cache_.SlotOf(&dropped));
    if (written_[slot] != 0) {
      for (const size_t lane : delayed_lanes_) {
        lane_counters_[lane].dirty_discarded += 1;  // never reaches disk
      }
      for (const size_t lane : flush_lanes_) {
        if (last_write_[slot] >= EpochStart(lane)) {
          fb_pending_[lane] -= 1;  // the owed flush write never happens
          lane_counters_[lane].dirty_discarded += 1;
        }
      }
      written_[slot] = 0;
    }
  });
  if (transfer_extent_feed_ != nullptr) {
    return;
  }
  if (first_byte == 0) {
    known_extent_.Erase(file);
  } else {
    if (uint64_t* extent = known_extent_.Find(file)) {
      *extent = std::min(*extent, first_byte);
    }
  }
}

void FusedCacheSimulator::OnRecord(const TraceRecord& r) {
  switch (r.type) {
    case EventType::kCreate:
    case EventType::kUnlink:
      InvalidateFrom(r.time, r.file_id, 0);
      break;
    case EventType::kTruncate:
      InvalidateFrom(r.time, r.file_id, r.size);
      break;
    case EventType::kExecve:
      if (execve_extent_feed_ != nullptr) {
        if (r.size > 0) {
          const uint64_t extent = execve_extent_feed_[execve_feed_pos_++];
          if (base_.simulate_execve_pagein) {
            AccessBlocks(r.time, r.file_id, 0, r.size, /*is_write=*/false, extent);
          }
        }
      } else if (base_.simulate_execve_pagein && r.size > 0) {
        Access(r.time, r.file_id, 0, r.size, /*is_write=*/false);
      }
      break;
    default:
      AdvanceClock(r.time);
      break;
  }
}

void FusedCacheSimulator::Finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  cache_.ForEach([this](CacheEntry& entry) { RecordResidency(now_, entry); });
}

CacheMetrics FusedCacheSimulator::LaneMetrics(size_t i) const {
  CacheMetrics m = shared_;
  if (lanes_[i].policy == WritePolicy::kWriteThrough) {
    m.disk_writes = shared_.write_accesses;  // one write-through per write access
    m.dirty_discarded = 0;
  } else {
    m.disk_writes = lane_counters_[i].disk_writes;
    m.dirty_discarded = lane_counters_[i].dirty_discarded;
  }
  return m;
}

}  // namespace bsdtrace
