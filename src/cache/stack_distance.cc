#include "src/cache/stack_distance.h"

#include <cassert>

#include "src/trace/trace.h"

namespace bsdtrace {

void StackDistanceProfile::EnsureCumulative() const {
  if (cumulative_valid_) {
    return;
  }
  cumulative_.assign(distance_counts_.size(), 0);
  uint64_t running = 0;
  for (size_t d = 0; d < distance_counts_.size(); ++d) {
    running += distance_counts_[d];
    cumulative_[d] = running;
  }
  cumulative_valid_ = true;
}

uint64_t StackDistanceProfile::MissesAt(uint64_t capacity_blocks) const {
  EnsureCumulative();
  // Hits: accesses with distance <= capacity.
  const size_t idx = static_cast<size_t>(
      std::min<uint64_t>(capacity_blocks, cumulative_.empty() ? 0 : cumulative_.size() - 1));
  const uint64_t hits = cumulative_.empty() ? 0 : cumulative_[idx];
  return total_accesses_ - hits;
}

double StackDistanceProfile::MissRatioAt(uint64_t capacity_blocks) const {
  if (total_accesses_ == 0) {
    return 0.0;
  }
  return static_cast<double>(MissesAt(capacity_blocks)) /
         static_cast<double>(total_accesses_);
}

StackDistanceAnalyzer::StackDistanceAnalyzer(uint32_t block_size) : block_size_(block_size) {
  assert(block_size >= 1);
  tree_.assign(1, 0);
}

void StackDistanceAnalyzer::BitAdd(size_t i, int delta) {
  for (; i < tree_.size(); i += i & (~i + 1)) {
    tree_[i] = static_cast<uint64_t>(static_cast<int64_t>(tree_[i]) + delta);
  }
}

uint64_t StackDistanceAnalyzer::BitPrefix(size_t i) const {
  uint64_t sum = 0;
  for (; i > 0; i -= i & (~i + 1)) {
    sum += tree_[i];
  }
  return sum;
}

void StackDistanceAnalyzer::AccessBlock(const BlockKey& key) {
  profile_.total_accesses_ += 1;
  profile_.cumulative_valid_ = false;

  // Grow the Fenwick tree to cover the new slot.
  if (next_slot_ >= tree_.size()) {
    tree_.resize(std::max<size_t>(tree_.size() * 2, next_slot_ + 1), 0);
    // Rebuild is unnecessary: resizing only appends zero nodes whose ranges
    // cover slots that have never been set... but Fenwick ranges of new nodes
    // include old slots, so rebuild from occupancy is required.  To avoid
    // that cost we instead rebuild via re-adding: cheap amortized because we
    // double.  Collect current occupancy from last_access_.
    std::fill(tree_.begin(), tree_.end(), 0);
    for (const auto& [block, slot] : last_access_) {
      BitAdd(slot, 1);
    }
  }

  auto it = last_access_.find(key);
  if (it == last_access_.end()) {
    profile_.cold_misses_ += 1;
  } else {
    // Distance = blocks accessed more recently than the previous access,
    // plus one for the block itself (1-based LRU stack position).
    const uint64_t occupied_total = BitPrefix(tree_.size() - 1);
    const uint64_t at_or_before = BitPrefix(it->second);
    const uint64_t distance = occupied_total - at_or_before + 1;
    if (profile_.distance_counts_.size() <= distance) {
      profile_.distance_counts_.resize(distance + 1, 0);
    }
    profile_.distance_counts_[distance] += 1;
    BitAdd(it->second, -1);
  }
  BitAdd(next_slot_, 1);
  last_access_[key] = next_slot_;
  per_file_[key.file][key.index] = next_slot_;
  ++next_slot_;
}

void StackDistanceAnalyzer::InvalidateFrom(FileId file, uint64_t first_byte) {
  auto pf = per_file_.find(file);
  if (pf == per_file_.end()) {
    return;
  }
  const uint64_t first_block = (first_byte + block_size_ - 1) / block_size_;
  std::vector<uint64_t> doomed;
  for (const auto& [index, slot] : pf->second) {
    if (index >= first_block) {
      doomed.push_back(index);
    }
  }
  for (uint64_t index : doomed) {
    const size_t slot = pf->second[index];
    BitAdd(slot, -1);
    last_access_.erase(BlockKey{.file = file, .index = index});
    pf->second.erase(index);
  }
  if (pf->second.empty()) {
    per_file_.erase(pf);
  }
}

void StackDistanceAnalyzer::OnTransfer(const Transfer& t) {
  if (t.length == 0) {
    return;
  }
  const uint64_t first = t.offset / block_size_;
  const uint64_t last = (t.offset + t.length - 1) / block_size_;
  for (uint64_t b = first; b <= last; ++b) {
    AccessBlock(BlockKey{.file = t.file_id, .index = b});
  }
}

void StackDistanceAnalyzer::OnRecord(const TraceRecord& r) {
  switch (r.type) {
    case EventType::kCreate:
    case EventType::kUnlink:
      InvalidateFrom(r.file_id, 0);
      break;
    case EventType::kTruncate:
      InvalidateFrom(r.file_id, r.size);
      break;
    default:
      break;
  }
}

StackDistanceProfile StackDistanceAnalyzer::Take() { return std::move(profile_); }

StackDistanceProfile ComputeStackDistances(const Trace& trace, uint32_t block_size) {
  StackDistanceAnalyzer analyzer(block_size);
  Reconstruct(trace, &analyzer);
  return analyzer.Take();
}

}  // namespace bsdtrace
