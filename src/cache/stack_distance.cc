#include "src/cache/stack_distance.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/trace/trace.h"

namespace bsdtrace {

void StackDistanceProfile::Finalize() {
  cumulative_.assign(distance_counts_.size(), 0);
  uint64_t running = 0;
  for (size_t d = 0; d < distance_counts_.size(); ++d) {
    running += distance_counts_[d];
    cumulative_[d] = running;
  }
  fetch_cumulative_.assign(fetch_distance_counts_.size(), 0);
  running = 0;
  for (size_t d = 0; d < fetch_distance_counts_.size(); ++d) {
    running += fetch_distance_counts_[d];
    fetch_cumulative_[d] = running;
  }
}

uint64_t StackDistanceProfile::HitsAt(const std::vector<uint64_t>& cumulative,
                                      uint64_t capacity) {
  if (cumulative.empty()) {
    return 0;
  }
  const size_t idx =
      static_cast<size_t>(std::min<uint64_t>(capacity, cumulative.size() - 1));
  return cumulative[idx];
}

uint64_t StackDistanceProfile::MissesAt(uint64_t capacity_blocks) const {
  return total_accesses_ - HitsAt(cumulative_, capacity_blocks);
}

double StackDistanceProfile::MissRatioAt(uint64_t capacity_blocks) const {
  if (total_accesses_ == 0) {
    return 0.0;
  }
  return static_cast<double>(MissesAt(capacity_blocks)) /
         static_cast<double>(total_accesses_);
}

uint64_t StackDistanceProfile::FetchMissesAt(uint64_t capacity_blocks) const {
  return fetch_accesses_ - HitsAt(fetch_cumulative_, capacity_blocks);
}

double StackDistanceProfile::FetchMissRatioAt(uint64_t capacity_blocks) const {
  if (total_accesses_ == 0) {
    return 0.0;
  }
  return static_cast<double>(FetchMissesAt(capacity_blocks)) /
         static_cast<double>(total_accesses_);
}

namespace {
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}
}  // namespace

StackDistanceAnalyzer::StackDistanceAnalyzer(uint32_t block_size, Options options)
    : block_size_(block_size),
      options_(options),
      block_slot_(BlockKey{}),
      file_head_(kInvalidFileId) {
  assert(block_size >= 1);
  slots_ = RoundUpPow2(std::max<size_t>(2, options_.initial_slots));
  tree_.assign(2 * slots_, LazyNode{});
  slot_block_.resize(slots_ + 1);
  slot_live_.assign(slots_ + 1, 0);
  slot_file_next_.assign(slots_ + 1, 0);
  slot_file_prev_.assign(slots_ + 1, 0);
}

// A lazy pair (add, hadd) means: the subtree's values were raised by `add` in
// total, and the running raise peaked at `hadd` (hadd >= max(add, 0): the
// pre-raise state counts).  Composing a later (a2, h2) onto an earlier
// (a1, h1) gives (a1 + a2, max(h1, a1 + h2)); applying to a leaf (v, hv)
// gives (v + add, max(hv, v + hadd)).
void StackDistanceAnalyzer::ApplyLazy(size_t node, int64_t add, int64_t hadd) {
  LazyNode& n = tree_[node];
  n.hadd = std::max(n.hadd, n.add + hadd);
  n.add += add;
}

void StackDistanceAnalyzer::PushDown(size_t node) {
  const LazyNode n = tree_[node];
  if (n.add == 0 && n.hadd == 0) {
    return;
  }
  ApplyLazy(2 * node, n.add, n.hadd);
  ApplyLazy(2 * node + 1, n.add, n.hadd);
  tree_[node] = LazyNode{};
}

void StackDistanceAnalyzer::RangeAdd(size_t l, size_t r, int64_t delta) {
  if (l > r) {
    return;
  }
  RangeAddRec(1, 1, slots_, l, r, delta);
}

void StackDistanceAnalyzer::RangeAddRec(size_t node, size_t node_l, size_t node_r,
                                        size_t l, size_t r, int64_t delta) {
  if (r < node_l || node_r < l) {
    return;
  }
  if (l <= node_l && node_r <= r) {
    ApplyLazy(node, delta, std::max<int64_t>(delta, 0));
    return;
  }
  // Push the node's pending (older) lazy down before a newer one can land in
  // its subtree — this keeps every root-to-leaf path's lazies ordered oldest
  // at the bottom, which is what the bottom-up composition in QuerySlot (and
  // the historic-max semantics) requires.
  PushDown(node);
  const size_t mid = node_l + (node_r - node_l) / 2;
  RangeAddRec(2 * node, node_l, mid, l, r, delta);
  RangeAddRec(2 * node + 1, mid + 1, node_r, l, r, delta);
}

std::pair<int64_t, int64_t> StackDistanceAnalyzer::QuerySlot(size_t s) const {
  // Walk leaf -> root, composing each ancestor's (strictly later) lazy onto
  // the accumulated leaf state.
  size_t node = s + slots_ - 1;
  int64_t v = tree_[node].add;
  int64_t hv = tree_[node].hadd;
  for (node >>= 1; node >= 1; node >>= 1) {
    hv = std::max(hv, v + tree_[node].hadd);
    v += tree_[node].add;
  }
  return {v, hv};
}

size_t StackDistanceAnalyzer::NewSlot(const BlockKey& key) {
  if (next_slot_ > slots_) {
    Compact();
  }
  const size_t s = next_slot_++;
  // The leaf is pristine: compaction zeroes the arrays, and no later RangeAdd
  // reaches slots at or above next_slot_ (every range ends below the newest
  // slot), so ancestors hold no lazy covering s either.
  slot_block_[s] = key;
  slot_live_[s] = 1;
  ++live_count_;
  return s;
}

void StackDistanceAnalyzer::Compact() {
  // Renumber live slots densely, preserving order (slot number = recency
  // rank), and restart every leaf's history at its current value.  Restarting
  // is sound: a re-access reads the historic max *since the previous access
  // to the same block*, and that access's slot was created after this
  // compaction or was renumbered here with its history carried over.
  std::vector<std::pair<BlockKey, std::pair<int64_t, int64_t>>> live;
  live.reserve(live_count_);
  for (size_t s = 1; s < next_slot_; ++s) {
    if (slot_live_[s]) {
      live.emplace_back(slot_block_[s], QuerySlot(s));
    }
  }
  while (live.size() + 1 > slots_ / 2) {
    slots_ *= 2;
  }
  tree_.assign(2 * slots_, LazyNode{});
  slot_block_.assign(slots_ + 1, BlockKey{});
  slot_live_.assign(slots_ + 1, 0);
  slot_file_next_.assign(slots_ + 1, 0);
  slot_file_prev_.assign(slots_ + 1, 0);
  block_slot_ = FlatMap<BlockKey, size_t, BlockKeyHash>(BlockKey{}, 2 * (live.size() + 1));
  file_head_ = FlatMap<FileId, size_t, IdHash>(kInvalidFileId);
  for (size_t i = 0; i < live.size(); ++i) {
    const size_t s = i + 1;
    const size_t leaf = s + slots_ - 1;
    tree_[leaf].add = live[i].second.first;
    tree_[leaf].hadd = live[i].second.second;
    slot_block_[s] = live[i].first;
    slot_live_[s] = 1;
    block_slot_[live[i].first] = s;
    LinkSlot(s, live[i].first.file);
  }
  next_slot_ = live.size() + 1;
  live_count_ = live.size();
}

void StackDistanceAnalyzer::LinkSlot(size_t slot, FileId file) {
  size_t& head = file_head_[file];
  slot_file_next_[slot] = head;
  slot_file_prev_[slot] = 0;
  if (head != 0) {
    slot_file_prev_[head] = slot;
  }
  head = slot;
}

void StackDistanceAnalyzer::KillSlot(size_t slot) {
  RangeAdd(1, slot - 1, -1);
  slot_live_[slot] = 0;
  --live_count_;
}

void StackDistanceAnalyzer::AccessBlock(const BlockKey& key, bool is_write,
                                        bool whole_block, uint64_t known_extent) {
  profile_.total_accesses_ += 1;
  if (is_write) {
    profile_.write_accesses_ += 1;
  } else {
    profile_.read_accesses_ += 1;
  }
  // Mirror of CacheSimulator::AccessBlock's fetch predicate: a miss costs a
  // disk read unless the access overwrites the whole block or lies beyond the
  // file's known data.  The predicate is capacity-independent, so one flag
  // per access suffices for every cache size.
  const uint64_t block_start = key.index * block_size_;
  const bool needs_fetch = !(is_write && (whole_block || block_start >= known_extent));
  if (needs_fetch) {
    profile_.fetch_accesses_ += 1;
  }

  size_t* slot_ref = block_slot_.Find(key);
  if (slot_ref == nullptr) {
    profile_.cold_misses_ += 1;
    if (needs_fetch) {
      profile_.fetch_cold_misses_ += 1;
    }
    const size_t s = NewSlot(key);
    // NewSlot may compact, rebuilding the map and chains — index afterwards.
    block_slot_[key] = s;
    LinkSlot(s, key.file);
    RangeAdd(1, s - 1, 1);
    return;
  }

  // Re-access: the effective distance is 1 + the maximum number of distinct
  // live blocks that stood above this one at any point since its previous
  // access — exactly the occupancy threshold at which a C-block LRU cache
  // evicts it (see header).
  const size_t s0 = *slot_ref;
  const auto [v, hv] = QuerySlot(s0);
  (void)v;
  const uint64_t distance = static_cast<uint64_t>(hv) + 1;
  if (profile_.distance_counts_.size() <= distance) {
    profile_.distance_counts_.resize(distance + 1, 0);
  }
  profile_.distance_counts_[distance] += 1;
  if (needs_fetch) {
    if (profile_.fetch_distance_counts_.size() <= distance) {
      profile_.fetch_distance_counts_.resize(distance + 1, 0);
    }
    profile_.fetch_distance_counts_[distance] += 1;
  }

  // Move to the top of the stack.  Retiring slot s0 subtracts 1 below s0 and
  // the fresh top slot adds 1 below itself; on [1, s0 - 1] the pair cancels
  // for the current value AND the historic max (hv >= v always, so the
  // transient v - 1 then back to v peaks at v <= hv), leaving a single net
  // +1 on the slots strictly between the two.
  slot_live_[s0] = 0;
  --live_count_;
  if (next_slot_ <= slots_) {
    const size_t s = next_slot_++;
    slot_block_[s] = key;
    slot_live_[s] = 1;
    ++live_count_;
    *slot_ref = s;  // no insert/erase happened: the Find pointer is valid
    // Splice the fresh slot into s0's position in its file chain.
    const size_t prev = slot_file_prev_[s0];
    const size_t next = slot_file_next_[s0];
    slot_file_prev_[s] = prev;
    slot_file_next_[s] = next;
    if (prev != 0) {
      slot_file_next_[prev] = s;
    } else {
      *file_head_.Find(key.file) = s;
    }
    if (next != 0) {
      slot_file_prev_[next] = s;
    }
    RangeAdd(s0 + 1, s - 1, 1);
  } else {
    // Compaction pending: the merged range would straddle the renumbering,
    // so apply the retire-then-create pair explicitly.  The -1 must land
    // before Compact() snapshots the leaves; the rebuild then drops dead s0
    // from the map and chains, and the insertions below are fresh.
    RangeAdd(1, s0 - 1, -1);
    const size_t s = NewSlot(key);
    block_slot_[key] = s;
    LinkSlot(s, key.file);
    RangeAdd(1, s - 1, 1);
  }
}

void StackDistanceAnalyzer::AccessBlocks(const Transfer& t, uint64_t extent) {
  const bool is_write = t.direction == TransferDirection::kWrite;
  const uint64_t first = t.offset / block_size_;
  const uint64_t last = (t.offset + t.length - 1) / block_size_;
  for (uint64_t b = first; b <= last; ++b) {
    const uint64_t block_start = b * block_size_;
    const uint64_t block_end = block_start + block_size_;
    const bool whole_block =
        is_write && t.offset <= block_start && t.offset + t.length >= block_end;
    AccessBlock(BlockKey{.file = t.file_id, .index = b}, is_write, whole_block, extent);
  }
}

void StackDistanceAnalyzer::OnTransfer(const Transfer& t) {
  if (transfer_extent_feed_ != nullptr) {
    // One feed slot per transfer, zero-length included (same contract as
    // CacheSimulator::OnTransfer).
    const uint64_t extent = transfer_extent_feed_[transfer_feed_pos_++];
    if (t.length > 0) {
      AccessBlocks(t, extent);
    }
    return;
  }
  if (t.length == 0) {
    return;
  }
  const auto ext = known_extent_.find(t.file_id);
  AccessBlocks(t, ext != known_extent_.end() ? ext->second : 0);
  if (ext != known_extent_.end()) {
    ext->second = std::max(ext->second, t.offset + t.length);
  } else {
    known_extent_[t.file_id] = t.offset + t.length;
  }
}

void StackDistanceAnalyzer::OnRecord(const TraceRecord& r) {
  switch (r.type) {
    case EventType::kCreate:
    case EventType::kUnlink:
      InvalidateFrom(r.file_id, 0);
      break;
    case EventType::kTruncate:
      InvalidateFrom(r.file_id, r.size);
      break;
    case EventType::kExecve:
      if (execve_extent_feed_ != nullptr) {
        if (r.size > 0) {
          const uint64_t extent = execve_extent_feed_[execve_feed_pos_++];
          if (options_.simulate_execve_pagein) {
            Transfer t;
            t.file_id = r.file_id;
            t.direction = TransferDirection::kRead;
            t.offset = 0;
            t.length = r.size;
            AccessBlocks(t, extent);
          }
        }
      } else if (options_.simulate_execve_pagein && r.size > 0) {
        Transfer t;
        t.file_id = r.file_id;
        t.direction = TransferDirection::kRead;
        t.offset = 0;
        t.length = r.size;
        OnTransfer(t);
      }
      break;
    default:
      break;
  }
}

void StackDistanceAnalyzer::InvalidateFrom(FileId file, uint64_t first_byte) {
  size_t* head = file_head_.Find(file);
  if (head != nullptr) {
    const uint64_t first_block = (first_byte + block_size_ - 1) / block_size_;
    size_t s = *head;
    while (s != 0) {
      const size_t next = slot_file_next_[s];
      if (slot_block_[s].index >= first_block) {
        // A true stack deletion: every slot below the victim loses one block
        // from its over-stack count.  Order among the doomed is immaterial —
        // the adds are all negative, so no spurious peak can form.
        KillSlot(s);
        block_slot_.Erase(slot_block_[s]);
        const size_t prev = slot_file_prev_[s];
        if (prev != 0) {
          slot_file_next_[prev] = next;
        } else {
          *head = next;  // file_head_ untouched since Find: pointer valid
        }
        if (next != 0) {
          slot_file_prev_[next] = prev;
        }
      }
      s = next;
    }
    if (*head == 0) {
      file_head_.Erase(file);
    }
  }
  if (transfer_extent_feed_ != nullptr) {
    return;  // extent trajectory is precomputed in the feeds
  }
  if (first_byte == 0) {
    known_extent_.erase(file);
  } else {
    const auto ext = known_extent_.find(file);
    if (ext != known_extent_.end()) {
      ext->second = std::min(ext->second, first_byte);
    }
  }
}

StackDistanceProfile StackDistanceAnalyzer::Take() {
  profile_.Finalize();
  return std::move(profile_);
}

StackDistanceProfile ComputeStackDistances(const Trace& trace, uint32_t block_size,
                                           StackDistanceAnalyzer::Options options) {
  StackDistanceAnalyzer analyzer(block_size, options);
  Reconstruct(trace, &analyzer);
  return analyzer.Take();
}

}  // namespace bsdtrace
