#include "src/cache/block_cache.h"

namespace bsdtrace {

const char* ReplacementPolicyName(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kLru:
      return "LRU";
    case ReplacementPolicy::kFifo:
      return "FIFO";
    case ReplacementPolicy::kClock:
      return "clock";
  }
  return "?";
}

BlockCache::BlockCache(uint64_t capacity_blocks, ReplacementPolicy policy)
    : capacity_(capacity_blocks),
      policy_(policy),
      map_(BlockKey{}, capacity_blocks * 2),
      file_head_(kInvalidFileId, capacity_blocks / 2 + 16) {
  assert(capacity_blocks >= 1);
  // The slab never holds more than capacity_ entries, and both flat maps are
  // sized for that bound up front, so the steady state is allocation-free.
  slab_.reserve(capacity_blocks);
}

}  // namespace bsdtrace
