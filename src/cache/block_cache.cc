#include "src/cache/block_cache.h"

#include <cassert>
#include <iterator>

namespace bsdtrace {

const char* ReplacementPolicyName(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kLru:
      return "LRU";
    case ReplacementPolicy::kFifo:
      return "FIFO";
    case ReplacementPolicy::kClock:
      return "clock";
  }
  return "?";
}

BlockCache::BlockCache(uint64_t capacity_blocks, ReplacementPolicy policy)
    : capacity_(capacity_blocks), policy_(policy) {
  assert(capacity_blocks >= 1);
  map_.reserve(capacity_blocks * 2);
}

CacheEntry* BlockCache::Touch(const BlockKey& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    return nullptr;
  }
  switch (policy_) {
    case ReplacementPolicy::kLru:
      lru_.splice(lru_.begin(), lru_, it->second);
      break;
    case ReplacementPolicy::kFifo:
      break;  // reuse does not affect replacement order
    case ReplacementPolicy::kClock:
      it->second->referenced = true;
      break;
  }
  return &*it->second;
}

CacheEntry BlockCache::PopVictim() {
  if (policy_ == ReplacementPolicy::kClock) {
    // Second chance: sweep from the tail, sparing referenced blocks once.
    while (lru_.back().referenced) {
      lru_.back().referenced = false;
      lru_.splice(lru_.begin(), lru_, std::prev(lru_.end()));
    }
  }
  CacheEntry victim = lru_.back();
  lru_.pop_back();
  return victim;
}

void BlockCache::Insert(const BlockKey& key, SimTime now,
                        const std::function<void(const CacheEntry&)>& on_evict) {
  assert(map_.find(key) == map_.end());
  if (map_.size() >= capacity_) {
    const CacheEntry victim = PopVictim();
    if (victim.dirty) {
      NoteCleaned();
    }
    on_evict(victim);
    auto pf = per_file_.find(victim.key.file);
    assert(pf != per_file_.end());
    pf->second.erase(victim.key.index);
    if (pf->second.empty()) {
      per_file_.erase(pf);
    }
    map_.erase(victim.key);
  }
  lru_.push_front(CacheEntry{.key = key, .dirty = false, .referenced = false, .loaded = now,
                             .dirtied = now});
  map_[key] = lru_.begin();
  per_file_[key.file][key.index] = lru_.begin();
}

void BlockCache::Remove(const BlockKey& key,
                        const std::function<void(const CacheEntry&)>& on_drop) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    return;
  }
  if (it->second->dirty) {
    NoteCleaned();
  }
  on_drop(*it->second);
  auto pf = per_file_.find(key.file);
  if (pf != per_file_.end()) {
    pf->second.erase(key.index);
    if (pf->second.empty()) {
      per_file_.erase(pf);
    }
  }
  lru_.erase(it->second);
  map_.erase(it);
}

void BlockCache::RemoveFileBlocks(FileId file, uint64_t first_index,
                                  const std::function<void(const CacheEntry&)>& on_drop) {
  auto pf = per_file_.find(file);
  if (pf == per_file_.end()) {
    return;
  }
  // Collect first: Remove() mutates the per-file index.
  std::vector<BlockKey> doomed;
  doomed.reserve(pf->second.size());
  for (const auto& [index, iter] : pf->second) {
    if (index >= first_index) {
      doomed.push_back(BlockKey{.file = file, .index = index});
    }
  }
  for (const BlockKey& key : doomed) {
    Remove(key, on_drop);
  }
}

void BlockCache::ForEach(const std::function<void(CacheEntry&)>& fn) {
  for (CacheEntry& entry : lru_) {
    fn(entry);
  }
}

}  // namespace bsdtrace
