// One-pass LRU stack-distance analysis (Mattson et al., 1970), exact under
// invalidations.
//
// Replaying a trace once per candidate cache size (as the paper's simulator
// and CacheSimulator do) costs a full pass per point on the Figure 5 curve.
// Because LRU has the stack-inclusion property, a single pass that records
// each access's *stack distance* — the number of distinct blocks touched
// since the previous access to the same block — yields the miss count for
// every cache size simultaneously: an access hits in a cache of C blocks
// iff its stack distance is at most C.
//
// Invalidations (unlink/truncate/overwrite) remove blocks from the stack.
// A plain "current distance" is then too small: a deletion shrinks the
// number of blocks above a victim *after* a small cache may already have
// evicted it, so the naive analysis is optimistic.  Eviction is permanent,
// so the exact hit condition uses the *maximum interim* distance: an access
// to block x with reuse interval I hits in a cache of C blocks iff
//
//     max over τ in I of D(τ) < C,
//
// where D(τ) counts the distinct still-live blocks accessed since x's
// previous access.  (x is evicted from a C-block LRU cache exactly when D
// first reaches C: while x is resident every such block is resident above
// it, so the insertion raising D to C finds the cache full with x at the
// tail.)  This pass tracks D per live block with a historic-max segment
// tree over stack slots — range add ±1, point query of (current, historic
// max) — making MissesAt()/FetchMissesAt() bit-identical to CacheSimulator
// at every capacity, invalidations included (property-tested).
//
// Scope: exact LRU *fetch* (disk-read) and content-miss counts; write-policy
// disk writes remain capacity-and-policy coupled — pair with the replay
// engine (sweep.h) when write traffic matters.  Memory is O(live blocks):
// the slot space is compacted whenever the appended-slot region fills.
//
// Implementation: O(log S) per access, S = compacted slot-space size.

#ifndef BSDTRACE_SRC_CACHE_STACK_DISTANCE_H_
#define BSDTRACE_SRC_CACHE_STACK_DISTANCE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/cache/block_cache.h"
#include "src/trace/reconstruct.h"
#include "src/util/flat_map.h"

namespace bsdtrace {

// The distance profile produced by a pass.  Finalized (prefix sums built) by
// StackDistanceAnalyzer::Take(); afterwards every accessor is const and safe
// to call concurrently from many threads.
class StackDistanceProfile {
 public:
  // Content misses a cache of `capacity_blocks` would take on the analyzed
  // stream: cold misses, capacity misses, and invalidation-induced re-entries
  // — every block access that finds its block absent, whether or not the
  // absence costs a disk read.
  uint64_t MissesAt(uint64_t capacity_blocks) const;
  // Content-miss ratio at the given capacity.
  double MissRatioAt(uint64_t capacity_blocks) const;

  // Disk reads a CacheSimulator with LRU replacement and this block size
  // would issue at the given capacity — bit-identical to
  // CacheMetrics::disk_reads for every capacity and any write policy (write
  // policy moves disk *writes* only).  Excludes the misses that install
  // without a fetch: whole-block overwrites and writes beyond the file's
  // known extent.
  uint64_t FetchMissesAt(uint64_t capacity_blocks) const;
  // Fetch misses per block access at the given capacity.
  double FetchMissRatioAt(uint64_t capacity_blocks) const;

  uint64_t total_accesses() const { return total_accesses_; }
  uint64_t read_accesses() const { return read_accesses_; }
  uint64_t write_accesses() const { return write_accesses_; }
  // Accesses that miss at every capacity: first touches plus re-accesses of
  // invalidated blocks.
  uint64_t cold_misses() const { return cold_misses_; }
  // Accesses needing a disk read on miss (see FetchMissesAt).
  uint64_t fetch_accesses() const { return fetch_accesses_; }
  // Histogram: counts[d] = accesses with effective stack distance exactly d
  // (1-based; index 0 unused).  The effective distance is the maximum
  // interim distance, so on invalidation-free streams it equals the classic
  // Mattson distance.
  const std::vector<uint64_t>& distance_counts() const { return distance_counts_; }

 private:
  friend class StackDistanceAnalyzer;

  // Builds the prefix-sum tables; called once by Take().
  void Finalize();
  static uint64_t HitsAt(const std::vector<uint64_t>& cumulative, uint64_t capacity);

  std::vector<uint64_t> distance_counts_{0};
  std::vector<uint64_t> fetch_distance_counts_{0};
  uint64_t total_accesses_ = 0;
  uint64_t read_accesses_ = 0;
  uint64_t write_accesses_ = 0;
  uint64_t cold_misses_ = 0;
  uint64_t fetch_accesses_ = 0;
  uint64_t fetch_cold_misses_ = 0;
  // Prefix sums of the histograms, built in Finalize() (never lazily: const
  // accessors must be safe from concurrent sweep workers).
  std::vector<uint64_t> cumulative_;
  std::vector<uint64_t> fetch_cumulative_;
};

// Streaming analyzer; feed via Reconstruct() like CacheSimulator, or stream a
// ReplayLog's data events into it (see sweep.cc).  Mirrors CacheSimulator's
// access-stream generation exactly: block splitting, whole-block overwrite
// detection, known-extent tracking (table-maintained or feed-driven), and
// optional execve page-in.
class StackDistanceAnalyzer final : public ReconstructionSink {
 public:
  struct Options {
    // Fig. 7: treat each execve as a whole-file read of the program file.
    bool simulate_execve_pagein = false;
    // Initial slot-space capacity (testing knob: small values force frequent
    // compactions).  Rounded up to a power of two.
    size_t initial_slots = 1024;
  };

  // (Two overloads rather than a defaulted Options argument: a nested class's
  // default member initializers are not usable in default arguments of the
  // enclosing class.)
  explicit StackDistanceAnalyzer(uint32_t block_size)
      : StackDistanceAnalyzer(block_size, Options()) {}
  StackDistanceAnalyzer(uint32_t block_size, Options options);

  // Replay fast path: consume the ReplayLog's precomputed known-extent feeds
  // instead of maintaining the extent table (same contract as
  // CacheSimulator::SetExtentFeeds).  Call before streaming any events; the
  // arrays must outlive the analyzer.
  void SetExtentFeeds(const uint64_t* transfer_feed, const uint64_t* execve_feed) {
    transfer_extent_feed_ = transfer_feed;
    execve_extent_feed_ = execve_feed;
  }

  void OnTransfer(const Transfer& transfer) override;
  void OnRecord(const TraceRecord& record) override;

  // Finalizes and returns the profile; the analyzer is spent afterwards.
  StackDistanceProfile Take();

 private:
  // -- Historic-max segment tree over stack slots ---------------------------
  // Leaf s holds (value, historic max) of D for the block whose last access
  // occupies slot s; internal nodes hold lazy (add, historic max add) pairs.
  void RangeAdd(size_t l, size_t r, int64_t delta);  // inclusive, 1-based
  void RangeAddRec(size_t node, size_t node_l, size_t node_r, size_t l, size_t r,
                   int64_t delta);
  // (current, historic max) at slot s, accounting for pending lazies.
  std::pair<int64_t, int64_t> QuerySlot(size_t s) const;
  void ApplyLazy(size_t node, int64_t add, int64_t hadd);
  void PushDown(size_t node);

  // Renumbers live slots densely (growing the slot space if more than half
  // full) and rebuilds the tree, maps, and slot metadata.
  void Compact();
  size_t NewSlot(const BlockKey& key);

  void AccessBlock(const BlockKey& key, bool is_write, bool whole_block,
                   uint64_t known_extent);
  void AccessBlocks(const Transfer& t, uint64_t extent);
  void InvalidateFrom(FileId file, uint64_t first_byte);
  void KillSlot(size_t slot);  // removes a live slot from the stack
  void LinkSlot(size_t slot, FileId file);  // pushes slot onto file's chain

  uint32_t block_size_;
  Options options_;
  StackDistanceProfile profile_;
  // Block -> slot of its most recent access (1-based): a single
  // open-addressing probe per access (the nested per-file map it replaces
  // cost two node-chasing lookups).
  FlatMap<BlockKey, size_t, BlockKeyHash> block_slot_;
  // Intrusive per-file slot chains for range invalidation: head per file,
  // next/prev links indexed by slot (0 = end), mirroring BlockCache's file
  // chains.
  FlatMap<FileId, size_t, IdHash> file_head_;
  std::vector<size_t> slot_file_next_, slot_file_prev_;
  // Segment tree, sized 2 * slots_: internal lazy (add, hadd) pairs in
  // [1, slots_), leaf (value, hist max) pairs in [slots_, 2 * slots_).  One
  // interleaved node array: every tree touch reads both fields, so splitting
  // them would double the cache lines per walk.
  struct LazyNode {
    int64_t add = 0;
    int64_t hadd = 0;
  };
  std::vector<LazyNode> tree_;
  size_t slots_ = 0;       // leaf count (power of two)
  size_t next_slot_ = 1;   // next unused slot (1-based; slot 0 unused)
  std::vector<BlockKey> slot_block_;  // slot -> block key (valid when live)
  std::vector<uint8_t> slot_live_;
  size_t live_count_ = 0;

  // Highest data offset seen per file (unused when extent feeds are set);
  // mirrors CacheSimulator::known_extent_.
  std::unordered_map<FileId, uint64_t> known_extent_;
  const uint64_t* transfer_extent_feed_ = nullptr;
  const uint64_t* execve_extent_feed_ = nullptr;
  size_t transfer_feed_pos_ = 0;
  size_t execve_feed_pos_ = 0;
};

// Convenience: analyze a whole trace.
StackDistanceProfile ComputeStackDistances(const Trace& trace, uint32_t block_size,
                                           StackDistanceAnalyzer::Options options = {});

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_CACHE_STACK_DISTANCE_H_
