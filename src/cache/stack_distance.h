// One-pass LRU stack-distance analysis (Mattson et al., 1970).
//
// Replaying a trace once per candidate cache size (as the paper's simulator
// and CacheSimulator do) costs a full pass per point on the Figure 5 curve.
// Because LRU has the stack-inclusion property, a single pass that records
// each access's *stack distance* — the number of distinct blocks touched
// since the previous access to the same block — yields the fetch miss count
// for every cache size simultaneously: an access hits in a cache of C blocks
// iff its stack distance is at most C.
//
// Scope: this predicts *fetch* (read) misses under LRU replacement, exactly
// matching CacheSimulator on streams without invalidations (property-tested).
// Invalidations (unlink/truncate/overwrite) remove blocks from the stack;
// because removal breaks the LRU inclusion property, predictions on traces
// with invalidations are slightly optimistic (a few percent low).  Write-
// policy disk writes are out of scope — pair with CacheSimulator when write
// traffic matters.
//
// Implementation: Fenwick tree over access timestamps; O(log n) per access.

#ifndef BSDTRACE_SRC_CACHE_STACK_DISTANCE_H_
#define BSDTRACE_SRC_CACHE_STACK_DISTANCE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/cache/block_cache.h"
#include "src/trace/reconstruct.h"

namespace bsdtrace {

// The distance profile produced by a pass.
class StackDistanceProfile {
 public:
  // Misses a cache of `capacity_blocks` would take on the analyzed stream
  // (cold + capacity misses; invalidation-induced re-fetches included).
  uint64_t MissesAt(uint64_t capacity_blocks) const;
  // Fetch miss ratio at the given capacity.
  double MissRatioAt(uint64_t capacity_blocks) const;

  uint64_t total_accesses() const { return total_accesses_; }
  uint64_t cold_misses() const { return cold_misses_; }
  // Histogram: counts[d] = accesses with stack distance exactly d (1-based;
  // index 0 unused).
  const std::vector<uint64_t>& distance_counts() const { return distance_counts_; }

 private:
  friend class StackDistanceAnalyzer;
  void EnsureCumulative() const;

  std::vector<uint64_t> distance_counts_{0};
  uint64_t total_accesses_ = 0;
  uint64_t cold_misses_ = 0;
  // Lazily-built prefix sums of distance_counts_.
  mutable std::vector<uint64_t> cumulative_;
  mutable bool cumulative_valid_ = false;
};

// Streaming analyzer; feed via Reconstruct() like CacheSimulator.
class StackDistanceAnalyzer : public ReconstructionSink {
 public:
  explicit StackDistanceAnalyzer(uint32_t block_size);

  void OnTransfer(const Transfer& transfer) override;
  void OnRecord(const TraceRecord& record) override;

  StackDistanceProfile Take();

 private:
  // Fenwick tree over access slots.
  void BitAdd(size_t i, int delta);
  uint64_t BitPrefix(size_t i) const;  // sum of [1..i]

  void AccessBlock(const BlockKey& key);
  void InvalidateFrom(FileId file, uint64_t first_byte);

  uint32_t block_size_;
  StackDistanceProfile profile_;
  // Block -> slot of its most recent access (1-based Fenwick indices).
  std::unordered_map<BlockKey, size_t, BlockKeyHash> last_access_;
  // Per-file index of cached block slots, for invalidation.
  std::unordered_map<FileId, std::unordered_map<uint64_t, size_t>> per_file_;
  std::vector<uint64_t> tree_;  // Fenwick tree of slot occupancy
  size_t next_slot_ = 1;
};

// Convenience: analyze a whole trace.
StackDistanceProfile ComputeStackDistances(const Trace& trace, uint32_t block_size);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_CACHE_STACK_DISTANCE_H_
