// Trace-driven disk-block cache simulation (paper §6).
//
// The simulator consumes reconstructed byte-range transfers, splits each into
// block accesses (the paper assumed programs request in units of the cache
// block size), and counts disk operations under a configurable write policy:
//
//   write-through — every write access also writes the block to disk;
//   flush-back(T) — the cache is scanned every T; dirty blocks are written;
//   delayed-write — dirty blocks are written only when evicted.
//
// Disk reads happen on misses, except when the access will overwrite the
// whole block, or when the block lies beyond all data previously seen for
// the file (newly-written data has nothing on disk to fetch).  Unlinks,
// truncations, and whole-file overwrites drop the file's cached blocks;
// dirty blocks dropped this way are never written — the effect that makes
// large delayed-write caches absorb most writes entirely.
//
// The principal metric is the miss ratio: disk I/Os per logical block access.
//
// The per-block mechanics live in CacheLevel (cache_level.h), the reusable
// level the §7 client/server hierarchy stacks (hierarchy.h).  CacheSimulator
// is the one-level instantiation — CacheLevel<DiskBelow> plus the trace
// semantics: known-extent tracking (table or precomputed feeds), which
// records invalidate, execve page-in, and the §8 metadata approximation.

#ifndef BSDTRACE_SRC_CACHE_SIMULATOR_H_
#define BSDTRACE_SRC_CACHE_SIMULATOR_H_

#include <string>
#include <unordered_set>

#include "src/cache/block_cache.h"
#include "src/cache/cache_level.h"
#include "src/util/flat_map.h"
#include "src/trace/reconstruct.h"
#include "src/util/stats.h"

namespace bsdtrace {

// `final` so that statically-typed drivers (ReplayLog::ReplayInto) call the
// sink methods without virtual dispatch.
class CacheSimulator final : public ReconstructionSink {
 public:
  explicit CacheSimulator(const CacheConfig& config);

  // Pre-sizes the per-file hash tables for a trace touching `file_count`
  // distinct files (e.g. ReplayLog::distinct_files()).  Purely an allocation
  // hint: metrics are identical with or without it.
  void ReserveFiles(size_t file_count);

  // Replay fast path (ReplayLog): known extents precomputed per transfer and
  // per nonempty execve, consumed sequentially instead of maintained in the
  // known_extent_ table.  Call before streaming any events (and before
  // ReserveFiles); the arrays must outlive the simulator.  Metrics are
  // bit-identical — the feeds carry the exact values the table would hold.
  void SetExtentFeeds(const uint64_t* transfer_feed, const uint64_t* execve_feed) {
    transfer_extent_feed_ = transfer_feed;
    execve_extent_feed_ = execve_feed;
  }

  // ReconstructionSink: transfers drive block accesses; create/unlink/
  // truncate records invalidate; execve optionally injects page-in reads.
  // OnTransfer is inline — it runs once per reconstructed transfer.
  void OnTransfer(const Transfer& t) override {
    const bool is_write = t.direction == TransferDirection::kWrite;
    if (transfer_extent_feed_ != nullptr) {
      // The feed holds one slot per transfer, so consume it even for the
      // zero-length transfers Access() would ignore.
      const uint64_t extent = transfer_extent_feed_[transfer_feed_pos_++];
      if (t.length > 0) {
        level_.AccessBlocks(t.time, t.file_id, t.offset, t.length, is_write, extent);
      }
    } else {
      Access(t.time, t.file_id, t.offset, t.length, is_write);
    }
    if (config().simulate_metadata && is_write) {
      meta_dirty_.insert(t.file_id);
    }
  }
  void OnRecord(const TraceRecord& record) override;

  // Finalizes residency statistics for blocks still cached.  Dirty blocks
  // still in the cache are NOT charged as disk writes (the trace simply
  // ended; the paper's metric does likewise).
  void Finish() { level_.Finish(); }

  const CacheMetrics& metrics() const { return level_.metrics(); }
  const CacheConfig& config() const { return level_.config(); }

 private:
  // Extent-table-maintaining path (direct simulation).
  void Access(SimTime now, FileId file, uint64_t offset, uint64_t length, bool is_write);
  // Injects the i-node/directory accesses implied by a namespace operation.
  void MetadataAccess(SimTime now, FileId file, bool is_write);
  // Drops cached blocks via the level, then updates the extent table (a
  // no-op when feeds carry the precomputed trajectory).
  void InvalidateFrom(SimTime now, FileId file, uint64_t first_byte);

  CacheLevel<DiskBelow> level_;
  // Highest data offset seen per file: writes beyond it fetch nothing.
  // Unused (empty) when extent feeds are set.
  FlatMap<FileId, uint64_t, IdHash> known_extent_{kInvalidFileId};
  const uint64_t* transfer_extent_feed_ = nullptr;
  const uint64_t* execve_extent_feed_ = nullptr;
  size_t transfer_feed_pos_ = 0;
  size_t execve_feed_pos_ = 0;
  // Files with writes since their last close (i-node must be rewritten).
  std::unordered_set<FileId> meta_dirty_;
};

// Simulates one cache under several write policies in a single replay.
//
// Write policy never changes which blocks are resident: residency evolves
// through Touch/Insert/invalidate alone, so the access stream, hit/miss
// outcomes, evictions, and residency statistics are common to every policy —
// only disk *writes* (and dirty blocks discarded by invalidation) differ.
// The fused simulator therefore runs the shared LRU cache once and derives
// per-policy dirtiness from one per-slot last-write time, giving metrics
// bit-identical to a CacheSimulator run per policy at a fraction of the
// cost.  This is the sweep planner's replay workhorse: Fig. 5's four policy
// curves cost one replay per cache size instead of four.
//
// Dirtiness needs no per-policy state: a delayed-write block is dirty iff
// written since it was installed, and a flush-back block is dirty iff
// written in the current flush epoch (every earlier epoch's flush cleaned
// it).  Flush-back disk writes are counted when a block transitions
// clean->dirty (into a pending counter folded in at the epoch boundary, and
// reclassified if the block is evicted or invalidated first), so a flush
// epoch costs O(1) instead of the O(resident blocks) scan a per-policy
// dirty bit would force.  Metadata simulation is not supported (its i-node
// dirtiness interleaves with data writes; use CacheSimulator per config).
class FusedCacheSimulator final : public ReconstructionSink {
 public:
  // One fused lane: a write policy plus its flush interval (used when the
  // policy is kFlushBack).
  struct PolicyLane {
    WritePolicy policy = WritePolicy::kDelayedWrite;
    Duration flush_interval = Duration::Seconds(30);
  };

  // `base` supplies everything but the write policy (base.policy and
  // base.flush_interval are ignored); base.simulate_metadata must be false.
  // At most 8 lanes.
  FusedCacheSimulator(const CacheConfig& base, const std::vector<PolicyLane>& lanes);

  void ReserveFiles(size_t file_count);
  // Same contract as CacheSimulator::SetExtentFeeds.
  void SetExtentFeeds(const uint64_t* transfer_feed, const uint64_t* execve_feed) {
    transfer_extent_feed_ = transfer_feed;
    execve_extent_feed_ = execve_feed;
  }

  void OnTransfer(const Transfer& t) override {
    const bool is_write = t.direction == TransferDirection::kWrite;
    if (transfer_extent_feed_ != nullptr) {
      const uint64_t extent = transfer_extent_feed_[transfer_feed_pos_++];
      if (t.length > 0) {
        AccessBlocks(t.time, t.file_id, t.offset, t.length, is_write, extent);
      }
    } else {
      Access(t.time, t.file_id, t.offset, t.length, is_write);
    }
  }
  void OnRecord(const TraceRecord& record) override;

  void Finish();

  // Metrics for lane `i`, assembled from the shared counters and the lane's
  // write counters — bit-identical to CacheSimulator with the same config.
  CacheMetrics LaneMetrics(size_t i) const;
  size_t lane_count() const { return lanes_.size(); }

 private:
  void Access(SimTime now, FileId file, uint64_t offset, uint64_t length, bool is_write);
  void AccessBlocks(SimTime now, FileId file, uint64_t offset, uint64_t length,
                    bool is_write, uint64_t extent);
  void AccessBlock(SimTime now, const BlockKey& key, bool is_write, bool whole_block,
                   uint64_t known_extent);
  // Flush epoch start for a kFlushBack lane: a block is dirty under that
  // lane iff its last write is at or after this time.
  SimTime EpochStart(size_t lane) const {
    return next_flush_[lane] - lanes_[lane].flush_interval;
  }
  void AdvanceClock(SimTime now) {
    if (now > now_) {
      now_ = now;
    }
    for (const size_t lane : flush_lanes_) {
      while (now_ >= next_flush_[lane]) {
        // Everything dirtied this epoch and still resident flushes now.
        lane_counters_[lane].disk_writes += fb_pending_[lane];
        fb_pending_[lane] = 0;
        next_flush_[lane] += lanes_[lane].flush_interval;
      }
    }
  }
  void InvalidateFrom(SimTime now, FileId file, uint64_t first_byte);
  void RecordResidency(SimTime now, const CacheEntry& entry);

  CacheConfig base_;
  std::vector<PolicyLane> lanes_;
  std::vector<size_t> flush_lanes_;  // indices of kFlushBack lanes
  std::vector<size_t> delayed_lanes_;  // indices of kDelayedWrite lanes
  BlockCache cache_;
  CacheMetrics shared_;  // everything except disk_writes / dirty_discarded
  struct LaneCounters {
    uint64_t disk_writes = 0;
    uint64_t dirty_discarded = 0;
  };
  std::vector<LaneCounters> lane_counters_;
  std::vector<SimTime> next_flush_;
  // Flush writes owed at the lane's next epoch boundary: one per resident
  // block dirtied this epoch (decremented if the block is evicted or
  // invalidated before the flush arrives).
  std::vector<uint64_t> fb_pending_;
  // Per-slot write state shared by every lane: whether the resident block
  // has been written since install, and when it was last written.
  std::vector<uint8_t> written_;
  std::vector<SimTime> last_write_;
  SimTime now_;
  FlatMap<FileId, uint64_t, IdHash> known_extent_{kInvalidFileId};
  const uint64_t* transfer_extent_feed_ = nullptr;
  const uint64_t* execve_extent_feed_ = nullptr;
  size_t transfer_feed_pos_ = 0;
  size_t execve_feed_pos_ = 0;
  bool finished_ = false;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_CACHE_SIMULATOR_H_
