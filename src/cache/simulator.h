// Trace-driven disk-block cache simulation (paper §6).
//
// The simulator consumes reconstructed byte-range transfers, splits each into
// block accesses (the paper assumed programs request in units of the cache
// block size), and counts disk operations under a configurable write policy:
//
//   write-through — every write access also writes the block to disk;
//   flush-back(T) — the cache is scanned every T; dirty blocks are written;
//   delayed-write — dirty blocks are written only when evicted.
//
// Disk reads happen on misses, except when the access will overwrite the
// whole block, or when the block lies beyond all data previously seen for
// the file (newly-written data has nothing on disk to fetch).  Unlinks,
// truncations, and whole-file overwrites drop the file's cached blocks;
// dirty blocks dropped this way are never written — the effect that makes
// large delayed-write caches absorb most writes entirely.
//
// The principal metric is the miss ratio: disk I/Os per logical block access.

#ifndef BSDTRACE_SRC_CACHE_SIMULATOR_H_
#define BSDTRACE_SRC_CACHE_SIMULATOR_H_

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/cache/block_cache.h"
#include "src/trace/reconstruct.h"
#include "src/util/stats.h"

namespace bsdtrace {

enum class WritePolicy : uint8_t {
  kWriteThrough,
  kFlushBack,     // requires flush_interval
  kDelayedWrite,
};

const char* WritePolicyName(WritePolicy policy);

struct CacheConfig {
  uint64_t size_bytes = 400 << 10;  // the UNIX-typical "about 400 kbytes"
  uint32_t block_size = 4096;
  WritePolicy policy = WritePolicy::kDelayedWrite;
  Duration flush_interval = Duration::Seconds(30);
  // Replacement policy (the paper used LRU; alternatives for ablations).
  ReplacementPolicy replacement = ReplacementPolicy::kLru;
  // Fig. 7: treat each execve as a whole-file read of the program file.
  bool simulate_execve_pagein = false;
  // §8 extension: inject i-node and directory block accesses for each open,
  // write-close, and unlink (the "I/O for things other than file data" the
  // paper estimates could exceed file-data I/O).  See simulator.cc for the
  // approximation.
  bool simulate_metadata = false;

  uint64_t block_count() const { return std::max<uint64_t>(1, size_bytes / block_size); }
  std::string ToString() const;
};

struct CacheMetrics {
  uint64_t logical_accesses = 0;  // block accesses presented to the cache
  uint64_t read_accesses = 0;
  uint64_t write_accesses = 0;

  uint64_t metadata_accesses = 0;  // i-node/directory accesses (if simulated)

  uint64_t disk_reads = 0;        // miss fetches
  uint64_t disk_writes = 0;       // write-through/flush/eviction write-backs
  uint64_t dirty_discarded = 0;   // dirty blocks dropped by delete/overwrite
  uint64_t evictions = 0;

  // Residency: time between a block entering the cache and leaving it
  // (evicted, invalidated, or still resident at end of trace).
  RunningStats residency_seconds;
  uint64_t residency_over_20min = 0;
  uint64_t residency_samples = 0;

  uint64_t DiskIos() const { return disk_reads + disk_writes; }
  double MissRatio() const {
    return logical_accesses > 0
               ? static_cast<double>(DiskIos()) / static_cast<double>(logical_accesses)
               : 0.0;
  }
};

class CacheSimulator : public ReconstructionSink {
 public:
  explicit CacheSimulator(const CacheConfig& config);

  // ReconstructionSink: transfers drive block accesses; create/unlink/
  // truncate records invalidate; execve optionally injects page-in reads.
  void OnTransfer(const Transfer& transfer) override;
  void OnRecord(const TraceRecord& record) override;

  // Finalizes residency statistics for blocks still cached.  Dirty blocks
  // still in the cache are NOT charged as disk writes (the trace simply
  // ended; the paper's metric does likewise).
  void Finish();

  const CacheMetrics& metrics() const { return metrics_; }
  const CacheConfig& config() const { return config_; }

 private:
  void Access(SimTime now, FileId file, uint64_t offset, uint64_t length, bool is_write);
  // Injects the i-node/directory accesses implied by a namespace operation.
  void MetadataAccess(SimTime now, FileId file, bool is_write);
  void AccessBlock(SimTime now, const BlockKey& key, bool is_write, bool whole_block);
  void AdvanceClock(SimTime now);
  void FlushScan();
  void InvalidateFrom(SimTime now, FileId file, uint64_t first_byte);
  void RecordResidency(SimTime now, const CacheEntry& entry);

  CacheConfig config_;
  BlockCache cache_;
  CacheMetrics metrics_;
  SimTime now_;
  SimTime next_flush_;
  // Highest data offset seen per file: writes beyond it fetch nothing.
  std::unordered_map<FileId, uint64_t> known_extent_;
  // Files with writes since their last close (i-node must be rewritten).
  std::unordered_set<FileId> meta_dirty_;
  bool finished_ = false;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_CACHE_SIMULATOR_H_
