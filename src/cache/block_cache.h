// An LRU cache of fixed-size disk blocks (paper §6.1).
//
// Keys are (file id, block index) pairs: the trace is logical, so the cache
// is indexed by file blocks rather than physical disk addresses (the paper's
// simulator worked the same way).  The cache tracks dirtiness and load time
// per block; the policy decisions (when to write back, when a fetch is
// needed) live in CacheSimulator.
//
// Storage is an intrusive slab: all entries live in one flat vector sized to
// the capacity, and both the replacement order (LRU/FIFO/clock) and the
// per-file block chain are doubly-linked lists threaded through 32-bit slot
// indices inside the slab.  After construction the steady state allocates
// nothing — no per-node heap traffic, no secondary per-file map — which is
// what keeps the §6 sweep hot path fast.  Eviction/drop callbacks are
// template parameters so they inline instead of going through std::function.

#ifndef BSDTRACE_SRC_CACHE_BLOCK_CACHE_H_
#define BSDTRACE_SRC_CACHE_BLOCK_CACHE_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/util/flat_map.h"
#include "src/trace/types.h"
#include "src/util/sim_time.h"

namespace bsdtrace {

struct BlockKey {
  FileId file = kInvalidFileId;
  uint64_t index = 0;

  bool operator==(const BlockKey&) const = default;
};

struct BlockKeyHash {
  size_t operator()(const BlockKey& k) const {
    // Full avalanche (splitmix64 finalizer).  The map is open-addressing with
    // linear probing: without avalanching, a file's sequential block indices
    // land in consecutive cells and probe runs grow with file size.
    uint64_t h = k.file * 0x9E3779B97F4A7C15ull + k.index;
    h ^= h >> 30;
    h *= 0xBF58476D1CE4E5B9ull;
    h ^= h >> 27;
    h *= 0x94D049BB133111EBull;
    h ^= h >> 31;
    return static_cast<size_t>(h);
  }
};

// Which block to evict when the cache is full.  The paper's simulator (and
// 4.2 BSD itself) used LRU; the alternatives support the replacement-policy
// ablation bench.
enum class ReplacementPolicy : uint8_t {
  kLru,    // evict least-recently-used (the paper's policy)
  kFifo,   // evict oldest-loaded, ignoring reuse
  kClock,  // second chance: skip recently-referenced blocks once
};

const char* ReplacementPolicyName(ReplacementPolicy policy);

// One cached block.
struct CacheEntry {
  BlockKey key;
  bool dirty = false;
  bool referenced = false;  // clock policy's second-chance bit
  // BlockCache-internal: this block's cell in the block map, so eviction
  // erases without re-probing.  Sits in what would otherwise be padding,
  // keeping the slab node exactly one cache line.
  int32_t map_cell = -1;
  SimTime loaded;       // when the block entered the cache
  SimTime dirtied;      // last transition clean->dirty (valid if dirty)
};

// Fixed-capacity block store with a pluggable replacement policy.  Not a
// write policy: callers decide what eviction and dirtiness mean in disk I/Os.
class BlockCache {
 public:
  explicit BlockCache(uint64_t capacity_blocks,
                      ReplacementPolicy policy = ReplacementPolicy::kLru);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  // Looks up a block and, if present, makes it most-recently-used.
  // Returns the entry or nullptr.
  CacheEntry* Touch(const BlockKey& key) {
    int32_t* slot = map_.Find(key);
    if (slot == nullptr) {
      return nullptr;
    }
    TouchSlot(*slot);
    return &At(*slot).entry;
  }

  // Re-applies the replacement-policy touch to an entry already known to be
  // resident (e.g. one just returned by Insert): same effect as Touch on its
  // key, minus the hash lookup.
  void Retouch(CacheEntry* entry) { TouchSlot(SlotOf(entry)); }

  // Inserts a block as most-recently-used and returns its entry.  The block
  // must not be present.  If the cache is full, the replacement victim is
  // evicted first and passed to `on_evict` (e.g. to count a write-back if
  // dirty).
  template <typename OnEvict>
  CacheEntry* Insert(const BlockKey& key, SimTime now, OnEvict&& on_evict) {
    assert(map_.Find(key) == nullptr);
    int32_t slot;
    if (map_.size() >= capacity_) {
      // Evict straight into the victim's slot (the LIFO free list would hand
      // it right back anyway) — no free-list round trip.
      slot = PopVictim();
      Node& victim = slab_[static_cast<size_t>(slot)];
      if (victim.entry.dirty) {
        DirtyUnlink(slot);  // flag stays set for the callback
        --dirty_count_;
      }
      on_evict(victim.entry);
      FileUnlink(slot);
      MapEraseCell(victim.entry.map_cell);
    } else {
      slot = AllocSlot();
    }
    Node& node = slab_[static_cast<size_t>(slot)];
    node.entry = CacheEntry{.key = key, .dirty = false, .referenced = false,
                            .loaded = now, .dirtied = now};
    node.dirty_prev = kNil;
    node.dirty_next = kNil;
    LruPushFront(slot);
    FileLink(slot);
    node.entry.map_cell = static_cast<int32_t>(map_.InsertCell(key, slot));
    return &node.entry;
  }

  // Removes a specific block if present; `on_drop` sees it first (dirty
  // blocks of deleted files are dropped without a disk write).
  template <typename OnDrop>
  void Remove(const BlockKey& key, OnDrop&& on_drop) {
    const size_t cell = map_.FindCell(key);
    if (cell == decltype(map_)::npos) {
      return;
    }
    const int32_t slot = map_.CellValue(cell);
    MapEraseCell(cell);
    Erase(slot, on_drop);
  }

  // Removes every block of `file` with index >= first_index.
  template <typename OnDrop>
  void RemoveFileBlocks(FileId file, uint64_t first_index, OnDrop&& on_drop) {
    const int32_t* head = file_head_.Find(file);
    if (head == nullptr) {
      return;
    }
    // Walk the file's intrusive chain, erasing matches and restitching the
    // chain in place.  The head pointer is fixed up once at the end rather
    // than per removed node (a whole-file invalidation would otherwise pay a
    // hash lookup for every block as each removal exposes a new chain head).
    int32_t slot = *head;
    int32_t new_head = kNil;   // first surviving node
    int32_t last_kept = kNil;  // most recent survivor, for restitching
    while (slot != kNil) {
      Node& node = slab_[static_cast<size_t>(slot)];
      const int32_t next = node.file_next;
      if (node.entry.key.index >= first_index) {
        if (node.entry.dirty) {
          DirtyUnlink(slot);  // flag stays set for the callback
          --dirty_count_;
        }
        on_drop(node.entry);
        MapEraseCell(node.entry.map_cell);
        LruUnlink(slot);
        FreeSlot(slot);
      } else {
        node.file_prev = last_kept;
        if (last_kept != kNil) {
          At(last_kept).file_next = slot;
        } else {
          new_head = slot;
        }
        last_kept = slot;
      }
      slot = next;
    }
    if (last_kept != kNil) {
      At(last_kept).file_next = kNil;
    }
    if (new_head == kNil) {
      file_head_.Erase(file);
    } else {
      *file_head_.Find(file) = new_head;
    }
  }

  // Invokes `fn` on every entry, most- to least-recently-used (flush-back
  // scans); entries may be mutated but not added/removed.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (int32_t slot = lru_head_; slot != kNil;
         slot = slab_[static_cast<size_t>(slot)].lru_next) {
      fn(slab_[static_cast<size_t>(slot)].entry);
    }
  }

  // Marks a resident entry dirty/clean and keeps it on the intrusive dirty
  // chain, so flush scans cost O(dirty blocks) instead of O(cache size).
  // MarkDirty requires a clean entry; MarkClean requires a dirty one.
  void MarkDirty(CacheEntry* entry) {
    assert(!entry->dirty);
    entry->dirty = true;
    const int32_t slot = SlotOf(entry);
    Node& node = At(slot);
    node.dirty_prev = kNil;
    node.dirty_next = dirty_head_;
    if (dirty_head_ != kNil) {
      At(dirty_head_).dirty_prev = slot;
    }
    dirty_head_ = slot;
    ++dirty_count_;
  }

  void MarkClean(CacheEntry* entry) {
    assert(entry->dirty);
    entry->dirty = false;
    DirtyUnlink(SlotOf(entry));
    --dirty_count_;
  }

  // Cleans every dirty block, invoking `on_clean` on each (flush-back scan).
  // Walks only the dirty chain: O(dirty blocks).
  template <typename Fn>
  void DrainDirty(Fn&& on_clean) {
    int32_t slot = dirty_head_;
    while (slot != kNil) {
      Node& node = At(slot);
      const int32_t next = node.dirty_next;
      node.entry.dirty = false;
      on_clean(node.entry);
      slot = next;
    }
    dirty_head_ = kNil;
    dirty_count_ = 0;
  }

  uint64_t size() const { return map_.size(); }
  uint64_t capacity() const { return capacity_; }
  uint64_t dirty_count() const { return dirty_count_; }

  // Slot index of a resident entry (< capacity, stable while the block stays
  // resident; slots are reused after eviction).  Lets callers keep per-slot
  // side tables — FusedCacheSimulator's per-policy dirty masks index by it.
  // Entry pointers handed out by Touch/Insert point at the first member of a
  // slab node, so the slot is recoverable by pointer arithmetic.
  int32_t SlotOf(const CacheEntry* entry) const {
    return static_cast<int32_t>(reinterpret_cast<const Node*>(entry) - slab_.data());
  }
  int32_t SlotOf(CacheEntry* entry) {
    return static_cast<int32_t>(reinterpret_cast<Node*>(entry) - slab_.data());
  }

 private:
  static constexpr int32_t kNil = -1;

  // Slab node: the entry plus the intrusive replacement-order, per-file, and
  // dirty-chain links.  Free slots chain through lru_next.  Cache-line
  // aligned so a node never straddles two lines (it is exactly 64 bytes).
  struct alignas(64) Node {
    CacheEntry entry;
    int32_t lru_prev = kNil;
    int32_t lru_next = kNil;
    int32_t file_prev = kNil;
    int32_t file_next = kNil;
    int32_t dirty_prev = kNil;
    int32_t dirty_next = kNil;
  };

  Node& At(int32_t slot) { return slab_[static_cast<size_t>(slot)]; }

  // Erases a block-map cell directly (no re-probe); backward shifting may
  // relocate other entries' cells, so their backreferences are updated here.
  void MapEraseCell(size_t cell) {
    map_.EraseCell(cell, [this](int32_t moved_slot, size_t new_cell) {
      At(moved_slot).entry.map_cell = static_cast<int32_t>(new_cell);
    });
  }

  // Applies the replacement policy's on-access action to a resident slot.
  void TouchSlot(int32_t slot) {
    switch (policy_) {
      case ReplacementPolicy::kLru:
        MoveToFront(slot);
        break;
      case ReplacementPolicy::kFifo:
        break;  // reuse does not affect replacement order
      case ReplacementPolicy::kClock:
        At(slot).entry.referenced = true;
        break;
    }
  }

  void DirtyUnlink(int32_t slot) {
    Node& node = At(slot);
    if (node.dirty_prev != kNil) {
      At(node.dirty_prev).dirty_next = node.dirty_next;
    } else {
      dirty_head_ = node.dirty_next;
    }
    if (node.dirty_next != kNil) {
      At(node.dirty_next).dirty_prev = node.dirty_prev;
    }
  }

  int32_t AllocSlot() {
    if (free_head_ != kNil) {
      const int32_t slot = free_head_;
      free_head_ = At(slot).lru_next;
      return slot;
    }
    slab_.emplace_back();
    return static_cast<int32_t>(slab_.size() - 1);
  }

  void FreeSlot(int32_t slot) {
    At(slot).lru_next = free_head_;
    free_head_ = slot;
  }

  void LruPushFront(int32_t slot) {
    Node& node = At(slot);
    node.lru_prev = kNil;
    node.lru_next = lru_head_;
    if (lru_head_ != kNil) {
      At(lru_head_).lru_prev = slot;
    }
    lru_head_ = slot;
    if (lru_tail_ == kNil) {
      lru_tail_ = slot;
    }
  }

  void LruUnlink(int32_t slot) {
    Node& node = At(slot);
    if (node.lru_prev != kNil) {
      At(node.lru_prev).lru_next = node.lru_next;
    } else {
      lru_head_ = node.lru_next;
    }
    if (node.lru_next != kNil) {
      At(node.lru_next).lru_prev = node.lru_prev;
    } else {
      lru_tail_ = node.lru_prev;
    }
  }

  void MoveToFront(int32_t slot) {
    if (lru_head_ == slot) {
      return;
    }
    LruUnlink(slot);
    LruPushFront(slot);
  }

  // Links `slot` at the head of its file's chain.
  void FileLink(int32_t slot) {
    Node& node = At(slot);
    int32_t& head = file_head_.FindOrInsert(node.entry.key.file, kNil);
    node.file_prev = kNil;
    node.file_next = head;
    if (head != kNil) {
      At(head).file_prev = slot;
    }
    head = slot;
  }

  void FileUnlink(int32_t slot) {
    Node& node = At(slot);
    if (node.file_prev != kNil) {
      At(node.file_prev).file_next = node.file_next;
    } else {
      // Head of the chain: advance or drop the head pointer.
      if (node.file_next != kNil) {
        int32_t* head = file_head_.Find(node.entry.key.file);
        assert(head != nullptr);
        *head = node.file_next;
      } else {
        file_head_.Erase(node.entry.key.file);
      }
    }
    if (node.file_next != kNil) {
      At(node.file_next).file_prev = node.file_prev;
    }
  }

  // Removes `slot` from all structures except `map_`; calls on_drop first.
  template <typename OnDrop>
  void Erase(int32_t slot, OnDrop&& on_drop) {
    Node& node = At(slot);
    if (node.entry.dirty) {
      DirtyUnlink(slot);  // flag stays set for the callback
      --dirty_count_;
    }
    on_drop(node.entry);
    LruUnlink(slot);
    FileUnlink(slot);
    FreeSlot(slot);
  }

  // Selects and removes the replacement victim per the policy; returns its
  // slot (still linked into the file chain and map).
  int32_t PopVictim() {
    if (policy_ == ReplacementPolicy::kClock) {
      // Second chance: sweep from the tail, sparing referenced blocks once.
      while (At(lru_tail_).entry.referenced) {
        At(lru_tail_).entry.referenced = false;
        MoveToFront(lru_tail_);
      }
    }
    const int32_t victim = lru_tail_;
    LruUnlink(victim);
    return victim;
  }

  uint64_t capacity_;
  ReplacementPolicy policy_;
  std::vector<Node> slab_;  // entry storage; never exceeds capacity_ slots
  int32_t lru_head_ = kNil;  // most recently used / newest-loaded
  int32_t lru_tail_ = kNil;  // replacement end
  int32_t free_head_ = kNil;
  int32_t dirty_head_ = kNil;  // most recently dirtied
  // Open-addressing indexes (see flat_map.h).  map_ is sized once in the
  // constructor to hold capacity_ entries, so it never rehashes.
  FlatMap<BlockKey, int32_t, BlockKeyHash> map_;
  FlatMap<FileId, int32_t, IdHash> file_head_;  // per-file chain heads
  uint64_t dirty_count_ = 0;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_CACHE_BLOCK_CACHE_H_
