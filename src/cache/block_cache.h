// An LRU cache of fixed-size disk blocks (paper §6.1).
//
// Keys are (file id, block index) pairs: the trace is logical, so the cache
// is indexed by file blocks rather than physical disk addresses (the paper's
// simulator worked the same way).  The cache tracks dirtiness and load time
// per block; the policy decisions (when to write back, when a fetch is
// needed) live in CacheSimulator.

#ifndef BSDTRACE_SRC_CACHE_BLOCK_CACHE_H_
#define BSDTRACE_SRC_CACHE_BLOCK_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>

#include "src/trace/types.h"
#include "src/util/sim_time.h"

namespace bsdtrace {

struct BlockKey {
  FileId file = kInvalidFileId;
  uint64_t index = 0;

  bool operator==(const BlockKey&) const = default;
};

struct BlockKeyHash {
  size_t operator()(const BlockKey& k) const {
    // Mix the two words; files are dense small integers, indices small.
    uint64_t h = k.file * 0x9E3779B97F4A7C15ull;
    h ^= k.index + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

// Which block to evict when the cache is full.  The paper's simulator (and
// 4.2 BSD itself) used LRU; the alternatives support the replacement-policy
// ablation bench.
enum class ReplacementPolicy : uint8_t {
  kLru,    // evict least-recently-used (the paper's policy)
  kFifo,   // evict oldest-loaded, ignoring reuse
  kClock,  // second chance: skip recently-referenced blocks once
};

const char* ReplacementPolicyName(ReplacementPolicy policy);

// One cached block.
struct CacheEntry {
  BlockKey key;
  bool dirty = false;
  bool referenced = false;  // clock policy's second-chance bit
  SimTime loaded;       // when the block entered the cache
  SimTime dirtied;      // last transition clean->dirty (valid if dirty)
};

// Fixed-capacity block store with a pluggable replacement policy.  Not a
// write policy: callers decide what eviction and dirtiness mean in disk I/Os.
class BlockCache {
 public:
  explicit BlockCache(uint64_t capacity_blocks,
                      ReplacementPolicy policy = ReplacementPolicy::kLru);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  // Looks up a block and, if present, makes it most-recently-used.
  // Returns the entry or nullptr.
  CacheEntry* Touch(const BlockKey& key);

  // Inserts a block as most-recently-used.  The block must not be present.
  // If the cache is full, the least-recently-used entry is evicted first and
  // passed to `on_evict` (e.g. to count a write-back if dirty).
  void Insert(const BlockKey& key, SimTime now,
              const std::function<void(const CacheEntry&)>& on_evict);

  // Removes a specific block if present; `on_drop` sees it first (dirty
  // blocks of deleted files are dropped without a disk write).
  void Remove(const BlockKey& key, const std::function<void(const CacheEntry&)>& on_drop);

  // Removes every block of `file` with index >= first_index.
  void RemoveFileBlocks(FileId file, uint64_t first_index,
                        const std::function<void(const CacheEntry&)>& on_drop);

  // Invokes `fn` on every entry (flush-back scans); entries may be mutated
  // but not added/removed.
  void ForEach(const std::function<void(CacheEntry&)>& fn);

  uint64_t size() const { return map_.size(); }
  uint64_t capacity() const { return capacity_; }
  uint64_t dirty_count() const { return dirty_count_; }

  // Dirty bookkeeping used by CacheSimulator so flush scans can early-out.
  void NoteDirtied() { ++dirty_count_; }
  void NoteCleaned() { --dirty_count_; }

 private:
  using LruList = std::list<CacheEntry>;

  // Selects and removes the replacement victim per the policy.
  CacheEntry PopVictim();

  uint64_t capacity_;
  ReplacementPolicy policy_;
  LruList lru_;  // front = most recently used / newest-loaded
  std::unordered_map<BlockKey, LruList::iterator, BlockKeyHash> map_;
  // Secondary index: blocks per file, for O(blocks-of-file) invalidation.
  std::unordered_map<FileId, std::unordered_map<uint64_t, LruList::iterator>> per_file_;
  uint64_t dirty_count_ = 0;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_CACHE_BLOCK_CACHE_H_
