// Parameter sweeps over cache configurations (the axes of Figs. 5-7 and
// Tables VI-VII), run as a two-phase engine: phase 1 reconstructs the trace
// exactly once into a ReplayLog; phase 2 replays that log through every
// configuration, in parallel across hardware threads.  Reconstruction cost
// is thus paid once per sweep instead of once per point.

#ifndef BSDTRACE_SRC_CACHE_SWEEP_H_
#define BSDTRACE_SRC_CACHE_SWEEP_H_

#include <vector>

#include "src/cache/simulator.h"
#include "src/trace/replay_log.h"
#include "src/trace/trace.h"

namespace bsdtrace {

struct SweepPoint {
  CacheConfig config;
  CacheMetrics metrics;
};

// Reconstructs `trace` and replays it through one simulator (compatibility
// wrapper; also the reference path the replay-parity test checks the log
// engine against).  `billing` selects which bound of the transfer-time
// window is used (§3.1 timing-imprecision ablation).
CacheMetrics SimulateCache(const Trace& trace, const CacheConfig& config,
                           BillingPolicy billing = BillingPolicy::kAtNextEvent);

// Phase-2 primitive: replays a prebuilt log through one simulator.  Metrics
// are bit-identical to SimulateCache(trace, config, log.billing()).
CacheMetrics SimulateCache(const ReplayLog& log, const CacheConfig& config);

// Replays a prebuilt log through every configuration, in parallel; all
// workers share the (read-only) log.  `threads` = 0 uses the hardware
// concurrency.
std::vector<SweepPoint> RunCacheSweep(const ReplayLog& log,
                                      const std::vector<CacheConfig>& configs,
                                      unsigned threads = 0);

// Convenience: builds the ReplayLog (billed at next event, the paper's
// convention) and sweeps it.
std::vector<SweepPoint> RunCacheSweep(const Trace& trace, const std::vector<CacheConfig>& configs,
                                      unsigned threads = 0);

// Convenience builders for the paper's sweeps.
//
// Fig. 5 / Table VI: cache size x write policy at 4 KB blocks.
std::vector<CacheConfig> Fig5Configs();
// Fig. 6 / Table VII: block size x cache size, delayed write.
std::vector<CacheConfig> Fig6Configs();
// Fig. 7: cache size sweep with and without execve page-in.
std::vector<CacheConfig> Fig7Configs();

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_CACHE_SWEEP_H_
