// Parameter sweeps over cache configurations (the axes of Figs. 5-7 and
// Tables VI-VII), run as a two-phase engine: phase 1 reconstructs the trace
// exactly once into a ReplayLog; phase 2 replays that log through every
// configuration, in parallel across hardware threads.  Reconstruction cost
// is thus paid once per sweep instead of once per point.

#ifndef BSDTRACE_SRC_CACHE_SWEEP_H_
#define BSDTRACE_SRC_CACHE_SWEEP_H_

#include <vector>

#include "src/cache/hierarchy.h"
#include "src/cache/simulator.h"
#include "src/cache/stack_distance.h"
#include "src/trace/replay_log.h"
#include "src/trace/trace.h"

namespace bsdtrace {

struct SweepPoint {
  CacheConfig config;
  CacheMetrics metrics;
};

// Reconstructs `trace` and replays it through one simulator (compatibility
// wrapper; also the reference path the replay-parity test checks the log
// engine against).  `billing` selects which bound of the transfer-time
// window is used (§3.1 timing-imprecision ablation).
CacheMetrics SimulateCache(const Trace& trace, const CacheConfig& config,
                           BillingPolicy billing = BillingPolicy::kAtNextEvent);

// Phase-2 primitive: replays a prebuilt log through one simulator.  Metrics
// are bit-identical to SimulateCache(trace, config, log.billing()).
CacheMetrics SimulateCache(const ReplayLog& log, const CacheConfig& config);

// Replays a prebuilt log through every configuration, in parallel; all
// workers share the (read-only) log.  `threads` = 0 uses the hardware
// concurrency.
std::vector<SweepPoint> RunCacheSweep(const ReplayLog& log,
                                      const std::vector<CacheConfig>& configs,
                                      unsigned threads = 0);

// Convenience: builds the ReplayLog (billed at next event, the paper's
// convention) and sweeps it.
std::vector<SweepPoint> RunCacheSweep(const Trace& trace, const std::vector<CacheConfig>& configs,
                                      unsigned threads = 0);

// Convenience builders for the paper's sweeps.
//
// Fig. 5 / Table VI: cache size x write policy at 4 KB blocks.
std::vector<CacheConfig> Fig5Configs();
// Fig. 6 / Table VII: block size x cache size, delayed write.
std::vector<CacheConfig> Fig6Configs();
// Fig. 7: cache size sweep with and without execve page-in.
std::vector<CacheConfig> Fig7Configs();

// --- Planned sweeps: Mattson curves + fused replays ------------------------
//
// RunPlannedSweep computes the same per-config metrics as RunCacheSweep but
// restructures the work (ISSUE: collapse the Fig. 5-7 size axis):
//
//   * configs identical up to write policy share ONE replay through a
//     FusedCacheSimulator (Fig. 5's four policy columns per cache size);
//   * each (block size, page-in) family of LRU configs additionally gets one
//     exact stack-distance pass (stack_distance.h), yielding the fetch-miss/
//     miss-ratio column for EVERY cache size — the dense curve axis — from a
//     single pass instead of one replay per size;
//   * configs the fast paths cannot serve (metadata simulation) fall back to
//     per-config replays.
//
// `points` is bit-identical to RunCacheSweep(log, configs) in input order.
// `parity` cross-checks the two engines where they overlap: for every LRU
// non-metadata config, the Mattson curve's FetchMissesAt(block_count) must
// equal the replayed disk_reads exactly; benches gate on it.

// The dense cache-size axis sampled by every Mattson curve (25 sizes in
// quarter-octave steps from 256 KB to 16 MB, a superset of the paper's
// Fig. 5 points — dense sampling is free: the stack pass answers every
// capacity from one replay).
std::vector<uint64_t> SweepCurveSizes();

// One single-pass miss-ratio curve: all capacities of one (block size,
// page-in) family.
struct SweepCurve {
  uint32_t block_size = 4096;
  bool simulate_execve_pagein = false;
  // Sampled sizes (sorted; the requested curve sizes plus every member
  // config's size) and the exact fetch-miss column at each.
  std::vector<uint64_t> size_bytes;
  std::vector<uint64_t> fetch_misses;
  std::vector<double> fetch_miss_ratios;
  // The full profile: FetchMissesAt/MissesAt answer any capacity, not just
  // the sampled ones.
  StackDistanceProfile profile;
};

struct PlannedSweep {
  std::vector<SweepPoint> points;  // one per input config, input order
  std::vector<SweepCurve> curves;  // one per (block size, page-in) LRU family
  // True iff every Mattson fetch-miss prediction matched the replayed
  // disk_reads bit-for-bit (see above).
  bool parity = true;
  size_t stack_passes = 0;
  size_t fused_replays = 0;
  size_t replay_fallbacks = 0;
};

// Plans and runs the sweep on a prebuilt log, in parallel across `threads`
// workers (0 = hardware concurrency).  `curve_sizes` empty = SweepCurveSizes().
PlannedSweep RunPlannedSweep(const ReplayLog& log, const std::vector<CacheConfig>& configs,
                             std::vector<uint64_t> curve_sizes = {}, unsigned threads = 0);

// Convenience: builds the ReplayLog (billed at next event) and plans it.
PlannedSweep RunPlannedSweep(const Trace& trace, const std::vector<CacheConfig>& configs,
                             std::vector<uint64_t> curve_sizes = {}, unsigned threads = 0);

// --- Hierarchy sweeps (§7): client size x server size x write policy -------
//
// RunHierarchySweep extends the planner to two-level topologies
// (hierarchy.h).  Rows with a client layer each cost one full hierarchy
// replay; rows with client size 0 collapse to single-level server replays,
// which the planner serves through fused multi-lane simulators exactly as
// RunPlannedSweep does — the client layer "permitting" fusion because the
// degenerate topology IS the single-level simulator.  For each fused group,
// one representative row is additionally replayed through the degenerate
// HierarchySimulator and compared bit-for-bit against the fused lane —
// the cross-engine `parity` flag bench_hier_cache gates on.

struct HierarchyPoint {
  HierarchyConfig config;
  HierarchyMetrics metrics;
};

struct HierarchySweepResult {
  std::vector<HierarchyPoint> points;  // one per input config, input order
  // Every client-0 fused lane matched its degenerate hierarchy replay
  // bit-for-bit (CacheMetricsBitIdentical on the server metrics).
  bool parity = true;
  size_t fused_replays = 0;      // fused single-level replays (client-0 rows)
  size_t hierarchy_replays = 0;  // full two-level replays
};

// Exact bit-level comparison of every counter including the residency
// moments (the cross-engine parity currency).
bool CacheMetricsBitIdentical(const CacheMetrics& a, const CacheMetrics& b);

// The default §7 grid: client sizes {0, 256 KB, 1 MB, 4 MB} x server sizes
// {1, 2, 4, 8, 16 MB} x write policies {write-through, flush-back(30s),
// delayed-write}.  The policy applies to the clients (the open question is
// what policy client caches should run); the server runs delayed-write.
// Client-0 rows apply the policy to the server instead — the single-level
// baseline column of the figure.
std::vector<HierarchyConfig> HierarchySweepConfigs();

// Runs the hierarchy plan on a prebuilt log across `threads` workers
// (0 = hardware concurrency).
HierarchySweepResult RunHierarchySweep(const ReplayLog& log,
                                       const std::vector<HierarchyConfig>& configs,
                                       unsigned threads = 0);

// Convenience: builds the ReplayLog (billed at next event) and runs it.
HierarchySweepResult RunHierarchySweep(const Trace& trace,
                                       const std::vector<HierarchyConfig>& configs,
                                       unsigned threads = 0);

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_CACHE_SWEEP_H_
