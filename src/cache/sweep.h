// Parameter sweeps over cache configurations (the axes of Figs. 5-7 and
// Tables VI-VII).  Each configuration replays the same trace independently;
// points run in parallel across hardware threads.

#ifndef BSDTRACE_SRC_CACHE_SWEEP_H_
#define BSDTRACE_SRC_CACHE_SWEEP_H_

#include <vector>

#include "src/cache/simulator.h"
#include "src/trace/trace.h"

namespace bsdtrace {

struct SweepPoint {
  CacheConfig config;
  CacheMetrics metrics;
};

// Replays `trace` through one simulator.  `billing` selects which bound of
// the transfer-time window is used (§3.1 timing-imprecision ablation).
CacheMetrics SimulateCache(const Trace& trace, const CacheConfig& config,
                           BillingPolicy billing = BillingPolicy::kAtNextEvent);

// Replays `trace` through every configuration, in parallel.
// `threads` = 0 uses the hardware concurrency.
std::vector<SweepPoint> RunCacheSweep(const Trace& trace, const std::vector<CacheConfig>& configs,
                                      unsigned threads = 0);

// Convenience builders for the paper's sweeps.
//
// Fig. 5 / Table VI: cache size x write policy at 4 KB blocks.
std::vector<CacheConfig> Fig5Configs();
// Fig. 6 / Table VII: block size x cache size, delayed write.
std::vector<CacheConfig> Fig6Configs();
// Fig. 7: cache size sweep with and without execve page-in.
std::vector<CacheConfig> Fig7Configs();

}  // namespace bsdtrace

#endif  // BSDTRACE_SRC_CACHE_SWEEP_H_
