// Picking a file-server cache configuration (paper §6): sweep cache size,
// write policy, and block size; report disk-I/O savings next to the
// crash-loss exposure each policy implies.
//
//   ./file_server_sizing [hours]

#include <cstdlib>
#include <iostream>

#include "src/cache/sweep.h"
#include "src/core/experiments.h"
#include "src/util/table.h"
#include "src/workload/generator.h"

int main(int argc, char** argv) {
  using namespace bsdtrace;

  const double hours = argc > 1 ? std::atof(argv[1]) : 8.0;
  std::cout << "Evaluating file-server cache configurations on " << hours
            << " simulated hours of the A5 workload...\n\n";

  GeneratorOptions options;
  options.duration = Duration::Hours(hours);
  const Trace trace = GenerateTraceOnly(ProfileA5(), options);

  // Candidate server configurations.
  struct Candidate {
    const char* label;
    CacheConfig config;
    const char* exposure;  // worst-case data loss on a server crash
  };
  std::vector<Candidate> candidates;
  auto make = [](uint64_t size, WritePolicy policy, Duration flush, uint32_t block) {
    CacheConfig c;
    c.size_bytes = size;
    c.policy = policy;
    c.flush_interval = flush;
    c.block_size = block;
    return c;
  };
  candidates.push_back({"UNIX-style: 400 KB, 4 KB blocks, 30 s flush",
                        make(400 << 10, WritePolicy::kFlushBack, Duration::Seconds(30), 4096),
                        "30 s of writes"});
  candidates.push_back({"Server: 4 MB, 4 KB blocks, write-through",
                        make(4u << 20, WritePolicy::kWriteThrough, Duration::Seconds(30), 4096),
                        "none"});
  candidates.push_back({"Server: 4 MB, 4 KB blocks, 30 s flush",
                        make(4u << 20, WritePolicy::kFlushBack, Duration::Seconds(30), 4096),
                        "30 s of writes"});
  candidates.push_back({"Server: 4 MB, 4 KB blocks, 5 min flush",
                        make(4u << 20, WritePolicy::kFlushBack, Duration::Minutes(5), 4096),
                        "5 min of writes"});
  candidates.push_back({"Server: 4 MB, 16 KB blocks, 5 min flush",
                        make(4u << 20, WritePolicy::kFlushBack, Duration::Minutes(5), 16384),
                        "5 min of writes"});
  candidates.push_back({"Server: 16 MB, 16 KB blocks, delayed write",
                        make(16u << 20, WritePolicy::kDelayedWrite, Duration::Seconds(30), 16384),
                        "unbounded"});

  std::vector<CacheConfig> configs;
  configs.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    configs.push_back(c.config);
  }
  const auto points = RunCacheSweep(trace, configs);

  const uint64_t baseline = points[0].metrics.DiskIos();
  TextTable table({"Configuration", "Disk I/Os", "Miss ratio", "vs UNIX", "Crash exposure"});
  for (size_t i = 0; i < candidates.size(); ++i) {
    const CacheMetrics& m = points[i].metrics;
    const double vs = baseline > 0 ? static_cast<double>(m.DiskIos()) /
                                         static_cast<double>(baseline)
                                   : 0.0;
    table.AddRow({candidates[i].label, Cell(static_cast<int64_t>(m.DiskIos())),
                  FormatPercent(m.MissRatio()), Cell(vs, 2) + "x", candidates[i].exposure});
  }
  std::cout << table.Render("File-server cache candidates (A5 workload)") << "\n";

  std::cout << "Paper guidance (§6, §8): several megabytes of cache with 16 KB blocks\n"
               "gives very large reductions in disk I/O, and an occasional flush-back\n"
               "bounds crash loss without destroying the benefit of the large cache.\n";
  return 0;
}
