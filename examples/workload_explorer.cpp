// Workload exploration: slice a trace into day/night windows, profile users
// and hot files, and measure working sets — a tour of the filtering and
// extension APIs.
//
//   ./workload_explorer [hours] [trace-name]

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/analysis/popularity.h"
#include "src/analysis/working_set.h"
#include "src/trace/filter.h"
#include "src/util/table.h"
#include "src/workload/generator.h"

int main(int argc, char** argv) {
  using namespace bsdtrace;

  const double hours = argc > 1 ? std::atof(argv[1]) : 24.0;
  const std::string name = argc > 2 ? argv[2] : "A5";
  std::cout << "Exploring " << hours << " simulated hours of the " << name
            << " workload...\n\n";

  GeneratorOptions options;
  options.duration = Duration::Hours(hours);
  const Trace trace = GenerateTraceOnly(ProfileByName(name), options);

  // -- Busiest vs. quietest hour ------------------------------------------------
  // The simulation clock starts at 08:00, so hour index 6 is ~14:00 (the
  // diurnal peak) and, in a 24 h run, index 18 is ~02:00.
  struct Window {
    const char* label;
    double start_h;
  };
  std::vector<Window> windows = {{"afternoon (14:00)", 6.0}};
  if (hours >= 20) {
    windows.push_back({"night (02:00)", 18.0});
  }
  TextTable when({"Window", "Records", "Bytes", "Active users"});
  for (const Window& w : windows) {
    const Trace slice = SliceByTime(trace, SimTime::FromSeconds(w.start_h * 3600),
                                    SimTime::FromSeconds((w.start_h + 1) * 3600));
    AnalyzeOptions analyze_options;
    analyze_options.trace = &slice;
    const TraceAnalysis a = Analyze(analyze_options).value();
    when.AddRow({w.label, Cell(static_cast<int64_t>(slice.size())),
                 FormatBytes(static_cast<double>(a.overall.bytes_transferred)),
                 Cell(static_cast<int64_t>(a.activity.distinct_users))});
  }
  std::cout << when.Render("Hour-long slices (the diurnal swing)") << "\n";

  // -- Who does the work ---------------------------------------------------------
  const auto by_user = CountEventsByUser(trace);
  std::vector<std::pair<uint64_t, UserId>> ranked;
  for (const auto& [user, events] : by_user) {
    ranked.emplace_back(events, user);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  TextTable users({"User", "Events", "Note"});
  for (size_t i = 0; i < 5 && i < ranked.size(); ++i) {
    const UserId id = ranked[i].second;
    const char* note = id == 0 ? "system daemons" : id == 1 ? "printer daemon" : "";
    users.AddRow({Cell(static_cast<int64_t>(id)), Cell(static_cast<int64_t>(ranked[i].first)),
                  note});
  }
  std::cout << users.Render("Top event producers") << "\n";

  // -- What they touch -------------------------------------------------------------
  const PopularityStats pop = AnalyzePopularity(trace);
  std::cout << "Access concentration: " << pop.distinct_files << " files accessed; the top 10"
            << " take " << FormatPercent(pop.TopAccessShare(10), 0) << " of accesses and "
            << pop.FilesForAccessFraction(0.5) << " files cover half of them.\n\n";

  // -- How much data is live at once ----------------------------------------------
  const WorkingSetStats ws = AnalyzeWorkingSets(
      trace, {Duration::Minutes(1), Duration::Minutes(10), Duration::Hours(1)});
  TextTable ws_table({"Window", "Avg working set", "Peak"});
  for (const WorkingSetPoint& p : ws.points) {
    ws_table.AddRow({p.window.ToString(), FormatBytes(p.average_blocks * 4096),
                     FormatBytes(static_cast<double>(p.peak_blocks) * 4096)});
  }
  std::cout << ws_table.Render("File-data working sets") << "\n";
  std::cout << "A cache sized near the 10-minute working set captures most reuse —\n"
               "the knee of the paper's Figure 5.\n";
  return 0;
}
