// trace_inspect: command-line tool over trace files.
//
//   trace_inspect gen <out.trace> [hours] [trace-name] [seed]   generate
//   trace_inspect summary <file.trace>                          analyze
//   trace_inspect validate <file.trace>                         check
//   trace_inspect dump <file.trace> [limit]                     to text
//   trace_inspect convert <in.txt> <out.trace>                  text->binary
//   trace_inspect slice <in.trace> <out.trace> <from_s> <to_s>  time window
//   trace_inspect users <file.trace>                            events/user
//   trace_inspect top <file.trace> [n]                          hot files
//
// Binary traces use the bsdtrace format (see src/trace/trace_io.h); dump
// emits the line-oriented text format, which convert reads back.

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "src/analysis/analyzer.h"
#include "src/analysis/popularity.h"
#include "src/core/experiments.h"
#include "src/trace/filter.h"
#include "src/trace/trace_io.h"
#include "src/trace/validate.h"
#include "src/workload/generator.h"

namespace {

using namespace bsdtrace;

int Usage() {
  std::cerr << "usage:\n"
               "  trace_inspect gen <out.trace> [hours] [A5|E3|C4] [seed]\n"
               "  trace_inspect summary <file.trace>\n"
               "  trace_inspect validate <file.trace>\n"
               "  trace_inspect dump <file.trace> [limit]\n"
               "  trace_inspect convert <in.txt> <out.trace>\n"
               "  trace_inspect slice <in.trace> <out.trace> <from_s> <to_s>\n"
               "  trace_inspect users <file.trace>\n"
               "  trace_inspect top <file.trace> [n]\n";
  return 2;
}

StatusOr<Trace> LoadOrDie(const std::string& path) {
  auto trace = LoadTrace(path);
  if (!trace.ok()) {
    std::cerr << "error: " << trace.status().message() << "\n";
  }
  return trace;
}

int CmdGen(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  const std::string out = argv[2];
  const double hours = argc > 3 ? std::atof(argv[3]) : 24.0;
  const std::string name = argc > 4 ? argv[4] : "A5";
  GeneratorOptions options;
  options.duration = Duration::Hours(hours);
  if (argc > 5) {
    options.seed = std::strtoull(argv[5], nullptr, 10);
  }
  const Trace trace = GenerateTraceOnly(ProfileByName(name), options);
  const Status st = SaveTrace(out, trace);
  if (!st.ok()) {
    std::cerr << "error: " << st.message() << "\n";
    return 1;
  }
  std::cout << "wrote " << trace.size() << " records (" << name << ", " << hours
            << " h) to " << out << "\n";
  return 0;
}

int CmdSummary(const std::string& path) {
  auto trace = LoadOrDie(path);
  if (!trace.ok()) {
    return 1;
  }
  AnalyzeOptions analyze_options;
  analyze_options.trace = &trace.value();
  const TraceAnalysis analysis = Analyze(analyze_options).value();
  const std::vector<NamedAnalysis> named = {{trace.value().header().machine, &analysis}};
  std::cout << RenderTable3(named) << "\n" << RenderTable5(named) << "\n"
            << RenderEventIntervals(named);
  return 0;
}

int CmdValidate(const std::string& path) {
  auto trace = LoadOrDie(path);
  if (!trace.ok()) {
    return 1;
  }
  const ValidationResult v = ValidateTrace(trace.value());
  std::cout << v.records << " records\n" << v.Summary();
  if (v.ok()) {
    std::cout << "trace is structurally valid\n";
    return 0;
  }
  std::cout << "trace is INVALID\n";
  return 1;
}

int CmdDump(const std::string& path, size_t limit) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "error: cannot open " << path << "\n";
    return 1;
  }
  BinaryTraceReader reader(in);
  if (!reader.status().ok()) {
    std::cerr << "error: " << reader.status().message() << "\n";
    return 1;
  }
  std::cout << "# machine " << reader.header().machine << "\n";
  if (!reader.header().description.empty()) {
    std::cout << "# description " << reader.header().description << "\n";
  }
  TraceRecord r;
  size_t n = 0;
  while (reader.Next(&r) && (limit == 0 || n < limit)) {
    std::cout << r.ToString() << "\n";
    ++n;
  }
  if (!reader.status().ok()) {
    std::cerr << "error: " << reader.status().message() << "\n";
    return 1;
  }
  return 0;
}

int CmdConvert(const std::string& in_path, const std::string& out_path) {
  std::ifstream in(in_path);
  if (!in) {
    std::cerr << "error: cannot open " << in_path << "\n";
    return 1;
  }
  auto trace = ReadTextTrace(in);
  if (!trace.ok()) {
    std::cerr << "error: " << trace.status().message() << "\n";
    return 1;
  }
  const Status st = SaveTrace(out_path, trace.value());
  if (!st.ok()) {
    std::cerr << "error: " << st.message() << "\n";
    return 1;
  }
  std::cout << "converted " << trace.value().size() << " records\n";
  return 0;
}

int CmdSlice(const std::string& in_path, const std::string& out_path, double from_s,
             double to_s) {
  auto trace = LoadOrDie(in_path);
  if (!trace.ok()) {
    return 1;
  }
  const Trace slice = SliceByTime(trace.value(), SimTime::FromSeconds(from_s),
                                  SimTime::FromSeconds(to_s));
  const Status st = SaveTrace(out_path, slice);
  if (!st.ok()) {
    std::cerr << "error: " << st.message() << "\n";
    return 1;
  }
  std::cout << "wrote " << slice.size() << " of " << trace.value().size() << " records\n";
  return 0;
}

int CmdUsers(const std::string& path) {
  auto trace = LoadOrDie(path);
  if (!trace.ok()) {
    return 1;
  }
  const auto counts = CountEventsByUser(trace.value());
  std::cout << "user\tevents\n";
  for (const auto& [user, events] : counts) {
    std::cout << user << "\t" << events << "\n";
  }
  return 0;
}

int CmdTop(const std::string& path, size_t n) {
  auto trace = LoadOrDie(path);
  if (!trace.ok()) {
    return 1;
  }
  const PopularityStats stats = AnalyzePopularity(trace.value());
  std::cout << stats.distinct_files << " distinct files, " << stats.total_accesses
            << " accesses\n";
  std::cout << "top " << n << " files' access share: "
            << FormatPercent(stats.TopAccessShare(n), 0) << "\n";
  std::cout << "files covering 50% of accesses: " << stats.FilesForAccessFraction(0.5)
            << "\n";
  std::cout << "files covering 90% of accesses: " << stats.FilesForAccessFraction(0.9)
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string cmd = argv[1];
  if (cmd == "gen") {
    return CmdGen(argc, argv);
  }
  if (cmd == "summary" && argc >= 3) {
    return CmdSummary(argv[2]);
  }
  if (cmd == "validate" && argc >= 3) {
    return CmdValidate(argv[2]);
  }
  if (cmd == "dump" && argc >= 3) {
    return CmdDump(argv[2], argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 0);
  }
  if (cmd == "convert" && argc >= 4) {
    return CmdConvert(argv[2], argv[3]);
  }
  if (cmd == "slice" && argc >= 6) {
    return CmdSlice(argv[2], argv[3], std::atof(argv[4]), std::atof(argv[5]));
  }
  if (cmd == "users" && argc >= 3) {
    return CmdUsers(argv[2]);
  }
  if (cmd == "top" && argc >= 3) {
    return CmdTop(argv[2], argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 10);
  }
  return Usage();
}
