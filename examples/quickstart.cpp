// Quickstart: generate a synthetic trace, analyze it, and run one cache
// simulation — the whole pipeline in one page of code.
//
//   ./quickstart [hours] [trace-name]
//
// Defaults: 4 simulated hours of the A5 (ucbarpa) workload.

#include <cstdlib>
#include <iostream>

#include "src/analysis/analyzer.h"
#include "src/cache/sweep.h"
#include "src/core/experiments.h"
#include "src/trace/validate.h"
#include "src/workload/generator.h"

int main(int argc, char** argv) {
  using namespace bsdtrace;

  const double hours = argc > 1 ? std::atof(argv[1]) : 4.0;
  const std::string name = argc > 2 ? argv[2] : "A5";

  std::cout << "Generating " << hours << " simulated hours of the " << name
            << " workload...\n";
  GeneratorOptions options;
  options.duration = Duration::Hours(hours);
  const GenerationResult result = GenerateTrace(ProfileByName(name), options);
  const Trace& trace = result.trace;
  std::cout << "  " << trace.size() << " trace records, "
            << result.kernel_counters.opens + result.kernel_counters.creates << " opens, "
            << FormatBytes(static_cast<double>(result.kernel_counters.bytes_read +
                                               result.kernel_counters.bytes_written))
            << " of file data touched\n\n";

  // Always validate before analyzing.
  const ValidationResult validation = ValidateTrace(trace);
  if (!validation.ok()) {
    std::cerr << "Trace failed validation:\n" << validation.Summary();
    return 1;
  }

  // Section 5: how the file system is used.
  AnalyzeOptions analyze_options;
  analyze_options.trace = &trace;
  const TraceAnalysis analysis = Analyze(analyze_options).value();
  const std::vector<NamedAnalysis> named = {{name, &analysis}};
  std::cout << RenderTable3(named) << "\n";
  std::cout << RenderTable5(named) << "\n";

  // Section 6: what a disk block cache would do with this workload.
  CacheConfig unix_cache;  // 400 KB, 4 KB blocks
  unix_cache.policy = WritePolicy::kFlushBack;
  unix_cache.flush_interval = Duration::Seconds(30);
  CacheConfig big_cache;
  big_cache.size_bytes = 4u << 20;
  big_cache.policy = WritePolicy::kDelayedWrite;

  for (const CacheConfig& config : {unix_cache, big_cache}) {
    const CacheMetrics m = SimulateCache(trace, config);
    std::cout << config.ToString() << ": miss ratio " << FormatPercent(m.MissRatio()) << " ("
              << m.DiskIos() << " disk I/Os for " << m.logical_accesses
              << " block accesses)\n";
  }
  std::cout << "\nThe paper's headline: the 400 KB UNIX cache roughly halves disk traffic;\n"
               "a multi-megabyte delayed-write cache eliminates 90% or more.\n";
  return 0;
}
