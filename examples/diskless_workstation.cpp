// The paper's motivating question (§1, §5.1): how much network bandwidth
// does a diskless workstation need, and how many users can share one
// 10 Mbit/second network?
//
// Generates a trace, measures per-user demand at two time scales (Table IV),
// and sizes a shared network from the measured burstiness.
//
//   ./diskless_workstation [hours] [trace-name]

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "src/analysis/analyzer.h"
#include "src/core/experiments.h"
#include "src/util/table.h"
#include "src/workload/generator.h"

int main(int argc, char** argv) {
  using namespace bsdtrace;

  const double hours = argc > 1 ? std::atof(argv[1]) : 8.0;
  const std::string name = argc > 2 ? argv[2] : "A5";

  std::cout << "Sizing a network for diskless workstations from " << hours
            << " simulated hours of the " << name << " workload...\n\n";

  GeneratorOptions options;
  options.duration = Duration::Hours(hours);
  const Trace trace = GenerateTraceOnly(ProfileByName(name), options);
  AnalyzeOptions analyze_options;
  analyze_options.trace = &trace;
  const TraceAnalysis analysis = Analyze(analyze_options).value();

  std::cout << RenderTable4({{name, &analysis}}) << "\n";

  // Average demand, and a bursty-peak estimate: mean + 3 sigma of the
  // 10-second per-user throughput.
  const RunningStats& fine = analysis.activity.ten_second.throughput_per_user;
  const RunningStats& coarse = analysis.activity.ten_minute.throughput_per_user;
  const double avg_bps = coarse.mean() * 8;
  const double burst_bps = (fine.mean() + 3 * fine.stddev()) * 8;

  constexpr double kNetworkBps = 10e6;     // 10 Mbit/s Ethernet
  constexpr double kUsableFraction = 0.4;  // realistic sustained utilization

  const double users_by_average = kNetworkBps * kUsableFraction / std::max(avg_bps, 1.0);
  const double users_by_burst = kNetworkBps * kUsableFraction / std::max(burst_bps, 1.0);

  TextTable table({"Measure", "Value"});
  table.AddRow({"Average demand per active user", Cell(avg_bps / 1e3, 2) + " kbit/s"});
  table.AddRow({"Bursty demand (mean + 3 sigma, 10 s)", Cell(burst_bps / 1e3, 1) + " kbit/s"});
  table.AddRow({"10 Mbit/s network, 40% usable", Cell(kNetworkBps * kUsableFraction / 1e6, 1) +
                                                     " Mbit/s"});
  table.AddRow({"Users supportable (average demand)", Cell(static_cast<int64_t>(users_by_average))});
  table.AddRow({"Users supportable (every user bursting)",
                Cell(static_cast<int64_t>(users_by_burst))});
  std::cout << table.Render("Network sizing for diskless workstations") << "\n";

  std::cout << "Paper conclusion: \"a network-based file system using a single 10 Mbit/s\n"
               "network can support many hundreds of users without overloading the\n"
               "network\" — bandwidth is not the limiting factor.\n";
  return 0;
}
