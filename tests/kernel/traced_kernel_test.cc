#include "src/kernel/traced_kernel.h"

#include <gtest/gtest.h>

#include "src/trace/trace.h"

namespace bsdtrace {
namespace {

class TracedKernelTest : public ::testing::Test {
 protected:
  TracedKernelTest()
      : fs_(FsOptions{.block_size = 4096, .frag_size = 1024, .total_blocks = 256}),
        kernel_(&fs_, &trace_) {}

  // Creates a file of `size` bytes directly in the FS (untraced setup).
  void Seed(const std::string& path, uint64_t size) {
    auto ino = fs_.CreateFile(path);
    ASSERT_TRUE(ino.ok());
    ASSERT_TRUE(fs_.SetFileSize(ino.value(), size, SimTime::Origin()).ok());
  }

  const TraceRecord& LastRecord() { return trace_.records().back(); }

  FileSystem fs_;
  Trace trace_;
  TracedKernel kernel_;
};

TEST_F(TracedKernelTest, OpenMissingFileFails) {
  auto fd = kernel_.Open("/nope", OpenFlags::ReadOnly(), 1);
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.error(), KernelError::kNoEnt);
  EXPECT_TRUE(trace_.empty());  // failed syscalls are not traced
}

TEST_F(TracedKernelTest, OpenExistingLogsOpenRecord) {
  Seed("/f", 1000);
  kernel_.SetTime(SimTime::FromSeconds(1));
  auto fd = kernel_.Open("/f", OpenFlags::ReadOnly(), 42);
  ASSERT_TRUE(fd.ok());
  ASSERT_EQ(trace_.size(), 1u);
  const TraceRecord& r = LastRecord();
  EXPECT_EQ(r.type, EventType::kOpen);
  EXPECT_EQ(r.user_id, 42u);
  EXPECT_EQ(r.size, 1000u);
  EXPECT_EQ(r.position, 0u);
  EXPECT_EQ(r.mode, AccessMode::kReadOnly);
}

TEST_F(TracedKernelTest, CreateLogsCreateRecord) {
  auto fd = kernel_.Open("/new", OpenFlags::WriteCreate(), 1);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(LastRecord().type, EventType::kCreate);
  EXPECT_EQ(kernel_.counters().creates, 1u);
  EXPECT_EQ(kernel_.counters().opens, 0u);
}

TEST_F(TracedKernelTest, TruncatingOpenLogsCreate) {
  Seed("/f", 500);
  auto fd = kernel_.Open("/f", OpenFlags::WriteCreate(), 1);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(LastRecord().type, EventType::kCreate);
  // The file was zeroed.
  auto size = kernel_.FileSize("/f");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), 0u);
}

TEST_F(TracedKernelTest, ReadsAndWritesAreNotLogged) {
  Seed("/f", 10000);
  auto fd = kernel_.Open("/f", OpenFlags::ReadOnly(), 1);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.Read(fd.value(), 4096).ok());
  ASSERT_TRUE(kernel_.Read(fd.value(), 4096).ok());
  EXPECT_EQ(trace_.size(), 1u);  // only the open
  EXPECT_EQ(kernel_.counters().reads, 2u);
}

TEST_F(TracedKernelTest, ReadClampsAtEof) {
  Seed("/f", 1000);
  auto fd = kernel_.Open("/f", OpenFlags::ReadOnly(), 1);
  ASSERT_TRUE(fd.ok());
  auto n = kernel_.Read(fd.value(), 5000);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 1000u);
  auto n2 = kernel_.Read(fd.value(), 5000);
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(n2.value(), 0u);  // at EOF
}

TEST_F(TracedKernelTest, WriteExtendsFile) {
  auto fd = kernel_.Open("/f", OpenFlags::WriteCreate(), 1);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.Write(fd.value(), 6000).ok());
  auto size = kernel_.FileSize("/f");
  EXPECT_EQ(size.value(), 6000u);
}

TEST_F(TracedKernelTest, CloseRecordsFinalPositionAndSize) {
  Seed("/f", 3000);
  kernel_.SetTime(SimTime::FromSeconds(2));
  auto fd = kernel_.Open("/f", OpenFlags::ReadOnly(), 1);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.Read(fd.value(), 1200).ok());
  kernel_.SetTime(SimTime::FromSeconds(3));
  ASSERT_TRUE(kernel_.Close(fd.value()).ok());
  const TraceRecord& r = LastRecord();
  EXPECT_EQ(r.type, EventType::kClose);
  EXPECT_EQ(r.position, 1200u);
  EXPECT_EQ(r.size, 3000u);
}

TEST_F(TracedKernelTest, SeekLogsFromAndTo) {
  Seed("/f", 10000);
  auto fd = kernel_.Open("/f", OpenFlags::ReadOnly(), 1);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.Read(fd.value(), 100).ok());
  ASSERT_TRUE(kernel_.Seek(fd.value(), 5000).ok());
  const TraceRecord& r = LastRecord();
  EXPECT_EQ(r.type, EventType::kSeek);
  EXPECT_EQ(r.seek_from, 100u);
  EXPECT_EQ(r.seek_to, 5000u);
}

TEST_F(TracedKernelTest, AppendOpenStartsAtEnd) {
  Seed("/f", 700);
  auto fd = kernel_.Open("/f", OpenFlags::Append(), 1);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(LastRecord().position, 700u);
  auto pos = kernel_.Position(fd.value());
  EXPECT_EQ(pos.value(), 700u);
}

TEST_F(TracedKernelTest, ExclusiveCreateFailsIfExists) {
  Seed("/f", 10);
  OpenFlags flags = OpenFlags::WriteCreate();
  flags.exclusive = true;
  auto fd = kernel_.Open("/f", flags, 1);
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.error(), KernelError::kExist);
}

TEST_F(TracedKernelTest, BadFdErrors) {
  EXPECT_EQ(kernel_.Read(99, 10).error(), KernelError::kBadF);
  EXPECT_EQ(kernel_.Write(99, 10).error(), KernelError::kBadF);
  EXPECT_EQ(kernel_.Seek(99, 0).error(), KernelError::kBadF);
  EXPECT_EQ(kernel_.Close(99).error(), KernelError::kBadF);
}

TEST_F(TracedKernelTest, ModeEnforcement) {
  Seed("/f", 100);
  auto ro = kernel_.Open("/f", OpenFlags::ReadOnly(), 1);
  ASSERT_TRUE(ro.ok());
  EXPECT_EQ(kernel_.Write(ro.value(), 10).error(), KernelError::kBadF);
  auto wo = kernel_.Open("/f", OpenFlags{.write = true}, 1);
  ASSERT_TRUE(wo.ok());
  EXPECT_EQ(kernel_.Read(wo.value(), 10).error(), KernelError::kBadF);
}

TEST_F(TracedKernelTest, OpenFileLimit) {
  KernelOptions options;
  options.max_open_files = 2;
  Trace trace;
  TracedKernel small(&fs_, &trace, options);
  Seed("/f", 10);
  ASSERT_TRUE(small.Open("/f", OpenFlags::ReadOnly(), 1).ok());
  ASSERT_TRUE(small.Open("/f", OpenFlags::ReadOnly(), 1).ok());
  EXPECT_EQ(small.Open("/f", OpenFlags::ReadOnly(), 1).error(), KernelError::kMFile);
}

TEST_F(TracedKernelTest, UnlinkLogsAndRemoves) {
  Seed("/f", 10);
  ASSERT_TRUE(kernel_.Unlink("/f", 7).ok());
  EXPECT_EQ(LastRecord().type, EventType::kUnlink);
  EXPECT_EQ(LastRecord().user_id, 7u);
  EXPECT_FALSE(kernel_.Exists("/f"));
}

TEST_F(TracedKernelTest, UnlinkWhileOpenKeepsDataUntilClose) {
  Seed("/f", 5000);
  auto fd = kernel_.Open("/f", OpenFlags::ReadOnly(), 1);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.Unlink("/f", 1).ok());
  // Classic UNIX: reads keep working on the unlinked file.
  auto n = kernel_.Read(fd.value(), 5000);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 5000u);
  const uint64_t allocated_before = fs_.Statistics().allocated_bytes;
  ASSERT_TRUE(kernel_.Close(fd.value()).ok());
  EXPECT_LT(fs_.Statistics().allocated_bytes, allocated_before);  // storage reclaimed
}

TEST_F(TracedKernelTest, TwoOpensOneUnlinkReclaimOnLastClose) {
  Seed("/f", 4096);
  auto fd1 = kernel_.Open("/f", OpenFlags::ReadOnly(), 1);
  auto fd2 = kernel_.Open("/f", OpenFlags::ReadOnly(), 1);
  ASSERT_TRUE(fd1.ok() && fd2.ok());
  ASSERT_TRUE(kernel_.Unlink("/f", 1).ok());
  ASSERT_TRUE(kernel_.Close(fd1.value()).ok());
  // Still readable through fd2.
  EXPECT_TRUE(kernel_.Read(fd2.value(), 1).ok());
  ASSERT_TRUE(kernel_.Close(fd2.value()).ok());
}

TEST_F(TracedKernelTest, TruncateLogsNewLength) {
  Seed("/f", 9000);
  ASSERT_TRUE(kernel_.Truncate("/f", 1000, 3).ok());
  EXPECT_EQ(LastRecord().type, EventType::kTruncate);
  EXPECT_EQ(LastRecord().size, 1000u);
  EXPECT_EQ(kernel_.FileSize("/f").value(), 1000u);
}

TEST_F(TracedKernelTest, ExecveLogsProgramSize) {
  Seed("/bin_prog", 24576);
  ASSERT_TRUE(kernel_.Execve("/bin_prog", 9).ok());
  EXPECT_EQ(LastRecord().type, EventType::kExecve);
  EXPECT_EQ(LastRecord().size, 24576u);
  EXPECT_EQ(LastRecord().user_id, 9u);
}

TEST_F(TracedKernelTest, ExecveMissingProgramFails) {
  EXPECT_EQ(kernel_.Execve("/missing", 1).error(), KernelError::kNoEnt);
}

TEST_F(TracedKernelTest, TimestampsQuantizedToTracerClock) {
  Seed("/f", 10);
  kernel_.SetTime(SimTime::FromMicros(1'234'567));
  auto fd = kernel_.Open("/f", OpenFlags::ReadOnly(), 1);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(LastRecord().time.micros(), 1'230'000);
}

TEST_F(TracedKernelTest, QuantizationCanBeDisabled) {
  KernelOptions options;
  options.quantize_timestamps = false;
  Trace trace;
  TracedKernel exact(&fs_, &trace, options);
  Seed("/f", 10);
  exact.SetTime(SimTime::FromMicros(1'234'567));
  ASSERT_TRUE(exact.Open("/f", OpenFlags::ReadOnly(), 1).ok());
  EXPECT_EQ(trace.records().back().time.micros(), 1'234'567);
}

TEST_F(TracedKernelTest, OpenIdsAreUnique) {
  Seed("/f", 10);
  auto fd1 = kernel_.Open("/f", OpenFlags::ReadOnly(), 1);
  auto fd2 = kernel_.Open("/f", OpenFlags::ReadOnly(), 1);
  ASSERT_TRUE(fd1.ok() && fd2.ok());
  EXPECT_NE(trace_.records()[0].open_id, trace_.records()[1].open_id);
  // Same file id for both opens.
  EXPECT_EQ(trace_.records()[0].file_id, trace_.records()[1].file_id);
}

TEST_F(TracedKernelTest, DirectoriesReadableAsFiles) {
  ASSERT_TRUE(kernel_.MkdirAll("/home/u").ok());
  ASSERT_TRUE(kernel_.Open("/home", OpenFlags::ReadOnly(), 1).ok());
  // But not writable.
  EXPECT_EQ(kernel_.Open("/home", OpenFlags{.write = true}, 1).error(), KernelError::kIsDir);
}

TEST_F(TracedKernelTest, CountersTrackBytes) {
  auto fd = kernel_.Open("/f", OpenFlags::WriteCreate(), 1);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.Write(fd.value(), 1234).ok());
  ASSERT_TRUE(kernel_.Close(fd.value()).ok());
  EXPECT_EQ(kernel_.counters().bytes_written, 1234u);
  EXPECT_EQ(kernel_.counters().closes, 1u);
}

TEST_F(TracedKernelTest, OpenWithNoDirectionRejected) {
  EXPECT_EQ(kernel_.Open("/f", OpenFlags{}, 1).error(), KernelError::kInval);
}

TEST(KernelErrorName, Named) {
  EXPECT_STREQ(KernelErrorName(KernelError::kNoEnt), "ENOENT");
  EXPECT_STREQ(KernelErrorName(KernelError::kMFile), "EMFILE");
}

}  // namespace
}  // namespace bsdtrace
