#include "src/workload/generator.h"

#include <gtest/gtest.h>

#include "src/trace/validate.h"

namespace bsdtrace {
namespace {

GeneratorOptions ShortRun(double hours = 2.0, uint64_t seed = 42) {
  GeneratorOptions options;
  options.duration = Duration::Hours(hours);
  options.seed = seed;
  return options;
}

TEST(Generator, ProducesNonEmptyValidTrace) {
  const GenerationResult result = GenerateTrace(ProfileA5(), ShortRun());
  EXPECT_GT(result.trace.size(), 1000u);
  EXPECT_GT(result.tasks_executed, 50u);
  const ValidationResult v = ValidateTrace(result.trace);
  EXPECT_TRUE(v.ok()) << v.Summary();
}

TEST(Generator, RecordsAreTimeSortedAndClipped) {
  const GeneratorOptions options = ShortRun();
  const Trace trace = GenerateTraceOnly(ProfileA5(), options);
  SimTime prev = SimTime::Origin();
  for (const TraceRecord& r : trace.records()) {
    EXPECT_GE(r.time, prev);
    prev = r.time;
  }
  EXPECT_LE(trace.duration(), options.duration);
}

TEST(Generator, DeterministicForSeed) {
  const Trace a = GenerateTraceOnly(ProfileA5(), ShortRun(1.0, 7));
  const Trace b = GenerateTraceOnly(ProfileA5(), ShortRun(1.0, 7));
  EXPECT_EQ(a, b);
}

TEST(Generator, DifferentSeedsDiffer) {
  const Trace a = GenerateTraceOnly(ProfileA5(), ShortRun(1.0, 7));
  const Trace b = GenerateTraceOnly(ProfileA5(), ShortRun(1.0, 8));
  EXPECT_NE(a, b);
}

TEST(Generator, AllEventTypesPresent) {
  const Trace trace = GenerateTraceOnly(ProfileA5(), ShortRun(4.0));
  uint64_t counts[8] = {};
  for (const TraceRecord& r : trace.records()) {
    counts[static_cast<size_t>(r.type)] += 1;
  }
  for (EventType type : {EventType::kOpen, EventType::kCreate, EventType::kClose,
                         EventType::kSeek, EventType::kUnlink, EventType::kExecve}) {
    EXPECT_GT(counts[static_cast<size_t>(type)], 0u) << EventTypeName(type);
  }
}

TEST(Generator, DaemonRewritesEveryPeriod) {
  // In 30 simulated minutes each host file is rewritten ~10 times.
  MachineProfile profile = ProfileA5();
  const GenerationResult result = GenerateTrace(profile, ShortRun(0.5));
  // Count creates by the daemon user (user id 0).
  uint64_t daemon_creates = 0;
  for (const TraceRecord& r : result.trace.records()) {
    if (r.type == EventType::kCreate && r.user_id == 0) {
      ++daemon_creates;
    }
  }
  const double expected = profile.daemon_host_count * 10.0;
  EXPECT_GT(daemon_creates, expected * 0.6);
  EXPECT_LT(daemon_creates, expected * 1.6);
}

TEST(Generator, HeaderDescribesTrace) {
  const Trace trace = GenerateTraceOnly(ProfileE3(), ShortRun(0.2));
  EXPECT_EQ(trace.header().machine, "ucbernie");
  EXPECT_NE(trace.header().description.find("E3"), std::string::npos);
}

TEST(Generator, KernelCountersConsistentWithTrace) {
  const GenerationResult result = GenerateTrace(ProfileA5(), ShortRun(1.0));
  uint64_t execves = 0;
  for (const TraceRecord& r : result.trace.records()) {
    execves += r.type == EventType::kExecve ? 1 : 0;
  }
  // Counters include events clipped from the trace tail, so >=.
  EXPECT_GE(result.kernel_counters.execves, execves);
  EXPECT_GT(result.kernel_counters.bytes_read, 0u);
  EXPECT_GT(result.kernel_counters.bytes_written, 0u);
}

TEST(Generator, AllThreeProfilesGenerate) {
  for (const MachineProfile& profile : {ProfileA5(), ProfileE3(), ProfileC4()}) {
    const GenerationResult result = GenerateTrace(profile, ShortRun(0.5));
    EXPECT_GT(result.trace.size(), 100u) << profile.trace_name;
    const ValidationResult v = ValidateTrace(result.trace);
    EXPECT_TRUE(v.ok()) << profile.trace_name << "\n" << v.Summary();
  }
}

TEST(Generator, FsSurvivesWithoutExhaustion) {
  const GenerationResult result = GenerateTrace(ProfileA5(), ShortRun(2.0));
  EXPECT_GT(result.fs_stats.free_bytes, result.fs_stats.allocated_bytes);
}

TEST(Generator, IntensityScalesActivity) {
  MachineProfile calm = ProfileA5();
  MachineProfile busy = ProfileA5();
  busy.intensity = 2.5;
  const Trace a = GenerateTraceOnly(calm, ShortRun(2.0, 3));
  const Trace b = GenerateTraceOnly(busy, ShortRun(2.0, 3));
  // Busier machine: clearly more records (not necessarily exactly 2.5x —
  // sessions saturate), and still a valid trace.
  EXPECT_GT(b.size(), a.size() * 3 / 2);
  EXPECT_TRUE(ValidateTrace(b).ok());
}

TEST(ProfileByName, ResolvesAllNames) {
  EXPECT_EQ(ProfileByName("A5").machine, "ucbarpa");
  EXPECT_EQ(ProfileByName("E3").machine, "ucbernie");
  EXPECT_EQ(ProfileByName("C4").machine, "ucbcad");
  EXPECT_EQ(ProfileByName("ucbcad").machine, "ucbcad");
  // The lenient legacy wrapper still falls back to A5 (calibrate and the
  // examples rely on it); user-facing entry points use the error-returning
  // lookup below instead.
  EXPECT_EQ(ProfileByName("unknown").machine, "ucbarpa");
}

TEST(ProfileByNameOrError, UnknownNamesErrorListingValidOnes) {
  EXPECT_TRUE(ProfileByNameOrError("a5").ok());
  EXPECT_TRUE(ProfileByNameOrError("ucbernie").ok());
  const auto bad = ProfileByNameOrError("B9");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("B9"), std::string::npos);
  EXPECT_NE(bad.status().message().find("A5"), std::string::npos);
  EXPECT_NE(bad.status().message().find("E3"), std::string::npos);
  EXPECT_NE(bad.status().message().find("C4"), std::string::npos);
}

TEST(PopulationScale, RescalesMachineWideKnobsOnly) {
  MachineProfile profile = ProfileA5();
  const MachineProfile base = profile;
  profile.scale.users = base.user_population * 4;
  const MachineProfile scaled = ApplyPopulationScale(profile);
  EXPECT_EQ(scaled.user_population, base.user_population * 4);
  // Machine-wide arrival means shrink by the factor so per-user rates hold;
  // daemon fleet grows with the machine.
  EXPECT_NEAR(scaled.mail_delivery_mean.seconds(),
              base.mail_delivery_mean.seconds() / 4.0, 1e-9);
  EXPECT_EQ(scaled.daemon_host_count, base.daemon_host_count * 4);
  // Per-user behavior knobs are untouched.
  EXPECT_EQ(scaled.intensity, base.intensity);
  EXPECT_EQ(scaled.mix.compile, base.mix.compile);
  // Resolved profiles are fixed points: applying again changes nothing.
  const MachineProfile twice = ApplyPopulationScale(scaled);
  EXPECT_EQ(twice.user_population, scaled.user_population);
  EXPECT_EQ(twice.daemon_host_count, scaled.daemon_host_count);
}

TEST(PopulationScale, IdentityWhenUnsetOrEqual) {
  const MachineProfile base = ProfileA5();
  MachineProfile same = base;
  same.scale.users = base.user_population;
  EXPECT_EQ(ApplyPopulationScale(base).user_population, base.user_population);
  EXPECT_EQ(ApplyPopulationScale(same).mail_delivery_mean.micros(),
            base.mail_delivery_mean.micros());
}

}  // namespace
}  // namespace bsdtrace
