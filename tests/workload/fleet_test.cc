#include "src/workload/fleet.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/trace/validate.h"
#include "src/workload/profile.h"
#include "src/workload/sharded_generator.h"

namespace bsdtrace {
namespace {

// -- Spec parsing -------------------------------------------------------------

TEST(FleetSpec, SingleProfile) {
  const auto fleet = ParseFleetSpec("A5");
  ASSERT_TRUE(fleet.ok()) << fleet.status().message();
  EXPECT_EQ(fleet.value().spec, "A5");
  ASSERT_EQ(fleet.value().machines.size(), 1u);
  EXPECT_EQ(fleet.value().machines[0].trace_name, "A5");
}

TEST(FleetSpec, PrefixAndCountsAndCanonicalization) {
  const auto fleet = ParseFleetSpec("fleet:4xucbarpa+2xE3+2xC4");
  ASSERT_TRUE(fleet.ok()) << fleet.status().message();
  // Canonical: trace names, counts preserved, no "fleet:" prefix.
  EXPECT_EQ(fleet.value().spec, "4xA5+2xE3+2xC4");
  ASSERT_EQ(fleet.value().machines.size(), 8u);
  EXPECT_EQ(fleet.value().machines[0].trace_name, "A5");
  EXPECT_EQ(fleet.value().machines[4].trace_name, "E3");
  EXPECT_EQ(fleet.value().machines[6].trace_name, "C4");
}

TEST(FleetSpec, UnknownProfileNamesValidOnes) {
  const auto fleet = ParseFleetSpec("fleet:2xB9");
  ASSERT_FALSE(fleet.ok());
  // The error must teach the valid names (the old ProfileByName silently
  // handed back A5 instead).
  EXPECT_NE(fleet.status().message().find("B9"), std::string::npos);
  EXPECT_NE(fleet.status().message().find("A5"), std::string::npos);
  EXPECT_NE(fleet.status().message().find("C4"), std::string::npos);
}

TEST(FleetSpec, MalformedSpecsError) {
  EXPECT_FALSE(ParseFleetSpec("").ok());
  EXPECT_FALSE(ParseFleetSpec("fleet:").ok());
  EXPECT_FALSE(ParseFleetSpec("A5++E3").ok());
  EXPECT_FALSE(ParseFleetSpec("0xA5").ok());
  EXPECT_FALSE(ParseFleetSpec("3x").ok());
  EXPECT_FALSE(ParseFleetSpec("99999xA5").ok());  // count cap
}

TEST(FleetSpec, UsersSetsPopulationScale) {
  const auto fleet = ParseFleetSpec("A5+E3", 1000);
  ASSERT_TRUE(fleet.ok());
  for (const MachineProfile& machine : fleet.value().machines) {
    EXPECT_EQ(machine.scale.users, 1000);
    EXPECT_EQ(ApplyPopulationScale(machine).user_population, 1000);
  }
}

// -- Layout -------------------------------------------------------------------

TEST(FleetLayout, BasesAccumulateWithScaleResolved) {
  auto fleet = ParseFleetSpec("2xA5+C4", 100);
  ASSERT_TRUE(fleet.ok());
  const std::vector<FleetInstanceTag> tags = FleetLayout(fleet.value());
  ASSERT_EQ(tags.size(), 3u);
  // Each instance owns population + 2 ids (two daemon pseudo-users).
  EXPECT_EQ(tags[0], (FleetInstanceTag{"A5", 0, 100}));
  EXPECT_EQ(tags[1], (FleetInstanceTag{"A5", 102, 100}));
  EXPECT_EQ(tags[2], (FleetInstanceTag{"C4", 204, 100}));
}

// -- Instance seeds -----------------------------------------------------------

TEST(FleetInstanceSeed, InstanceZeroKeepsBaseSeedOthersDiffer) {
  const uint64_t seed = 19851201;
  EXPECT_EQ(internal::FleetInstanceSeed(seed, 0), seed);
  std::set<uint64_t> seen{seed};
  for (size_t i = 1; i < 64; ++i) {
    EXPECT_TRUE(seen.insert(internal::FleetInstanceSeed(seed, i)).second)
        << "instance " << i << " collides";
  }
}

// -- Generation ---------------------------------------------------------------

FleetGeneratorOptions ShortFleetOptions(int shards, int threads) {
  FleetGeneratorOptions options;
  options.base.duration = Duration::Minutes(40);
  options.base.seed = 424242;
  options.shards_per_machine = shards;
  options.threads = threads;
  return options;
}

FleetGenerationResult GenerateFleet(const std::string& spec, int shards, int threads,
                                    int users = 0) {
  auto fleet = ParseFleetSpec(spec, users);
  EXPECT_TRUE(fleet.ok()) << fleet.status().message();
  auto result = GenerateFleetTrace(fleet.value(), ShortFleetOptions(shards, threads));
  EXPECT_TRUE(result.ok()) << result.status().message();
  return std::move(result).value();
}

// A fleet of one machine reproduces the single-machine sharded record stream
// exactly (the header differs: fleet headers carry the tag).
TEST(FleetGenerate, OneMachineFleetMatchesShardedRecords) {
  ShardedGeneratorOptions sharded;
  sharded.base.duration = Duration::Minutes(40);
  sharded.base.seed = 424242;
  sharded.shard_count = 4;
  sharded.threads = 2;
  const GenerationResult single = GenerateTraceSharded(ProfileA5(), sharded);

  const FleetGenerationResult fleet = GenerateFleet("A5", /*shards=*/4, /*threads=*/2);
  EXPECT_EQ(single.trace.records(), fleet.trace.records());
  EXPECT_NE(single.trace.header().description, fleet.trace.header().description);
  EXPECT_EQ(ParseFleetTag(fleet.trace.header().description),
            (std::vector<FleetInstanceTag>{{"A5", 0, ProfileA5().user_population}}));
}

TEST(FleetGenerate, DeterministicAcrossThreadCountsAndRuns) {
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  const FleetGenerationResult once = GenerateFleet("2xA5+C4", 2, 1);
  const FleetGenerationResult again = GenerateFleet("2xA5+C4", 2, 1);
  const FleetGenerationResult wide = GenerateFleet("2xA5+C4", 2, static_cast<int>(hw));
  EXPECT_EQ(once.trace, again.trace);
  EXPECT_EQ(once.trace, wide.trace);
  EXPECT_FALSE(once.trace.empty());
}

TEST(FleetGenerate, MergedFleetTraceIsTimeSortedAndValid) {
  const FleetGenerationResult result = GenerateFleet("2xA5+E3", 2, 2);
  ASSERT_FALSE(result.trace.empty());
  const ValidationResult report = ValidateTrace(result.trace);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// Identical profiles in one fleet must not replay the same trace: the
// per-instance seeds decorrelate them.
TEST(FleetGenerate, IdenticalProfilesDecorrelate) {
  const FleetGenerationResult result = GenerateFleet("2xA5", 1, 2);
  const std::vector<FleetInstanceTag> tags = ParseFleetTag(result.trace.header().description);
  ASSERT_EQ(tags.size(), 2u);
  // Count records per instance by user range; mirrors of one trace would tie.
  std::map<size_t, uint64_t> per_instance;
  for (const TraceRecord& r : result.trace.records()) {
    if (r.type == EventType::kOpen || r.type == EventType::kCreate) {
      for (size_t i = 0; i < tags.size(); ++i) {
        if (r.user_id >= tags[i].user_base &&
            r.user_id < tags[i].user_base + static_cast<UserId>(tags[i].user_population) + 2) {
          per_instance[i] += 1;
        }
      }
    }
  }
  ASSERT_EQ(per_instance.size(), 2u);
  EXPECT_NE(per_instance[0], per_instance[1]);
}

// Satellite invariants at fleet scope: unique OpenIds across the whole
// merged trace for every shard/thread combination, and user ids confined to
// their instance's tagged range.
TEST(FleetGenerate, UniqueIdsAndUserRangesAcrossShardAndThreadCounts) {
  for (int shards : {1, 3}) {
    for (int threads : {1, 4}) {
      const FleetGenerationResult result = GenerateFleet("A5+E3", shards, threads);
      const std::vector<FleetInstanceTag> tags =
          ParseFleetTag(result.trace.header().description);
      ASSERT_EQ(tags.size(), 2u);
      const UserId id_end =
          tags[1].user_base + static_cast<UserId>(tags[1].user_population) + 2;
      std::set<OpenId> opens;
      SimTime prev;
      for (const TraceRecord& r : result.trace.records()) {
        EXPECT_LE(prev, r.time);
        prev = r.time;
        if (r.type == EventType::kOpen || r.type == EventType::kCreate) {
          EXPECT_TRUE(opens.insert(r.open_id).second)
              << "duplicate open id " << r.open_id << " at shards=" << shards;
          EXPECT_LT(r.user_id, id_end);
        }
      }
    }
  }
}

// Population scaling inside a fleet: the scaled machine materializes the
// scaled population (users appear beyond the paper's 90) and the tag
// advertises the scaled count.
TEST(FleetGenerate, ScaledPopulationShowsUpInTagAndUsers)
{
  const FleetGenerationResult result =
      GenerateFleet("A5", /*shards=*/4, /*threads=*/2, /*users=*/300);
  const std::vector<FleetInstanceTag> tags = ParseFleetTag(result.trace.header().description);
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0].user_population, 300);
  UserId max_user = 0;
  for (const TraceRecord& r : result.trace.records()) {
    if (r.type == EventType::kOpen || r.type == EventType::kCreate) {
      max_user = std::max(max_user, r.user_id);
    }
  }
  // With 300 users the top of the range (ids 2..301) should be populated
  // well past the unscaled 90-user ceiling of id 91.
  EXPECT_GT(max_user, 150u);
  EXPECT_LE(max_user, 301u);
}

}  // namespace
}  // namespace bsdtrace
