#include "src/workload/context.h"

#include <gtest/gtest.h>

#include "src/trace/trace.h"

namespace bsdtrace {
namespace {

class ContextTest : public ::testing::Test {
 protected:
  ContextTest()
      : fs_(FsOptions{.block_size = 4096, .frag_size = 1024, .total_blocks = 512}),
        kernel_(&fs_, &trace_),
        rng_(7),
        ctx_(&kernel_, &profile_, &rng_, SimTime::FromSeconds(10)) {}

  void Seed(const std::string& path, uint64_t size) {
    auto ino = fs_.CreateFile(path);
    ASSERT_TRUE(ino.ok());
    ASSERT_TRUE(fs_.SetFileSize(ino.value(), size, SimTime::Origin()).ok());
  }

  size_t CountType(EventType type) {
    size_t n = 0;
    for (const auto& r : trace_.records()) {
      n += r.type == type ? 1 : 0;
    }
    return n;
  }

  FileSystem fs_;
  Trace trace_;
  TracedKernel kernel_;
  MachineProfile profile_ = ProfileA5();
  Rng rng_;
  WorkloadContext ctx_;
};

TEST_F(ContextTest, AdvanceMovesClockForwardOnly) {
  const SimTime before = ctx_.now();
  ctx_.Advance(Duration::Seconds(-5));
  EXPECT_EQ(ctx_.now(), before);
  ctx_.Advance(Duration::Seconds(5));
  EXPECT_EQ(ctx_.now(), before + Duration::Seconds(5));
}

TEST_F(ContextTest, ReadWholeFileReadsAllBytesAndAdvances) {
  Seed("/f", 40000);
  const SimTime before = ctx_.now();
  EXPECT_EQ(ctx_.ReadWholeFile("/f", 1), 40000u);
  EXPECT_GT(ctx_.now(), before);
  EXPECT_EQ(CountType(EventType::kOpen), 1u);
  EXPECT_EQ(CountType(EventType::kClose), 1u);
}

TEST_F(ContextTest, ReadWholeFileMissingReturnsZero) {
  EXPECT_EQ(ctx_.ReadWholeFile("/missing", 1), 0u);
  EXPECT_TRUE(trace_.empty());
}

TEST_F(ContextTest, SlowRateTakesLonger) {
  Seed("/f", 40000);
  const SimTime t0 = ctx_.now();
  ctx_.ReadWholeFile("/f", 1, 400e3);
  const Duration fast = ctx_.now() - t0;
  const SimTime t1 = ctx_.now();
  ctx_.ReadWholeFile("/f", 1, 4e3);
  const Duration slow = ctx_.now() - t1;
  EXPECT_GT(slow, fast);
}

TEST_F(ContextTest, HoldExtendsOpenDuration) {
  Seed("/f", 100);
  const SimTime t0 = ctx_.now();
  ctx_.ReadWholeFile("/f", 1, 0, Duration::Seconds(30));
  EXPECT_GE((ctx_.now() - t0).seconds(), 30.0);
}

TEST_F(ContextTest, WriteNewFileCreates) {
  EXPECT_TRUE(ctx_.WriteNewFile("/out", 1, 5000));
  EXPECT_EQ(kernel_.FileSize("/out").value(), 5000u);
  EXPECT_EQ(CountType(EventType::kCreate), 1u);
}

TEST_F(ContextTest, PeekReadsPrefixOnly) {
  Seed("/f", 10000);
  EXPECT_EQ(ctx_.PeekFile("/f", 1, 1024), 1024u);
  // Close position should be 1024.
  EXPECT_EQ(trace_.records().back().position, 1024u);
}

TEST_F(ContextTest, PeekClampsToFileSize) {
  Seed("/small", 300);
  EXPECT_EQ(ctx_.PeekFile("/small", 1, 4096), 300u);
}

TEST_F(ContextTest, AppendSeeksToEndThenWrites) {
  Seed("/log", 2000);
  EXPECT_TRUE(ctx_.AppendFile("/log", 1, 500));
  EXPECT_EQ(kernel_.FileSize("/log").value(), 2500u);
  EXPECT_EQ(CountType(EventType::kSeek), 1u);
  // The seek repositions from 0 to the old end.
  for (const auto& r : trace_.records()) {
    if (r.type == EventType::kSeek) {
      EXPECT_EQ(r.seek_from, 0u);
      EXPECT_EQ(r.seek_to, 2000u);
    }
  }
}

TEST_F(ContextTest, AppendToMissingFileCreatesIt) {
  EXPECT_TRUE(ctx_.AppendFile("/fresh", 1, 100));
  EXPECT_EQ(kernel_.FileSize("/fresh").value(), 100u);
}

TEST_F(ContextTest, SeekReadStaysInBounds) {
  Seed("/db", 100000);
  EXPECT_EQ(ctx_.SeekRead("/db", 1, 50000, 1024), 1024u);
  EXPECT_EQ(ctx_.SeekRead("/db", 1, 99999999, 1024), 0u);  // clamped to EOF
}

TEST_F(ContextTest, RandomReadsPerformsProbes) {
  Seed("/db", 100000);
  EXPECT_EQ(ctx_.RandomReads("/db", 1, 4, 1024), 4);
  EXPECT_EQ(CountType(EventType::kSeek), 4u);
  EXPECT_EQ(CountType(EventType::kOpen), 1u);
}

TEST_F(ContextTest, RandomUpdateOpensReadWrite) {
  Seed("/db", 100000);
  EXPECT_GT(ctx_.RandomUpdate("/db", 1, 3, 1024), 0);
  EXPECT_EQ(trace_.records()[0].mode, AccessMode::kReadWrite);
}

TEST_F(ContextTest, ExecAndUnlinkAndTruncate) {
  Seed("/prog", 30000);
  EXPECT_TRUE(ctx_.Exec("/prog", 1));
  EXPECT_TRUE(ctx_.Truncate("/prog", 1, 100));
  EXPECT_TRUE(ctx_.Unlink("/prog", 1));
  EXPECT_FALSE(ctx_.Exec("/prog", 1));
  EXPECT_EQ(CountType(EventType::kExecve), 1u);
  EXPECT_EQ(CountType(EventType::kTruncate), 1u);
  EXPECT_EQ(CountType(EventType::kUnlink), 1u);
}

TEST_F(ContextTest, RawDescriptorLifecycle) {
  const Fd fd = ctx_.OpenRaw("/raw", OpenFlags::WriteCreate(), 1);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(ctx_.RawWrite(fd, 1000), 1000u);
  ctx_.RawSeek(fd, 0);
  ctx_.CloseRaw(fd);
  EXPECT_EQ(kernel_.FileSize("/raw").value(), 1000u);
  EXPECT_EQ(CountType(EventType::kClose), 1u);
}

TEST_F(ContextTest, CloseRawIgnoresInvalidFd) {
  ctx_.CloseRaw(-1);  // must not crash or log
  EXPECT_TRUE(trace_.empty());
}

TEST_F(ContextTest, DeferWithoutSchedulerRunsInline) {
  bool ran = false;
  ctx_.Defer(Duration::Seconds(5), [&](WorkloadContext& c) {
    ran = true;
    EXPECT_GE(c.now(), SimTime::FromSeconds(15));
  });
  EXPECT_TRUE(ran);
}

TEST_F(ContextTest, DeferWithSchedulerRunsLater) {
  EventScheduler scheduler;
  WorkloadContext ctx(&kernel_, &profile_, &rng_, SimTime::FromSeconds(1), &scheduler);
  bool ran = false;
  ctx.Defer(Duration::Seconds(10), [&](WorkloadContext& c) {
    ran = true;
    EXPECT_EQ(c.now(), SimTime::FromSeconds(11));
  });
  EXPECT_FALSE(ran);
  scheduler.Run(SimTime::FromSeconds(100));
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace bsdtrace
