#include "src/workload/scheduler.h"

#include <vector>

#include <gtest/gtest.h>

namespace bsdtrace {
namespace {

TEST(EventScheduler, RunsInTimeOrder) {
  EventScheduler s;
  std::vector<int> order;
  s.At(SimTime::FromSeconds(3), [&](SimTime) { order.push_back(3); });
  s.At(SimTime::FromSeconds(1), [&](SimTime) { order.push_back(1); });
  s.At(SimTime::FromSeconds(2), [&](SimTime) { order.push_back(2); });
  EXPECT_EQ(s.Run(SimTime::FromSeconds(100)), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventScheduler, FifoForEqualTimes) {
  EventScheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.At(SimTime::FromSeconds(1), [&order, i](SimTime) { order.push_back(i); });
  }
  s.Run(SimTime::FromSeconds(2));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventScheduler, HorizonIsExclusive) {
  EventScheduler s;
  int ran = 0;
  s.At(SimTime::FromSeconds(5), [&](SimTime) { ++ran; });
  EXPECT_EQ(s.Run(SimTime::FromSeconds(5)), 0u);
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_EQ(s.Run(SimTime::FromSeconds(5.1)), 1u);
  EXPECT_EQ(ran, 1);
}

TEST(EventScheduler, TasksMayScheduleMoreTasks) {
  EventScheduler s;
  int count = 0;
  std::function<void(SimTime)> chain = [&](SimTime t) {
    ++count;
    if (count < 10) {
      s.At(t + Duration::Seconds(1), chain);
    }
  };
  s.At(SimTime::FromSeconds(0), chain);
  s.Run(SimTime::FromSeconds(100));
  EXPECT_EQ(count, 10);
}

TEST(EventScheduler, ChainStopsAtHorizon) {
  EventScheduler s;
  int count = 0;
  std::function<void(SimTime)> chain = [&](SimTime t) {
    ++count;
    s.At(t + Duration::Seconds(1), chain);
  };
  s.At(SimTime::FromSeconds(0), chain);
  s.Run(SimTime::FromSeconds(5));
  EXPECT_EQ(count, 5);  // t = 0..4
}

TEST(EventScheduler, TaskReceivesScheduledTime) {
  EventScheduler s;
  SimTime seen;
  s.At(SimTime::FromSeconds(7), [&](SimTime t) { seen = t; });
  s.Run(SimTime::FromSeconds(10));
  EXPECT_EQ(seen, SimTime::FromSeconds(7));
}

TEST(EventScheduler, EmptyQueue) {
  EventScheduler s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.Run(SimTime::FromSeconds(1)), 0u);
}

}  // namespace
}  // namespace bsdtrace
