// Unit tests for the application task models: each task must emit the trace
// pattern the paper attributes to its real-world counterpart.

#include "src/workload/apps.h"

#include <gtest/gtest.h>

#include "src/analysis/analyzer.h"
#include "src/trace/validate.h"
#include "src/workload/generator.h"
#include "src/workload/system_image.h"
#include "tests/testing/analyze_helpers.h"

namespace bsdtrace {
namespace {

class AppsTest : public ::testing::Test {
 protected:
  AppsTest()
      : profile_(ProfileA5()),
        fs_(FsOptions{.total_blocks = 524288}),
        kernel_(&fs_, &trace_),
        rng_(99) {
    image_ = BuildSystemImage(fs_, profile_, rng_);
    user_.id = 2;
    user_.home = image_.home_dirs[0];
    user_.mailbox = image_.mail_dir + "/user0";
    user_.rng = Rng(1234);
    for (int i = 0; i < 6; ++i) {
      user_.sources.push_back(user_.home + "/src" + std::to_string(i) + ".c");
    }
    for (int i = 0; i < 3; ++i) {
      user_.docs.push_back(user_.home + "/doc" + std::to_string(i));
    }
  }

  WorkloadContext Ctx() {
    return WorkloadContext(&kernel_, &profile_, &user_.rng, SimTime::FromSeconds(100));
  }

  // Sorts records (tasks may emit deferred work out of order) and analyzes.
  TraceAnalysis Analyze() {
    std::stable_sort(
        trace_.records().begin(), trace_.records().end(),
        [](const TraceRecord& a, const TraceRecord& b) { return a.time < b.time; });
    return AnalyzeForTest(trace_);
  }

  uint64_t Count(EventType type) {
    uint64_t n = 0;
    for (const TraceRecord& r : trace_.records()) {
      n += r.type == type ? 1 : 0;
    }
    return n;
  }

  MachineProfile profile_;
  FileSystem fs_;
  Trace trace_;
  TracedKernel kernel_;
  Rng rng_;
  SystemImage image_;
  UserState user_;
};

TEST_F(AppsTest, CompileTaskCreatesAndDeletesTemporaries) {
  // Run several compiles; at least one must produce the canonical pattern:
  // execs of cc/as, a /tmp temporary created then unlinked.
  for (int i = 0; i < 10; ++i) {
    WorkloadContext ctx = Ctx();
    RunCompileTask(ctx, user_, image_);
  }
  EXPECT_GT(Count(EventType::kExecve), 10u);  // cc + as at least
  EXPECT_GT(Count(EventType::kCreate), 10u);  // asm temps + objects
  EXPECT_GT(Count(EventType::kUnlink), 5u);   // asm temps deleted
  const TraceAnalysis a = Analyze();
  // Compiler temporaries die within the task: short lifetimes observed.
  EXPECT_GT(a.lifetimes.observed_deaths, 0u);
  EXPECT_GT(a.lifetimes.by_files.FractionAtOrBelow(120.0), 0.3);
}

TEST_F(AppsTest, CompileTasksLeaveValidTrace) {
  for (int i = 0; i < 5; ++i) {
    WorkloadContext ctx = Ctx();
    RunCompileTask(ctx, user_, image_);
  }
  std::stable_sort(trace_.records().begin(), trace_.records().end(),
                   [](const TraceRecord& a, const TraceRecord& b) { return a.time < b.time; });
  const ValidationResult v = ValidateTrace(trace_);
  EXPECT_TRUE(v.ok()) << v.Summary();
}

TEST_F(AppsTest, EditTaskHoldsTempOpenLong) {
  WorkloadContext ctx = Ctx();
  RunEditTask(ctx, user_, image_);
  const TraceAnalysis a = Analyze();
  // The vi temp stays open for the whole session: a multi-minute open.
  EXPECT_GT(a.open_times.seconds.MaxValue(), 60.0);
  EXPECT_EQ(Count(EventType::kUnlink), 1u);  // the temp is removed at the end
}

TEST_F(AppsTest, MailTaskTouchesMailbox) {
  WorkloadContext ctx = Ctx();
  RunMailTask(ctx, user_, image_);
  EXPECT_GT(Count(EventType::kExecve), 0u);  // the Mail program
  EXPECT_GT(Count(EventType::kOpen) + Count(EventType::kCreate), 0u);
}

TEST_F(AppsTest, ShellTaskProducesExecsAndSmallAccesses) {
  for (int i = 0; i < 5; ++i) {
    WorkloadContext ctx = Ctx();
    RunShellTask(ctx, user_, image_);
  }
  EXPECT_GT(Count(EventType::kExecve), 5u);
  const TraceAnalysis a = Analyze();
  // Shell bursts read small things: the access-size CDF is short-file heavy.
  EXPECT_GT(a.file_sizes.by_accesses.FractionAtOrBelow(16 * 1024), 0.5);
  // History appends reposition to end of file.
  EXPECT_GT(Count(EventType::kSeek), 0u);
}

TEST_F(AppsTest, FormatTaskSpoolsAndPrintDeletesLater) {
  WorkloadContext ctx = Ctx();
  RunFormatTask(ctx, user_, image_);
  // Defer runs inline without a scheduler, so the spool is already printed
  // and unlinked.
  EXPECT_GE(Count(EventType::kCreate), 1u);  // the spool file
  EXPECT_GE(Count(EventType::kUnlink), 1u);  // ...deleted after printing
  const TraceAnalysis a = Analyze();
  EXPECT_GT(a.lifetimes.observed_deaths, 0u);
}

TEST_F(AppsTest, AdminTaskRepositionsInBigFiles) {
  for (int i = 0; i < 20; ++i) {
    WorkloadContext ctx = Ctx();
    RunAdminTask(ctx, user_, image_);
  }
  EXPECT_GT(Count(EventType::kSeek), 10u);
  const TraceAnalysis a = Analyze();
  // Accesses hit the ~1 MB administrative files: the size CDF has big-file
  // mass.
  EXPECT_LT(a.file_sizes.by_accesses.FractionAtOrBelow(500 * 1024), 1.0);
}

TEST_F(AppsTest, CadTaskNeedsDecks) {
  // A5 users have no decks: the task is a no-op.
  WorkloadContext ctx = Ctx();
  RunCadTask(ctx, user_, image_);
  EXPECT_TRUE(trace_.empty());
}

TEST_F(AppsTest, CadTaskWithDecksWritesAndDeletesListing) {
  FileSystem fs(FsOptions{.total_blocks = 524288});
  Trace trace;
  TracedKernel kernel(&fs, &trace);
  Rng rng(5);
  MachineProfile profile = ProfileC4();
  const SystemImage image = BuildSystemImage(fs, profile, rng);
  UserState user;
  user.id = 2;
  user.home = image.home_dirs[0];
  user.mailbox = image.mail_dir + "/user0";
  user.rng = Rng(77);
  for (int i = 0; i < 3; ++i) {
    user.decks.push_back(user.home + "/deck" + std::to_string(i));
  }
  user.sources.push_back(user.home + "/src0.c");
  WorkloadContext ctx(&kernel, &profile, &user.rng, SimTime::FromSeconds(100));
  RunCadTask(ctx, user, image);
  uint64_t creates = 0, unlinks = 0, execs = 0;
  for (const TraceRecord& r : trace.records()) {
    creates += r.type == EventType::kCreate ? 1 : 0;
    unlinks += r.type == EventType::kUnlink ? 1 : 0;
    execs += r.type == EventType::kExecve ? 1 : 0;
  }
  EXPECT_GE(execs, 1u);   // the simulator binary
  EXPECT_GE(creates, 1u); // the listing
  EXPECT_GE(unlinks, 1u); // ...deleted before the next run
}

TEST_F(AppsTest, LoginActivityReadsDotfilesAndRecordsLogin) {
  WorkloadContext ctx = Ctx();
  RunLoginActivity(ctx, user_, image_);
  EXPECT_GE(Count(EventType::kOpen), 4u);  // passwd, motd, .cshrc, .login
  EXPECT_GE(Count(EventType::kSeek), 1u);  // wtmp/utmp repositioning
}

TEST_F(AppsTest, DaemonTickRewritesHostFile) {
  WorkloadContext ctx = Ctx();
  RunDaemonTick(ctx, image_, 3);
  ASSERT_EQ(Count(EventType::kCreate), 1u);
  ASSERT_EQ(Count(EventType::kClose), 1u);
  // The rewrite targets the host-3 status file (its pre-built file id).
  auto ino = fs_.LookupPath(image_.DaemonFile(3));
  ASSERT_TRUE(ino.ok());
  EXPECT_EQ(trace_.records()[0].file_id, fs_.GetInode(ino.value())->file_id);
}

TEST_F(AppsTest, SystemTickAlwaysValid) {
  for (int i = 0; i < 40; ++i) {
    WorkloadContext ctx = Ctx();
    RunSystemTick(ctx, image_);
  }
  std::stable_sort(trace_.records().begin(), trace_.records().end(),
                   [](const TraceRecord& a, const TraceRecord& b) { return a.time < b.time; });
  const ValidationResult v = ValidateTrace(trace_);
  EXPECT_TRUE(v.ok()) << v.Summary();
  EXPECT_GT(trace_.size(), 40u);
}

TEST_F(AppsTest, DeliverMailAppendsWithLockDance) {
  WorkloadContext ctx = Ctx();
  DeliverMail(ctx, image_, 4);
  // Lock create + unlock unlink around the append.
  EXPECT_GE(Count(EventType::kCreate), 1u);
  EXPECT_GE(Count(EventType::kUnlink), 1u);
  EXPECT_GE(Count(EventType::kSeek), 1u);  // reposition to end of mailbox
  auto size = kernel_.FileSize(image_.mail_dir + "/user4");
  ASSERT_TRUE(size.ok());
  EXPECT_GT(size.value(), 0u);
}

TEST_F(AppsTest, UserStateHelpers) {
  EXPECT_FALSE(user_.TempPath().empty());
  const std::string t1 = user_.TempPath();
  const std::string t2 = user_.TempPath();
  EXPECT_NE(t1, t2);  // unique temp names
  const std::string& pick = user_.Pick(user_.sources);
  EXPECT_NE(std::find(user_.sources.begin(), user_.sources.end(), pick), user_.sources.end());
}

}  // namespace
}  // namespace bsdtrace
