#include "src/workload/sharded_generator.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/trace/trace_io.h"
#include "src/trace/validate.h"
#include "src/workload/generator.h"
#include "src/workload/profile.h"

namespace bsdtrace {
namespace {

// A small, fast configuration: a short slice of the A5 machine.
GeneratorOptions ShortOptions() {
  GeneratorOptions options;
  options.duration = Duration::Minutes(40);
  options.seed = 424242;
  return options;
}

std::string Serialize(const Trace& trace) {
  std::ostringstream out;
  WriteBinaryTrace(out, trace);
  return std::move(out).str();
}

GenerationResult Generate(int shards, int threads) {
  ShardedGeneratorOptions options;
  options.base = ShortOptions();
  options.shard_count = shards;
  options.threads = threads;
  return GenerateTraceSharded(ProfileA5(), options);
}

TEST(ShardedGenerator, OneShardIsBitIdenticalToSerial) {
  const GenerationResult serial = GenerateTrace(ProfileA5(), ShortOptions());
  const GenerationResult sharded = Generate(/*shards=*/1, /*threads=*/1);
  EXPECT_EQ(Serialize(serial.trace), Serialize(sharded.trace));
  EXPECT_EQ(serial.trace.header().description, sharded.trace.header().description);
  EXPECT_EQ(serial.tasks_executed, sharded.tasks_executed);
  EXPECT_EQ(serial.kernel_counters.opens, sharded.kernel_counters.opens);
  EXPECT_EQ(serial.kernel_counters.bytes_read, sharded.kernel_counters.bytes_read);
}

// The core determinism contract: for a fixed shard count the serialized
// trace does not depend on the thread count or the run.
TEST(ShardedGenerator, DeterministicAcrossThreadCountsAndRuns) {
  const int hw = std::max(2u, std::thread::hardware_concurrency());
  for (int shards : {1, 2, 8}) {
    const std::string once = Serialize(Generate(shards, /*threads=*/1).trace);
    EXPECT_EQ(once, Serialize(Generate(shards, /*threads=*/1).trace))
        << "rerun differs at shards=" << shards;
    EXPECT_EQ(once, Serialize(Generate(shards, /*threads=*/hw).trace))
        << "thread count changes output at shards=" << shards;
    EXPECT_FALSE(once.empty());
  }
}

TEST(ShardedGenerator, MergedTraceIsTimeSortedAndValid) {
  const GenerationResult result = Generate(/*shards=*/4, /*threads=*/2);
  ASSERT_FALSE(result.trace.empty());
  const ValidationResult report = ValidateTrace(result.trace);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// Remapped ids: every open gets a globally unique OpenId, and FileIds above
// the shared-image watermark never collide across shards.
TEST(ShardedGenerator, RemappedIdsAreUnique) {
  const GenerationResult result = Generate(/*shards=*/4, /*threads=*/2);
  std::set<OpenId> opens;
  for (const TraceRecord& r : result.trace.records()) {
    if (r.type == EventType::kOpen || r.type == EventType::kCreate) {
      EXPECT_TRUE(opens.insert(r.open_id).second) << "duplicate open id " << r.open_id;
    }
  }
  EXPECT_GT(opens.size(), 0u);
}

TEST(ShardedGenerator, ShardImagesStayConsistent) {
  const GenerationResult result = Generate(/*shards=*/8, /*threads=*/2);
  EXPECT_TRUE(result.fsck.ok()) << result.fsck.Summary();
  EXPECT_GT(result.shared_image_watermark, 0u);
  EXPECT_GT(result.tasks_executed, 0u);
}

// The documented ShardPlan partition invariants (sharded_generator.h): users
// AND daemon hosts are round-robin partitions of their index spaces — the
// daemon fleet is spread across shards, not pinned to shard 0 — while the
// machine-wide system tick runs on shard 0 only and every shard with users
// delivers mail at a population/owned-compensated rate.
TEST(ShardPlan, PartitionInvariants) {
  const MachineProfile profile = ProfileA5();
  for (int shard_count : {1, 2, 3, 8}) {
    const std::vector<internal::ShardPlan> plans =
        internal::MakeShardPlans(profile, shard_count);
    ASSERT_EQ(plans.size(), static_cast<size_t>(shard_count));
    std::set<int> users, hosts;
    for (int s = 0; s < shard_count; ++s) {
      const internal::ShardPlan& plan = plans[static_cast<size_t>(s)];
      EXPECT_EQ(plan.shard_index, shard_count == 1 ? 0 : s);
      EXPECT_TRUE(std::is_sorted(plan.users.begin(), plan.users.end()));
      EXPECT_TRUE(std::is_sorted(plan.daemon_hosts.begin(), plan.daemon_hosts.end()));
      for (int u : plan.users) {
        EXPECT_EQ(u % shard_count, s) << "user " << u << " not round-robin";
        EXPECT_TRUE(users.insert(u).second) << "user " << u << " owned twice";
      }
      for (int h : plan.daemon_hosts) {
        EXPECT_EQ(h % shard_count, s) << "daemon host " << h << " not round-robin";
        EXPECT_TRUE(hosts.insert(h).second) << "host " << h << " owned twice";
      }
      EXPECT_EQ(plan.run_system_tick, s == 0);
      if (!plan.users.empty()) {
        EXPECT_TRUE(plan.run_mail);
        EXPECT_DOUBLE_EQ(plan.mail_scale * static_cast<double>(plan.users.size()),
                         static_cast<double>(profile.user_population));
      }
    }
    EXPECT_EQ(users.size(), static_cast<size_t>(profile.user_population));
    EXPECT_EQ(hosts.size(), static_cast<size_t>(profile.daemon_host_count));
  }
}

// Sharding partitions the same population, so aggregate activity should be
// in the same regime as the serial run (not, say, doubled or halved).
TEST(ShardedGenerator, ActivityComparableToSerial) {
  const GenerationResult serial = GenerateTrace(ProfileA5(), ShortOptions());
  const GenerationResult sharded = Generate(/*shards=*/8, /*threads=*/2);
  ASSERT_GT(serial.trace.size(), 0u);
  const double ratio = static_cast<double>(sharded.trace.size()) /
                       static_cast<double>(serial.trace.size());
  EXPECT_GT(ratio, 0.5) << "sharded trace implausibly small";
  EXPECT_LT(ratio, 2.0) << "sharded trace implausibly large";
}

}  // namespace
}  // namespace bsdtrace
