// Fleet-of-fleets wave generation: the wave planner's grouping invariants,
// and the core promise that waved generation — bounded groups of instances
// generated separately into compressed v4 wave shards, then merged — yields
// a record stream and output file byte-identical to the single-wave run.

#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/trace/trace_io.h"
#include "src/workload/fleet.h"
#include "src/workload/sharded_generator.h"

namespace bsdtrace {
namespace {

using internal::PlanWaves;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

TEST(PlanWaves, NonPositiveBoundYieldsOneWave) {
  const std::vector<int> pops{10, 20, 30};
  EXPECT_EQ(PlanWaves(pops, 0), (std::vector<std::pair<size_t, size_t>>{{0, 3}}));
  EXPECT_EQ(PlanWaves(pops, -5), (std::vector<std::pair<size_t, size_t>>{{0, 3}}));
}

TEST(PlanWaves, GroupsGreedilyWithinBound) {
  // 10+20 fits in 30; adding the next 30 would not; 30 then 25 each fit.
  const std::vector<int> pops{10, 20, 30, 25};
  EXPECT_EQ(PlanWaves(pops, 30),
            (std::vector<std::pair<size_t, size_t>>{{0, 2}, {2, 3}, {3, 4}}));
}

TEST(PlanWaves, OversizeInstanceGetsItsOwnWave) {
  const std::vector<int> pops{5, 100, 5};
  EXPECT_EQ(PlanWaves(pops, 20),
            (std::vector<std::pair<size_t, size_t>>{{0, 1}, {1, 2}, {2, 3}}));
}

TEST(PlanWaves, WavesPartitionTheInstanceList) {
  const std::vector<int> pops{7, 3, 9, 1, 14, 2, 8};
  for (const int bound : {1, 5, 10, 25, 1000}) {
    const auto waves = PlanWaves(pops, bound);
    ASSERT_FALSE(waves.empty());
    size_t expect_begin = 0;
    for (const auto& [begin, end] : waves) {
      EXPECT_EQ(begin, expect_begin);
      EXPECT_GT(end, begin) << "empty wave";
      expect_begin = end;
    }
    EXPECT_EQ(expect_begin, pops.size());
  }
}

TEST(PlanWaves, EmptyFleet) {
  EXPECT_TRUE(PlanWaves({}, 10).empty());
}

FleetGeneratorOptions WaveOptions(int wave_users) {
  FleetGeneratorOptions options;
  options.base.duration = Duration::Minutes(20);
  options.base.seed = 424242;
  options.shards_per_machine = 2;
  options.threads = 2;
  options.wave_users = wave_users;
  options.file_options.version = 4;
  return options;
}

TEST(FleetWaves, WavedFileIsByteIdenticalToSingleWave) {
  auto fleet = ParseFleetSpec("4xA5", /*users=*/40);
  ASSERT_TRUE(fleet.ok()) << fleet.status().message();

  const std::string single_path = TempPath("wave_single.trc");
  auto single = GenerateFleetToFile(fleet.value(), WaveOptions(0), single_path);
  ASSERT_TRUE(single.ok()) << single.status().message();
  EXPECT_EQ(single.value().waves, 1u);
  EXPECT_EQ(single.value().wave_bytes_written, 0u);

  // 40 users per instance, bound 80: two waves of two instances each.
  const std::string waved_path = TempPath("wave_waved.trc");
  auto waved = GenerateFleetToFile(fleet.value(), WaveOptions(80), waved_path);
  ASSERT_TRUE(waved.ok()) << waved.status().message();
  EXPECT_EQ(waved.value().waves, 2u);
  EXPECT_GT(waved.value().wave_bytes_written, 0u);
  EXPECT_EQ(waved.value().records_streamed, single.value().records_streamed);

  EXPECT_EQ(ReadFileBytes(waved_path), ReadFileBytes(single_path))
      << "waved output bytes diverge from the single-wave run";
}

TEST(FleetWaves, WaveOfOneInstanceEachStillMatches) {
  auto fleet = ParseFleetSpec("2xA5+E3", /*users=*/30);
  ASSERT_TRUE(fleet.ok()) << fleet.status().message();

  const std::string single_path = TempPath("wave1_single.trc");
  auto single = GenerateFleetToFile(fleet.value(), WaveOptions(0), single_path);
  ASSERT_TRUE(single.ok()) << single.status().message();

  // Bound below any instance population: every instance is its own wave.
  const std::string waved_path = TempPath("wave1_waved.trc");
  auto waved = GenerateFleetToFile(fleet.value(), WaveOptions(1), waved_path);
  ASSERT_TRUE(waved.ok()) << waved.status().message();
  EXPECT_EQ(waved.value().waves, 3u);
  EXPECT_EQ(ReadFileBytes(waved_path), ReadFileBytes(single_path));
}

TEST(FleetWaves, WavedV4FileRoundTripsAndCompresses) {
  auto fleet = ParseFleetSpec("3xA5", /*users=*/30);
  ASSERT_TRUE(fleet.ok()) << fleet.status().message();
  const std::string path = TempPath("wave_check.trc");
  auto stats = GenerateFleetToFile(fleet.value(), WaveOptions(35), path);
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  ASSERT_GT(stats.value().waves, 1u);

  TraceFileReader reader(path);
  ASSERT_TRUE(reader.status().ok()) << reader.status().message();
  EXPECT_EQ(reader.version(), 4);
  TraceRecord r;
  uint64_t n = 0;
  SimTime prev = SimTime::Origin();
  while (reader.Next(&r)) {
    EXPECT_GE(r.time, prev) << "record " << n << " out of order";
    prev = r.time;
    ++n;
  }
  ASSERT_TRUE(reader.status().ok()) << reader.status().message();
  EXPECT_EQ(n, stats.value().records_streamed);
}

}  // namespace
}  // namespace bsdtrace
