#include "src/workload/system_image.h"

#include <set>

#include <gtest/gtest.h>

namespace bsdtrace {
namespace {

class SystemImageTest : public ::testing::Test {
 protected:
  SystemImageTest() : fs_(FsOptions{.total_blocks = 524288}), rng_(1) {
    image_ = BuildSystemImage(fs_, ProfileA5(), rng_);
  }

  FileSystem fs_;
  Rng rng_;
  SystemImage image_;
};

TEST_F(SystemImageTest, ProgramsExistWithSizes) {
  EXPECT_GT(image_.programs.size(), 50u);
  for (const std::string& p : image_.programs) {
    auto ino = fs_.LookupPath(p);
    ASSERT_TRUE(ino.ok()) << p;
    EXPECT_GT(fs_.GetInode(ino.value())->size, 0u) << p;
  }
}

TEST_F(SystemImageTest, WellKnownProgramsExist) {
  for (const std::string& p : {image_.cc_path, image_.as_path, image_.ld_path, image_.vi_path,
                               image_.mail_path, image_.troff_path, image_.libc_path,
                               image_.macros_path, image_.utmp_path}) {
    EXPECT_TRUE(fs_.LookupPath(p).ok()) << p;
  }
}

TEST_F(SystemImageTest, AdminFilesAreLarge) {
  ASSERT_FALSE(image_.admin_files.empty());
  for (const std::string& p : image_.admin_files) {
    auto ino = fs_.LookupPath(p);
    ASSERT_TRUE(ino.ok());
    EXPECT_GT(fs_.GetInode(ino.value())->size, 500'000u) << p;  // ~1 MB files
  }
}

TEST_F(SystemImageTest, DaemonFilesPreExist) {
  const MachineProfile profile = ProfileA5();
  for (int h = 0; h < profile.daemon_host_count; ++h) {
    EXPECT_TRUE(fs_.LookupPath(image_.DaemonFile(h)).ok()) << h;
  }
}

TEST_F(SystemImageTest, HomesSeededWithWorkFiles) {
  const MachineProfile profile = ProfileA5();
  ASSERT_EQ(image_.home_dirs.size(), static_cast<size_t>(profile.user_population));
  EXPECT_TRUE(fs_.LookupPath(image_.home_dirs[0] + "/src0.c").ok());
  EXPECT_TRUE(fs_.LookupPath(image_.home_dirs[0] + "/.cshrc").ok());
  EXPECT_TRUE(fs_.LookupPath("/usr/spool/mail/user0").ok());
}

TEST_F(SystemImageTest, CadDecksOnlyForCadProfiles) {
  EXPECT_FALSE(fs_.LookupPath(image_.home_dirs[0] + "/deck0").ok());

  FileSystem cad_fs(FsOptions{.total_blocks = 524288});
  Rng rng(2);
  const SystemImage cad = BuildSystemImage(cad_fs, ProfileC4(), rng);
  EXPECT_TRUE(cad_fs.LookupPath(cad.home_dirs[0] + "/deck0").ok());
}

TEST_F(SystemImageTest, SampleProgramIsZipfSkewed) {
  Rng rng(3);
  std::map<std::string, int> counts;
  for (int i = 0; i < 20000; ++i) {
    counts[image_.SampleProgram(rng)] += 1;
  }
  // The most popular program should be sampled far more than a mid-list one.
  EXPECT_GT(counts[image_.programs[0]], counts[image_.programs[40]] * 5);
}

TEST_F(SystemImageTest, DeterministicForSeed) {
  FileSystem fs2(FsOptions{.total_blocks = 524288});
  Rng rng2(1);
  const SystemImage again = BuildSystemImage(fs2, ProfileA5(), rng2);
  EXPECT_EQ(again.programs, image_.programs);
  const FsStatistics a = fs_.Statistics();
  const FsStatistics b = fs2.Statistics();
  EXPECT_EQ(a.live_bytes, b.live_bytes);
  EXPECT_EQ(a.files, b.files);
}

}  // namespace
}  // namespace bsdtrace
