// Tests for the spill-to-disk streaming generation path
// (GenerateTraceShardedTo / GenerateTraceShardedToFile) and its
// byte-identical determinism contract against the in-memory path.

#include "src/workload/sharded_generator.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "gtest/gtest.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_source.h"
#include "src/workload/generator.h"
#include "src/workload/profile.h"

namespace bsdtrace {
namespace {

namespace fs = std::filesystem;

GeneratorOptions ShortOptions() {
  GeneratorOptions options;
  options.duration = Duration::Minutes(30);
  options.seed = 77777;
  return options;
}

ShardedGeneratorOptions StreamOptions(int shards, int threads) {
  ShardedGeneratorOptions options;
  options.base = ShortOptions();
  options.shard_count = shards;
  options.threads = threads;
  return options;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

class ScopedPath {
 public:
  explicit ScopedPath(const std::string& stem)
      : path_((fs::temp_directory_path() / ("bsdtrace-stream-test-" + stem + ".trc"))
                  .string()) {
    std::remove(path_.c_str());
  }
  ~ScopedPath() { std::remove(path_.c_str()); }
  const std::string& get() const { return path_; }

 private:
  std::string path_;
};

// The headline contract: the streamed file is byte-for-byte the file
// SaveTrace writes for the in-memory path's trace (with the same v3 options
// the streamer uses) — for every shard count (including the serial shards=1
// path) and independent of the thread count.
TEST(ShardedStream, FileIsByteIdenticalToInMemoryPath) {
  for (int shards : {1, 2, 7}) {
    const GenerationResult in_memory =
        GenerateTraceSharded(ProfileA5(), StreamOptions(shards, /*threads=*/1));
    ScopedPath reference("ref-" + std::to_string(shards));
    ASSERT_TRUE(SaveTrace(reference.get(), in_memory.trace,
                          TraceWriterOptions{.version = 3})
                    .ok());
    const std::string expected = ReadFileBytes(reference.get());
    ASSERT_FALSE(expected.empty());

    for (int threads : {1, 0}) {  // 0 = hardware concurrency
      ScopedPath streamed("stream-" + std::to_string(shards) + "-" +
                          std::to_string(threads));
      auto stats = GenerateTraceShardedToFile(ProfileA5(), StreamOptions(shards, threads),
                                              streamed.get());
      ASSERT_TRUE(stats.ok()) << stats.status().message();
      EXPECT_EQ(expected, ReadFileBytes(streamed.get()))
          << "streamed bytes differ at shards=" << shards << " threads=" << threads;
      EXPECT_EQ(stats.value().records_streamed, in_memory.trace.size());
    }
  }
}

// The stats the streaming path reports must match what the in-memory path
// computes — it is the same simulation, only the record routing differs.
TEST(ShardedStream, StatsMatchInMemoryPath) {
  const int shards = 4;
  const GenerationResult in_memory =
      GenerateTraceSharded(ProfileA5(), StreamOptions(shards, /*threads=*/2));

  Trace sink;
  auto stats =
      GenerateTraceShardedTo(ProfileA5(), StreamOptions(shards, /*threads=*/2), sink);
  ASSERT_TRUE(stats.ok()) << stats.status().message();

  const ShardedStreamStats& s = stats.value();
  EXPECT_EQ(s.header, in_memory.trace.header());
  EXPECT_EQ(s.records_streamed, in_memory.trace.size());
  EXPECT_EQ(sink.records(), in_memory.trace.records());
  EXPECT_EQ(s.kernel_counters.opens, in_memory.kernel_counters.opens);
  EXPECT_EQ(s.kernel_counters.bytes_read, in_memory.kernel_counters.bytes_read);
  EXPECT_EQ(s.kernel_counters.bytes_written, in_memory.kernel_counters.bytes_written);
  EXPECT_EQ(s.tasks_executed, in_memory.tasks_executed);
  EXPECT_EQ(s.shared_image_watermark, in_memory.shared_image_watermark);
  EXPECT_TRUE(s.fsck.ok()) << s.fsck.Summary();
  // The spill files really were written (and were at least as large as the
  // records they carried — 4 bytes minimum each).
  EXPECT_GT(s.spill_bytes_written, s.records_streamed * 4);
}

// Spill files are transient: whatever happens, the private spill directory
// is gone when generation returns.
TEST(ShardedStream, SpillDirectoryIsCleanedUp) {
  const fs::path spill_root =
      fs::temp_directory_path() / "bsdtrace-stream-test-spillroot";
  fs::remove_all(spill_root);
  ASSERT_TRUE(fs::create_directories(spill_root));

  ShardedGeneratorOptions options = StreamOptions(/*shards=*/3, /*threads=*/2);
  options.spill_dir = spill_root.string();
  Trace sink;
  auto stats = GenerateTraceShardedTo(ProfileA5(), options, sink);
  ASSERT_TRUE(stats.ok()) << stats.status().message();

  EXPECT_TRUE(fs::is_empty(spill_root))
      << "spill subdirectory leaked under " << spill_root;
  fs::remove_all(spill_root);
}

// Crash consistency: a spill file truncated mid-record (as a crashed or
// out-of-disk writer would leave it) must surface a diagnostic Status from
// the merge, not a silently short trace.  Exercised at the merge layer the
// generator uses, through real files.
TEST(ShardedStream, TruncatedSpillFileSurfacesDiagnosticError) {
  // Generate a small real trace to act as the spill file.
  const GenerationResult result =
      GenerateTraceSharded(ProfileA5(), StreamOptions(/*shards=*/1, /*threads=*/1));
  ScopedPath spill("truncated-spill");
  ASSERT_TRUE(SaveTrace(spill.get(), result.trace).ok());

  // Truncate mid-record.
  const std::string bytes = ReadFileBytes(spill.get());
  ASSERT_GT(bytes.size(), 64u);
  fs::resize_file(spill.get(), bytes.size() - 7);

  TraceFileSource source(spill.get());
  ASSERT_TRUE(source.status().ok());
  TraceRecord r;
  uint64_t streamed = 0;
  while (source.Next(&r)) {
    ++streamed;
  }
  EXPECT_FALSE(source.status().ok());
  EXPECT_NE(source.status().message().find("truncated"), std::string::npos)
      << source.status().message();
  EXPECT_LT(streamed, result.trace.size());
}

// An unusable spill directory is a clean error, not a crash.
TEST(ShardedStream, UnwritableSpillDirIsCleanError) {
  ShardedGeneratorOptions options = StreamOptions(/*shards=*/2, /*threads=*/1);
  // A *file* where the spill root should be: create_directories must fail.
  ScopedPath not_a_dir("not-a-dir");
  { std::ofstream out(not_a_dir.get()); out << "x"; }
  options.spill_dir = not_a_dir.get();

  Trace sink;
  auto stats = GenerateTraceShardedTo(ProfileA5(), options, sink);
  EXPECT_FALSE(stats.ok());
  EXPECT_NE(stats.status().message().find("spill"), std::string::npos)
      << stats.status().message();
  EXPECT_TRUE(sink.empty());
}

// The streamed record sequence feeds any TraceSink; an analyzer-style sink
// that only counts must see exactly records_streamed appends.
TEST(ShardedStream, SinkSeesEveryRecordInTimeOrder) {
  class CountingSink : public TraceSink {
   public:
    void Append(const TraceRecord& r) override {
      ++count_;
      ordered_ = ordered_ && !(r.time < last_);
      last_ = r.time;
    }
    uint64_t count() const { return count_; }
    bool ordered() const { return ordered_; }

   private:
    uint64_t count_ = 0;
    SimTime last_ = SimTime::Origin();
    bool ordered_ = true;
  };

  CountingSink sink;
  auto stats =
      GenerateTraceShardedTo(ProfileA5(), StreamOptions(/*shards=*/5, /*threads=*/2), sink);
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_EQ(sink.count(), stats.value().records_streamed);
  EXPECT_TRUE(sink.ordered());
  EXPECT_GT(sink.count(), 0u);
}

}  // namespace
}  // namespace bsdtrace
