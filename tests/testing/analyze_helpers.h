// Test helper: one-line front-door analysis for tests that just need the
// Section-5 statistics of a trace they built or generated in memory.

#ifndef BSDTRACE_TESTS_TESTING_ANALYZE_HELPERS_H_
#define BSDTRACE_TESTS_TESTING_ANALYZE_HELPERS_H_

#include "src/analysis/analyzer.h"

namespace bsdtrace {

// Batch analysis of an in-memory trace through the Analyze() front door
// (which cannot fail for the in-memory serial engine).
inline TraceAnalysis AnalyzeForTest(const Trace& trace) {
  AnalyzeOptions options;
  options.trace = &trace;
  return Analyze(options).value();
}

}  // namespace bsdtrace

#endif  // BSDTRACE_TESTS_TESTING_ANALYZE_HELPERS_H_
