// Test helper: fluent construction of hand-crafted traces.

#ifndef BSDTRACE_TESTS_TESTING_TRACE_BUILDER_H_
#define BSDTRACE_TESTS_TESTING_TRACE_BUILDER_H_

#include "src/trace/record.h"
#include "src/trace/trace.h"

namespace bsdtrace {

class TraceBuilder {
 public:
  TraceBuilder& Open(double t, OpenId oid, FileId file, uint64_t size,
                     AccessMode mode = AccessMode::kReadOnly, UserId user = 1,
                     uint64_t initial_position = 0) {
    trace_.Append(MakeOpen(SimTime::FromSeconds(t), oid, file, user, mode, size,
                           initial_position));
    return *this;
  }
  TraceBuilder& Create(double t, OpenId oid, FileId file,
                       AccessMode mode = AccessMode::kWriteOnly, UserId user = 1) {
    trace_.Append(MakeCreate(SimTime::FromSeconds(t), oid, file, user, mode));
    return *this;
  }
  TraceBuilder& Close(double t, OpenId oid, FileId file, uint64_t final_position,
                      uint64_t size_at_close) {
    trace_.Append(MakeClose(SimTime::FromSeconds(t), oid, file, final_position, size_at_close));
    return *this;
  }
  TraceBuilder& Seek(double t, OpenId oid, FileId file, uint64_t from, uint64_t to) {
    trace_.Append(MakeSeek(SimTime::FromSeconds(t), oid, file, from, to));
    return *this;
  }
  TraceBuilder& Unlink(double t, FileId file, UserId user = 1) {
    trace_.Append(MakeUnlink(SimTime::FromSeconds(t), file, user));
    return *this;
  }
  TraceBuilder& Truncate(double t, FileId file, uint64_t new_length, UserId user = 1) {
    trace_.Append(MakeTruncate(SimTime::FromSeconds(t), file, user, new_length));
    return *this;
  }
  TraceBuilder& Execve(double t, FileId file, uint64_t size, UserId user = 1) {
    trace_.Append(MakeExecve(SimTime::FromSeconds(t), file, user, size));
    return *this;
  }

  // Convenience: a whole-file read access (open at 0, close at size).
  TraceBuilder& WholeRead(double t_open, double t_close, OpenId oid, FileId file,
                          uint64_t size, UserId user = 1) {
    Open(t_open, oid, file, size, AccessMode::kReadOnly, user);
    Close(t_close, oid, file, size, size);
    return *this;
  }
  // Convenience: create + whole write of `size` bytes.
  TraceBuilder& WholeWrite(double t_open, double t_close, OpenId oid, FileId file,
                           uint64_t size, UserId user = 1) {
    Create(t_open, oid, file, AccessMode::kWriteOnly, user);
    Close(t_close, oid, file, size, size);
    return *this;
  }

  Trace Build() { return std::move(trace_); }

 private:
  Trace trace_;
};

}  // namespace bsdtrace

#endif  // BSDTRACE_TESTS_TESTING_TRACE_BUILDER_H_
