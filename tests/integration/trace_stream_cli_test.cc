// In-process tests of the trace_stream CLI (src/core/trace_stream_cli.h):
// strict argument parsing (no silent atoi/atof coercion), profile-name
// errors that teach the valid names, and the generate/analyze/info round
// trip including the Table I --check-bands gate.

#include "src/core/trace_stream_cli.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/trace/trace_io.h"
#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

int RunCli(const std::vector<std::string>& args) {
  std::vector<const char*> argv = {"trace_stream"};
  for (const std::string& a : args) {
    argv.push_back(a.c_str());
  }
  return TraceStreamMain(static_cast<int>(argv.size()), argv.data());
}

// Runs the CLI with stderr captured; returns the exit code.
int RunCaptured(const std::vector<std::string>& args, std::string* err) {
  ::testing::internal::CaptureStderr();
  const int rc = RunCli(args);
  *err = ::testing::internal::GetCapturedStderr();
  return rc;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f != nullptr) {
    std::fclose(f);
  }
  return f != nullptr;
}

TEST(TraceStreamCli, NoArgumentsOrUnknownCommandPrintUsage) {
  std::string err;
  EXPECT_EQ(RunCaptured({}, &err), 2);
  EXPECT_NE(err.find("usage:"), std::string::npos);
  EXPECT_EQ(RunCaptured({"frobnicate", "x"}, &err), 2);
}

// The old CLI ran arguments through bare atof/atoi: "8oops" generated an
// 8-hour trace and "oops" a zero-hour one.  Every malformed numeric must now
// reject with usage, a non-zero exit, and no output file.
TEST(TraceStreamCli, MalformedNumericArgumentsAreRejected) {
  const std::string out = TempPath("cli_reject.trc");
  std::string err;
  const std::vector<std::vector<std::string>> bad = {
      {"generate", out, "A5", "8oops"},          // trailing junk on hours
      {"generate", out, "A5", "oops"},           // non-numeric hours
      {"generate", out, "A5", "0"},              // zero duration
      {"generate", out, "A5", "6", "0"},         // zero shards
      {"generate", out, "A5", "6", "4", "-2"},   // negative threads
      {"generate", out, "A5", "6", "4", "2", "12x"},  // junk seed
      {"generate", out, "--hours=1e999"},        // overflow
      {"generate", out, "--users=-5"},
      {"generate", out, "--shards=99999"},       // above cap
      {"generate", out, "--bogus=1"},            // unknown flag
      {"analyze", out, "--threads=two"},
  };
  for (const std::vector<std::string>& args : bad) {
    EXPECT_EQ(RunCaptured(args, &err), 2) << "accepted: " << args.back();
    EXPECT_NE(err.find("usage:"), std::string::npos) << args.back();
  }
  EXPECT_FALSE(FileExists(out)) << "a rejected invocation wrote a trace";
}

// Satellite 1: an unknown profile must fail listing the valid names, not
// silently fall back to A5.
TEST(TraceStreamCli, UnknownProfileFailsListingValidNames) {
  std::string err;
  const int rc = RunCaptured({"generate", TempPath("cli_b9.trc"), "--profile=B9"}, &err);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(err.find("B9"), std::string::npos);
  EXPECT_NE(err.find("A5"), std::string::npos);
  EXPECT_NE(err.find("E3"), std::string::npos);
  EXPECT_NE(err.find("C4"), std::string::npos);
  EXPECT_FALSE(FileExists(TempPath("cli_b9.trc")));
}

TEST(TraceStreamCli, AnalyzeAndInfoFailCleanlyOnMissingFile) {
  std::string err;
  EXPECT_EQ(RunCaptured({"analyze", TempPath("no_such.trc")}, &err), 1);
  EXPECT_EQ(RunCaptured({"info", TempPath("no_such.trc")}, &err), 1);
}

// The whole pipeline at paper scale: generate a fleet-tagged 6-hour A5,
// inspect it, analyze it in parallel, and gate on the Table I bands.
TEST(TraceStreamCli, GenerateAnalyzeInfoRoundTripWithBands) {
  const std::string out = TempPath("cli_roundtrip.trc");
  EXPECT_EQ(RunCli({"generate", out, "--profile=A5", "--hours=6", "--shards=4",
                 "--threads=2", "--seed=20260806"}),
            0);
  ASSERT_TRUE(FileExists(out));
  EXPECT_EQ(RunCli({"info", out}), 0);
  EXPECT_EQ(RunCli({"analyze", out, "--threads=2"}), 0);
  EXPECT_EQ(RunCli({"analyze", out, "--threads=2", "--check-bands"}), 0);
}

// Legacy traces carry no fleet tag, so --check-bands has nothing to
// validate against and must say so with a non-zero exit.
TEST(TraceStreamCli, CheckBandsFailsOnUntaggedTrace) {
  TraceBuilder b;
  for (int i = 0; i < 50; ++i) {
    b.WholeRead(i * 60.0, i * 60.0 + 1200.0, /*oid=*/i + 1, /*file=*/100 + i,
                /*size=*/4096, /*user=*/2);
  }
  const std::string path = TempPath("cli_untagged.trc");
  ASSERT_TRUE(SaveTrace(path, b.Build()).ok());
  std::string err;
  EXPECT_EQ(RunCli({"analyze", path, "--threads=1"}), 0);
  EXPECT_EQ(RunCaptured({"analyze", path, "--threads=1", "--check-bands"}, &err), 1);
  EXPECT_NE(err.find("no fleet tag"), std::string::npos);
}

// Flags override the legacy positionals they duplicate.
TEST(TraceStreamCli, FlagsWinOverPositionals) {
  const std::string out = TempPath("cli_flags_win.trc");
  EXPECT_EQ(RunCli({"generate", out, "A5", "6", "--hours=0.5", "--shards=2"}), 0);
  ASSERT_TRUE(FileExists(out));
  // If the positional 6 hours had won, info's span line would read ~6.00
  // simulated hours; the half-hour flag run stays well under one hour.
  ::testing::internal::CaptureStdout();
  EXPECT_EQ(RunCli({"info", out}), 0);
  const std::string info = ::testing::internal::GetCapturedStdout();
  const size_t span = info.find("span:");
  ASSERT_NE(span, std::string::npos) << info;
  EXPECT_NE(info.find("0.", span), std::string::npos) << info;
  EXPECT_EQ(info.find("6.00 simulated hours"), std::string::npos) << info;
}

// --sweep must reject unknown figure names during flag parsing, before the
// trace file is ever touched.
TEST(TraceStreamCli, SweepRejectsUnknownFigure) {
  std::string err;
  EXPECT_EQ(RunCaptured({"analyze", TempPath("cli_sweep_bad.trc"), "--sweep=fig8"}, &err), 2);
  EXPECT_NE(err.find("usage:"), std::string::npos);
  EXPECT_EQ(RunCaptured({"analyze", TempPath("cli_sweep_bad.trc"), "--sweep="}, &err), 2);
}

// analyze --sweep=fig5 runs the planned §6 sweep: the Table VI block, the
// single-pass Mattson curve table, and the parity verdict of the internal
// engine cross-check (the exit code gates on it).
TEST(TraceStreamCli, SweepFig5PrintsTableAndCurves) {
  const std::string out = TempPath("cli_sweep.trc");
  ASSERT_EQ(RunCli({"generate", out, "--profile=A5", "--hours=1", "--shards=2",
                    "--threads=2", "--seed=20260809"}),
            0);
  ::testing::internal::CaptureStdout();
  EXPECT_EQ(RunCli({"analyze", out, "--sweep=fig5", "--threads=2"}), 0);
  const std::string text = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(text.find("Table VI / Figure 5"), std::string::npos) << text;
  EXPECT_NE(text.find("Single-pass Mattson curves"), std::string::npos) << text;
  EXPECT_NE(text.find("parity ok"), std::string::npos) << text;
}

// --help output is generated from the one flag table: each subcommand lists
// exactly its registered surface, with the value hints.
TEST(TraceStreamCli, HelpListsPerSubcommandFlagsFromTheTable) {
  std::string err;
  ::testing::internal::CaptureStdout();
  EXPECT_EQ(RunCli({"--help"}), 0);
  const std::string all = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(all.find("usage:"), std::string::npos);
  EXPECT_NE(all.find("generate"), std::string::npos);
  EXPECT_NE(all.find("--wave-users=N"), std::string::npos);
  EXPECT_NE(all.find("--sweep=fig5|fig6|fig7|hier"), std::string::npos);

  ::testing::internal::CaptureStdout();
  EXPECT_EQ(RunCli({"analyze", "--help"}), 0);
  const std::string analyze = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(analyze.find("--threads=T"), std::string::npos);
  EXPECT_NE(analyze.find("--check-bands"), std::string::npos);
  EXPECT_NE(analyze.find("--sweep="), std::string::npos);
  // analyze does not accept generate's flags, so its help must not list them.
  EXPECT_EQ(analyze.find("--wave-users"), std::string::npos) << analyze;

  ::testing::internal::CaptureStdout();
  EXPECT_EQ(RunCli({"help", "serve"}), 0);
  const std::string serve = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(serve.find("--snapshot-hours=H"), std::string::npos);
  EXPECT_EQ(serve.find("--sweep"), std::string::npos) << serve;
}

// Wrong-flag errors name the subcommand they happened in, and a known flag
// used on the wrong subcommand is distinguished from a typo.
TEST(TraceStreamCli, FlagErrorsNameTheSubcommand) {
  std::string err;
  EXPECT_EQ(RunCaptured({"analyze", "x.trc", "--bogus=1"}, &err), 2);
  EXPECT_NE(err.find("trace_stream analyze: unknown flag \"--bogus=1\""), std::string::npos)
      << err;
  EXPECT_NE(err.find("usage:"), std::string::npos);

  // --wave-users exists, but only generate accepts it.
  EXPECT_EQ(RunCaptured({"analyze", "x.trc", "--wave-users=5"}, &err), 2);
  EXPECT_NE(err.find("trace_stream analyze"), std::string::npos) << err;
  EXPECT_NE(err.find("not accepted"), std::string::npos) << err;

  EXPECT_EQ(RunCaptured({"generate", "x.trc", "--hours=oops"}, &err), 2);
  EXPECT_NE(err.find("trace_stream generate: invalid --hours \"oops\""), std::string::npos)
      << err;
}

// analyze --sweep=hier runs the §7 client/server hierarchy grid and gates on
// the fused-vs-hierarchy parity verdict.
TEST(TraceStreamCli, SweepHierPrintsHierarchyFigure) {
  const std::string out = TempPath("cli_sweep_hier.trc");
  ASSERT_EQ(RunCli({"generate", out, "--profile=A5", "--hours=1", "--shards=2",
                    "--threads=2", "--seed=20260809"}),
            0);
  ::testing::internal::CaptureStdout();
  EXPECT_EQ(RunCli({"analyze", out, "--sweep=hier", "--threads=2"}), 0);
  const std::string text = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(text.find("Hierarchy sweep"), std::string::npos) << text;
  EXPECT_NE(text.find("Delayed Write"), std::string::npos) << text;
  EXPECT_NE(text.find("client-0 parity OK"), std::string::npos) << text;
}

// -- import / export ----------------------------------------------------------

// generate → export → import → export must reproduce the text byte for byte
// (the bsdtxt round-trip), and both binaries must analyze identically.
TEST(TraceStreamCli, ExportImportRoundTripsTextAndAnalysis) {
  const std::string trc = TempPath("cli_roundtrip.trc");
  const std::string txt = TempPath("cli_roundtrip.txt");
  const std::string trc2 = TempPath("cli_roundtrip2.trc");
  const std::string txt2 = TempPath("cli_roundtrip2.txt");
  ASSERT_EQ(RunCli({"generate", trc, "--profile=A5", "--hours=0.2", "--shards=2",
                    "--threads=2", "--seed=11"}),
            0);
  ASSERT_EQ(RunCli({"export", trc, "--out=" + txt}), 0);
  ASSERT_EQ(RunCli({"import", txt, trc2}), 0);
  ASSERT_EQ(RunCli({"export", trc2, "--out=" + txt2}), 0);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  const std::string text = slurp(txt);
  EXPECT_FALSE(text.empty());
  EXPECT_EQ(text, slurp(txt2));

  // The analysis tables of the original and the re-imported trace agree
  // exactly (the engine line may differ: v3 vs re-imported v4 block layout).
  const auto analyze = [&](const std::string& path) {
    ::testing::internal::CaptureStdout();
    EXPECT_EQ(RunCli({"analyze", path, "--threads=1"}), 0);
    std::string out = ::testing::internal::GetCapturedStdout();
    const size_t engine = out.find("analysis engine:");
    return engine == std::string::npos ? out : out.substr(0, engine);
  };
  EXPECT_EQ(analyze(trc), analyze(trc2));

  // The header's fleet tag survives the text round trip: the band gate still
  // finds and reports the tagged instance (a 0.2h trace sits below the band,
  // so the verdict is FAIL on both files — what matters is the tag is there).
  std::string err;
  EXPECT_EQ(RunCaptured({"analyze", trc2, "--threads=1", "--check-bands"}, &err), 1);
  ::testing::internal::CaptureStdout();
  EXPECT_EQ(RunCli({"analyze", trc2, "--threads=1", "--check-bands"}), 1);
  const std::string bands = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(bands.find("instance 0 A5"), std::string::npos) << bands;
  EXPECT_EQ(err.find("no fleet tag"), std::string::npos) << err;
}

// Imported traces run the hardened validator by default; --no-validate
// writes the stream anyway.
TEST(TraceStreamCli, ImportValidatesByDefault) {
  const std::string txt = TempPath("cli_invalid.txt");
  const std::string trc = TempPath("cli_invalid.trc");
  std::remove(trc.c_str());  // a prior run's --no-validate output may linger
  {
    std::ofstream out(txt);
    out << "# machine hand\n"
        << "0.000000\topen\toid=1\tfile=2\tuser=3\tmode=r\tsize=10\tpos=0\n"
        << "1.000000\tclose\toid=9\tfile=2\tpos=10\tsize=10\n";  // unknown id
  }
  std::string err;
  EXPECT_EQ(RunCaptured({"import", txt, trc}, &err), 1);
  EXPECT_NE(err.find("import error"), std::string::npos) << err;
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;       // source line cited
  EXPECT_NE(err.find("never opened"), std::string::npos) << err;
  EXPECT_NE(err.find("close\toid=9"), std::string::npos) << err;  // rendered record
  EXPECT_FALSE(FileExists(trc));

  EXPECT_EQ(RunCaptured({"import", txt, trc, "--no-validate"}, &err), 0);
  EXPECT_TRUE(FileExists(trc));
  EXPECT_EQ(RunCli({"info", trc}), 0);
}

TEST(TraceStreamCli, ImportRejectsGarbageWithLineNumber) {
  const std::string txt = TempPath("cli_garbage.txt");
  const std::string trc = TempPath("cli_garbage.trc");
  std::remove(trc.c_str());
  {
    std::ofstream out(txt);
    out << "0.000000\tunlink\tfile=1\tuser=0\n"
        << "not a record at all\n";
  }
  std::string err;
  EXPECT_EQ(RunCaptured({"import", txt, trc}, &err), 1);
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_FALSE(FileExists(trc));
}

// A small inline strace log drives the adapter end to end through the CLI:
// import (validated), then the standard analysis.
TEST(TraceStreamCli, ImportStraceLogAndAnalyze) {
  const std::string log = TempPath("cli_strace.log");
  const std::string trc = TempPath("cli_strace.trc");
  {
    std::ofstream out(log);
    out << "100.000001 open(\"/etc/passwd\", O_RDONLY) = 3\n"
        << "100.000002 read(3, \"root\", 4096) = 2048\n"
        << "100.000003 close(3) = 0\n"
        << "100.000004 creat(\"/tmp/out\", 0644) = 3\n"
        << "100.000005 write(3, \"x\", 512) = 512\n"
        << "100.000006 close(3) = 0\n"
        << "100.000007 unlink(\"/tmp/out\") = 0\n";
  }
  ASSERT_EQ(RunCli({"import", log, trc, "--format=strace"}), 0);
  EXPECT_EQ(RunCli({"info", trc}), 0);
  EXPECT_EQ(RunCli({"analyze", trc, "--threads=1"}), 0);
}

TEST(TraceStreamCli, ImportExportUsageErrors) {
  std::string err;
  // Wrong arity and unknown format are usage errors (exit 2).
  EXPECT_EQ(RunCaptured({"import", "only_one_arg"}, &err), 2);
  EXPECT_EQ(RunCaptured({"import", "a", "b", "--format=xml"}, &err), 2);
  EXPECT_NE(err.find("invalid --format"), std::string::npos) << err;
  EXPECT_EQ(RunCaptured({"export", "a", "b"}, &err), 2);
  // export does not take import's flags.
  EXPECT_EQ(RunCaptured({"export", "a.trc", "--format=strace"}, &err), 2);
  EXPECT_NE(err.find("not accepted"), std::string::npos) << err;
  // Missing input is a runtime failure (exit 1), not usage.
  EXPECT_EQ(RunCaptured({"import", TempPath("no_such.txt"), TempPath("x.trc")}, &err), 1);
  EXPECT_EQ(RunCaptured({"export", TempPath("no_such.trc")}, &err), 1);
}

}  // namespace
}  // namespace bsdtrace
