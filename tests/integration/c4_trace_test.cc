// C4 (ucbcad) specific end-to-end checks: the CAD machine must show the
// paper's distinguishing signatures relative to the development machines.

#include <gtest/gtest.h>

#include "src/analysis/analyzer.h"
#include "src/trace/validate.h"
#include "src/workload/generator.h"
#include "tests/testing/analyze_helpers.h"

namespace bsdtrace {
namespace {

class C4TraceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions options;
    options.duration = Duration::Hours(6);
    options.seed = 404;
    c4_ = new TraceAnalysis(AnalyzeForTest(GenerateTraceOnly(ProfileC4(), options)));
    a5_ = new TraceAnalysis(AnalyzeForTest(GenerateTraceOnly(ProfileA5(), options)));
  }
  static void TearDownTestSuite() {
    delete c4_;
    delete a5_;
  }

  static TraceAnalysis* c4_;
  static TraceAnalysis* a5_;
};

TraceAnalysis* C4TraceTest::c4_ = nullptr;
TraceAnalysis* C4TraceTest::a5_ = nullptr;

TEST_F(C4TraceTest, FewerUsersThanA5) {
  // Paper: ~10 active users on ucbcad vs a few dozen on the others.
  EXPECT_LT(c4_->activity.ten_minute.active_users.mean(),
            a5_->activity.ten_minute.active_users.mean());
}

TEST_F(C4TraceTest, BiggerFilesCarryTheBytes) {
  // Paper Fig. 2(b): the CAD trace moves its bytes through larger files.
  EXPECT_LT(c4_->file_sizes.by_bytes.FractionAtOrBelow(10 * 1024),
            a5_->file_sizes.by_bytes.FractionAtOrBelow(10 * 1024));
}

TEST_F(C4TraceTest, HigherPerUserThroughput) {
  // Paper Table IV: 570 B/s per active user on C4 vs 370 on A5.
  EXPECT_GT(c4_->activity.ten_minute.throughput_per_user.mean(),
            a5_->activity.ten_minute.throughput_per_user.mean());
}

TEST_F(C4TraceTest, SimulationListingsDieYoungByBytes) {
  // CAD listings are written, examined, and deleted: a large share of new
  // bytes dies within the session.
  EXPECT_GT(c4_->lifetimes.by_bytes.FractionAtOrBelow(600.0), 0.5);
}

TEST_F(C4TraceTest, StillMostlySequential) {
  // Paper §7: "the results are similar in all three traces" despite the
  // different application domain.
  EXPECT_GT(c4_->sequentiality.Mode(AccessMode::kReadOnly).SequentialFraction(), 0.8);
  EXPECT_GT(c4_->sequentiality.Mode(AccessMode::kWriteOnly).SequentialFraction(), 0.9);
}

}  // namespace
}  // namespace bsdtrace
