// Round-trip tests for the machine-readable CSV export: every figure CSV
// must parse back into the fractions the analysis holds, and a missing
// output directory must surface as a clean Status, not a silent no-op or a
// crash.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/analyzer.h"
#include "src/core/experiments.h"
#include "tests/testing/analyze_helpers.h"
#include "src/workload/generator.h"
#include "src/workload/profile.h"

namespace bsdtrace {
namespace {

namespace fs = std::filesystem;

// Parses a CSV written by CsvWriter.  The export cells never contain
// commas/quotes, so a plain split is exact.
std::vector<std::vector<std::string>> ParseCsv(const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    std::vector<std::string> cells;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      cells.push_back(cell);
    }
    rows.push_back(std::move(cells));
  }
  return rows;
}

class CsvExportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions options;
    options.duration = Duration::Minutes(20);
    options.seed = 424242;
    analysis_ = new TraceAnalysis(AnalyzeForTest(GenerateTraceOnly(ProfileA5(), options)));
  }
  static void TearDownTestSuite() {
    delete analysis_;
    analysis_ = nullptr;
  }

  static const TraceAnalysis* analysis_;
};

const TraceAnalysis* CsvExportTest::analysis_ = nullptr;

TEST_F(CsvExportTest, FigureCsvsRoundTrip) {
  const fs::path dir = fs::temp_directory_path() / "bsdtrace-csv-test";
  fs::remove_all(dir);
  ASSERT_TRUE(fs::create_directories(dir));
  const std::vector<NamedAnalysis> traces = {{"A5", analysis_}};

  const Status st = ExportFigureCsvs(dir.string(), traces);
  ASSERT_TRUE(st.ok()) << st.message();

  const struct {
    const char* file;
    size_t columns;  // x + one per panel per trace
  } expected[] = {
      {"fig1_runs.csv", 3},       // run_length_kb, A5_runs, A5_bytes
      {"fig2_filesizes.csv", 3},  // file_size_kb, A5_files, A5_bytes
      {"fig3_opentimes.csv", 2},  // open_time_s, A5_files
      {"fig4_lifetimes.csv", 3},  // lifetime_s, A5_files, A5_bytes
  };
  for (const auto& e : expected) {
    const std::string path = (dir / e.file).string();
    ASSERT_TRUE(fs::exists(path)) << path;
    const auto rows = ParseCsv(path);
    ASSERT_GT(rows.size(), 2u) << path;
    ASSERT_EQ(rows[0].size(), e.columns) << path;
    // Every data cell parses as a number; fraction columns are within [0, 1]
    // and non-decreasing down the rows (they are CDF samples).
    std::vector<double> prev(e.columns, 0.0);
    for (size_t i = 1; i < rows.size(); ++i) {
      ASSERT_EQ(rows[i].size(), e.columns) << path << " row " << i;
      for (size_t c = 0; c < e.columns; ++c) {
        const double v = std::stod(rows[i][c]);
        if (c > 0) {
          EXPECT_GE(v, 0.0) << path << " row " << i;
          EXPECT_LE(v, 1.0) << path << " row " << i;
          EXPECT_GE(v, prev[c]) << path << " row " << i << " col " << c;
        } else {
          EXPECT_GT(v, prev[c]) << path << " x must increase, row " << i;
        }
        prev[c] = v;
      }
    }
  }
  // Spot-check one value against the analysis it came from: fig1 row 1 is
  // the fraction of runs at or below 0.25 KB.  Cells carry 4 decimals.
  const auto fig1 = ParseCsv((dir / "fig1_runs.csv").string());
  EXPECT_NEAR(std::stod(fig1[1][1]),
              analysis_->runs.by_runs.FractionAtOrBelow(0.25 * 1024.0), 5e-5);
  fs::remove_all(dir);
}

TEST_F(CsvExportTest, MissingDirectoryIsCleanError) {
  const fs::path dir = fs::temp_directory_path() / "bsdtrace-csv-test-missing" / "nested";
  fs::remove_all(dir.parent_path());
  const std::vector<NamedAnalysis> traces = {{"A5", analysis_}};
  const Status st = ExportFigureCsvs(dir.string(), traces);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("cannot open"), std::string::npos) << st.message();
}

TEST(SweepCsvExport, RoundTripsPoints) {
  std::vector<SweepPoint> points(2);
  points[0].config.size_bytes = 400 << 10;
  points[0].config.block_size = 4096;
  points[0].config.policy = WritePolicy::kWriteThrough;
  points[0].metrics.logical_accesses = 1000;
  points[0].metrics.disk_reads = 150;
  points[0].metrics.disk_writes = 50;
  points[1].config.size_bytes = 4u << 20;
  points[1].config.block_size = 8192;
  points[1].config.policy = WritePolicy::kFlushBack;
  points[1].config.flush_interval = Duration::Seconds(30);
  points[1].metrics.logical_accesses = 2000;
  points[1].metrics.disk_reads = 100;
  points[1].metrics.disk_writes = 300;

  const std::string path =
      (fs::temp_directory_path() / "bsdtrace-csv-test-sweep.csv").string();
  const Status st = ExportSweepCsv(path, points);
  ASSERT_TRUE(st.ok()) << st.message();

  const auto rows = ParseCsv(path);
  ASSERT_EQ(rows.size(), 3u);  // header + 2 points
  ASSERT_EQ(rows[0].size(), 10u);
  EXPECT_EQ(rows[0][0], "cache_bytes");
  EXPECT_EQ(std::stoull(rows[1][0]), points[0].config.size_bytes);
  EXPECT_EQ(std::stoul(rows[1][1]), points[0].config.block_size);
  EXPECT_EQ(std::stoull(rows[1][6]), points[0].metrics.logical_accesses);
  EXPECT_EQ(std::stoull(rows[1][7]), points[0].metrics.disk_reads);
  EXPECT_EQ(std::stoull(rows[1][8]), points[0].metrics.disk_writes);
  EXPECT_NEAR(std::stod(rows[1][9]), points[0].metrics.MissRatio(), 1e-5);
  EXPECT_NEAR(std::stod(rows[2][9]), points[1].metrics.MissRatio(), 1e-5);
  std::remove(path.c_str());
}

TEST(SweepCsvExport, MissingDirectoryIsCleanError) {
  const std::string path =
      (fs::temp_directory_path() / "bsdtrace-csv-test-no-dir" / "fig5.csv").string();
  const Status st = ExportSweepCsv(path, {});
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("cannot open"), std::string::npos) << st.message();
}

}  // namespace
}  // namespace bsdtrace
