// Tests for the core experiment facade: render functions produce the
// paper-shaped reports from real (small) inputs.

#include <fstream>

#include <gtest/gtest.h>

#include "src/core/experiments.h"
#include "tests/testing/analyze_helpers.h"

namespace bsdtrace {
namespace {

class ExperimentsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions options;
    options.duration = Duration::Hours(2);
    options.seed = 11;
    result_ = new GenerationResult(GenerateTrace(ProfileA5(), options));
    analysis_ = new TraceAnalysis(AnalyzeForTest(result_->trace));
  }
  static void TearDownTestSuite() {
    delete analysis_;
    delete result_;
  }

  std::vector<NamedAnalysis> Named() { return {{"A5", analysis_}}; }

  static GenerationResult* result_;
  static TraceAnalysis* analysis_;
};

GenerationResult* ExperimentsTest::result_ = nullptr;
TraceAnalysis* ExperimentsTest::analysis_ = nullptr;

TEST_F(ExperimentsTest, Table3MentionsEveryEventType) {
  const std::string out = RenderTable3(Named());
  for (const char* label : {"create", "open", "close", "seek", "unlink", "truncate", "execve"}) {
    EXPECT_NE(out.find(label), std::string::npos) << label;
  }
  EXPECT_NE(out.find("Table III"), std::string::npos);
}

TEST_F(ExperimentsTest, Table4HasActivityRows) {
  const std::string out = RenderTable4(Named());
  EXPECT_NE(out.find("active users"), std::string::npos);
  EXPECT_NE(out.find("throughput"), std::string::npos);
}

TEST_F(ExperimentsTest, Table5HasSequentialityRows) {
  const std::string out = RenderTable5(Named());
  EXPECT_NE(out.find("Whole-file read transfers"), std::string::npos);
  EXPECT_NE(out.find("Sequential read-write accesses"), std::string::npos);
}

TEST_F(ExperimentsTest, FiguresRenderWithPlots) {
  for (const std::string& out :
       {RenderFigure1(Named()), RenderFigure2(Named()), RenderFigure3(Named()),
        RenderFigure4(Named())}) {
    EXPECT_GT(out.size(), 500u);
    EXPECT_NE(out.find('%'), std::string::npos);
    EXPECT_NE(out.find('|'), std::string::npos);  // plot axis present
  }
}

TEST_F(ExperimentsTest, EventIntervalsReportsPaperBands) {
  const std::string out = RenderEventIntervals(Named());
  EXPECT_NE(out.find("0.5 s"), std::string::npos);
  EXPECT_NE(out.find("Paper"), std::string::npos);
}

TEST_F(ExperimentsTest, CacheRenderingsCoverAxes) {
  // A tiny sweep is enough to exercise the rendering paths.
  std::vector<CacheConfig> fig5;
  for (const CacheConfig& c : Fig5Configs()) {
    if (c.size_bytes <= (1u << 20)) {
      fig5.push_back(c);
    }
  }
  const auto fig5_points = RunCacheSweep(result_->trace, fig5);
  const std::string out5 = RenderFigure5Table6(fig5_points);
  EXPECT_NE(out5.find("Write-Through"), std::string::npos);
  EXPECT_NE(out5.find("Delayed Write"), std::string::npos);
  EXPECT_NE(out5.find("30 Sec Flush"), std::string::npos);
  EXPECT_NE(out5.find("5 Min Flush"), std::string::npos);

  std::vector<CacheConfig> fig6;
  for (const CacheConfig& c : Fig6Configs()) {
    if (c.size_bytes <= (2u << 20)) {
      fig6.push_back(c);
    }
  }
  const auto fig6_points = RunCacheSweep(result_->trace, fig6);
  const std::string out6 = RenderFigure6Table7(fig6_points);
  EXPECT_NE(out6.find("Block Accesses"), std::string::npos);
  EXPECT_NE(out6.find("Best Block Size"), std::string::npos);

  const auto fig7_points = RunCacheSweep(result_->trace, Fig7Configs());
  const std::string out7 = RenderFigure7(fig7_points);
  EXPECT_NE(out7.find("Page-in ignored"), std::string::npos);
  EXPECT_NE(out7.find("Page-in simulated"), std::string::npos);

  const std::string sidebar = RenderWriteLifetimeSidebar(fig5_points);
  EXPECT_NE(sidebar.find("delayed-write"), std::string::npos);

  const std::string table1 = RenderTable1(*analysis_, fig5_points, fig6_points);
  EXPECT_NE(table1.find("Table I"), std::string::npos);
  EXPECT_NE(table1.find("Whole-file"), std::string::npos);
}

TEST_F(ExperimentsTest, CsvExportWritesFigureSeries) {
  const std::string dir = ::testing::TempDir();
  const Status st = ExportFigureCsvs(dir, Named());
  ASSERT_TRUE(st.ok()) << st.message();
  for (const char* name : {"fig1_runs.csv", "fig2_filesizes.csv", "fig3_opentimes.csv",
                           "fig4_lifetimes.csv"}) {
    std::ifstream in(dir + "/" + name);
    ASSERT_TRUE(in.good()) << name;
    std::string header;
    std::getline(in, header);
    EXPECT_NE(header.find("A5"), std::string::npos) << name;
    std::string row;
    std::getline(in, row);
    EXPECT_FALSE(row.empty()) << name;
  }
}

TEST_F(ExperimentsTest, CsvExportSweep) {
  const std::string path = ::testing::TempDir() + "/sweep.csv";
  const auto points = RunCacheSweep(result_->trace, Fig7Configs());
  ASSERT_TRUE(ExportSweepCsv(path, points).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
  }
  EXPECT_EQ(lines, points.size() + 1);  // header + one row per point
}

TEST(CsvExport, BadDirectoryFails) {
  TraceAnalysis empty;
  EXPECT_FALSE(ExportFigureCsvs("/nonexistent/dir", {{"X", &empty}}).ok());
  EXPECT_FALSE(ExportSweepCsv("/nonexistent/dir/s.csv", {}).ok());
}

TEST(StandardDurationTest, EnvOverride) {
  setenv("BSDTRACE_HOURS", "3.5", 1);
  EXPECT_DOUBLE_EQ(StandardDuration().hours(), 3.5);
  setenv("BSDTRACE_HOURS", "garbage", 1);
  EXPECT_DOUBLE_EQ(StandardDuration().hours(), 24.0);
  unsetenv("BSDTRACE_HOURS");
  EXPECT_DOUBLE_EQ(StandardDuration().hours(), 24.0);
}

TEST(GenerateStandardTrace, NamesSelectProfiles) {
  setenv("BSDTRACE_HOURS", "0.1", 1);
  EXPECT_EQ(GenerateStandardTrace("A5").trace.header().machine, "ucbarpa");
  EXPECT_EQ(GenerateStandardTrace("C4").trace.header().machine, "ucbcad");
  unsetenv("BSDTRACE_HOURS");
}

}  // namespace
}  // namespace bsdtrace
