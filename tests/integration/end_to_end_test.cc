// End-to-end tests: generate a synthetic trace, push it through every
// analysis and the cache simulator, and assert the paper's qualitative
// findings hold.  These are the repository's "does the reproduction
// reproduce?" checks, run on a short trace so the suite stays fast; the
// bench binaries run the full-scale versions.

#include <gtest/gtest.h>

#include "src/analysis/analyzer.h"
#include "src/cache/sweep.h"
#include "src/trace/trace_io.h"
#include "src/trace/validate.h"
#include "src/workload/generator.h"
#include "tests/testing/analyze_helpers.h"

namespace bsdtrace {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions options;
    options.duration = Duration::Hours(6);
    options.seed = 1985;
    result_ = new GenerationResult(GenerateTrace(ProfileA5(), options));
    analysis_ = new TraceAnalysis(AnalyzeForTest(result_->trace));
  }
  static void TearDownTestSuite() {
    delete analysis_;
    delete result_;
    analysis_ = nullptr;
    result_ = nullptr;
  }

  const Trace& trace() { return result_->trace; }
  const TraceAnalysis& analysis() { return *analysis_; }

  static GenerationResult* result_;
  static TraceAnalysis* analysis_;
};

GenerationResult* EndToEndTest::result_ = nullptr;
TraceAnalysis* EndToEndTest::analysis_ = nullptr;

TEST_F(EndToEndTest, TraceValidates) {
  const ValidationResult v = ValidateTrace(trace());
  EXPECT_TRUE(v.ok()) << v.Summary();
}

TEST_F(EndToEndTest, TraceSurvivesBinaryRoundTrip) {
  std::stringstream buf;
  WriteBinaryTrace(buf, trace());
  auto loaded = ReadBinaryTrace(buf);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), trace());
}

TEST_F(EndToEndTest, MostAccessesAreSequential) {
  // Paper Table V: >90% of read-only and write-only accesses sequential.
  EXPECT_GT(analysis().sequentiality.Mode(AccessMode::kReadOnly).SequentialFraction(), 0.85);
  EXPECT_GT(analysis().sequentiality.Mode(AccessMode::kWriteOnly).SequentialFraction(), 0.90);
}

TEST_F(EndToEndTest, MostAccessesAreWholeFile) {
  // Paper: about two thirds of accesses are whole-file transfers.
  const ModeSequentiality total = analysis().sequentiality.Total();
  const double frac =
      static_cast<double>(total.whole_file) / static_cast<double>(total.accesses);
  EXPECT_GT(frac, 0.55);
  EXPECT_LT(frac, 0.95);
}

TEST_F(EndToEndTest, MostFilesAccessedAreShort) {
  // Paper Fig. 2a: ~80% of accesses are to files under 10 KB.
  EXPECT_GT(analysis().file_sizes.by_accesses.FractionAtOrBelow(10 * 1024), 0.6);
}

TEST_F(EndToEndTest, LongFilesCarryTheBytes) {
  // Paper Fig. 2b: files under 10 KB carry well under half the bytes.
  EXPECT_LT(analysis().file_sizes.by_bytes.FractionAtOrBelow(10 * 1024), 0.6);
}

TEST_F(EndToEndTest, MostOpensAreShort) {
  // Paper Fig. 3: ~75% under 0.5 s, ~90% under 10 s.
  EXPECT_GT(analysis().open_times.seconds.FractionAtOrBelow(0.5), 0.6);
  EXPECT_GT(analysis().open_times.seconds.FractionAtOrBelow(10.0), 0.85);
  // But a real tail exists.
  EXPECT_LT(analysis().open_times.seconds.FractionAtOrBelow(10.0), 0.999);
}

TEST_F(EndToEndTest, DaemonLifetimeSpikeAt180s) {
  // Paper Fig. 4: a pronounced concentration of lifetimes at ~3 minutes.
  EXPECT_GT(analysis().lifetimes.FileFractionIn(175, 185), 0.15);
}

TEST_F(EndToEndTest, MostNewFilesDieYoung) {
  // Paper: ~80% of new files dead within ~3 minutes of creation.
  EXPECT_GT(analysis().lifetimes.by_files.FractionAtOrBelow(200.0), 0.6);
}

TEST_F(EndToEndTest, NewBytesDieYoungToo) {
  // Paper Table I: 20-30% of new bytes dead within 30 s, ~50% within 5 min.
  const double at30 = analysis().lifetimes.by_bytes.FractionAtOrBelow(30.0);
  const double at300 = analysis().lifetimes.by_bytes.FractionAtOrBelow(300.0);
  EXPECT_GT(at30, 0.10);
  EXPECT_GT(at300, 0.35);
  EXPECT_GT(at300, at30);
}

TEST_F(EndToEndTest, PerUserThroughputIsLow) {
  // Paper Table IV: a few hundred bytes/second per active user.
  const double tpu = analysis().activity.ten_minute.throughput_per_user.mean();
  EXPECT_GT(tpu, 30.0);
  EXPECT_LT(tpu, 3000.0);
}

TEST_F(EndToEndTest, BurstinessAcrossIntervalLengths) {
  // Paper: 10-second intervals show fewer concurrent users with higher
  // per-user rates than 10-minute intervals.
  const ActivityStats& a = analysis().activity;
  EXPECT_LT(a.ten_second.active_users.mean(), a.ten_minute.active_users.mean());
  EXPECT_GT(a.ten_second.throughput_per_user.mean(),
            a.ten_minute.throughput_per_user.mean());
}

TEST_F(EndToEndTest, UnixCacheHalvesTraffic) {
  // Paper: the 400 KB / 30 s-flush UNIX configuration cuts disk accesses
  // roughly in half.
  CacheConfig unix_cache;
  unix_cache.size_bytes = 400 << 10;
  unix_cache.policy = WritePolicy::kFlushBack;
  unix_cache.flush_interval = Duration::Seconds(30);
  const CacheMetrics m = SimulateCache(trace(), unix_cache);
  EXPECT_LT(m.MissRatio(), 0.75);
  EXPECT_GT(m.MissRatio(), 0.25);
}

TEST_F(EndToEndTest, BigDelayedWriteCacheEliminatesMostTraffic) {
  CacheConfig big;
  big.size_bytes = 16u << 20;
  big.policy = WritePolicy::kDelayedWrite;
  const CacheMetrics m = SimulateCache(trace(), big);
  EXPECT_LT(m.MissRatio(), 0.25);
}

TEST_F(EndToEndTest, PolicyOrderingOnRealisticTrace) {
  std::vector<CacheConfig> configs;
  for (int p = 0; p < 4; ++p) {
    CacheConfig c;
    c.size_bytes = 4u << 20;
    switch (p) {
      case 0:
        c.policy = WritePolicy::kWriteThrough;
        break;
      case 1:
        c.policy = WritePolicy::kFlushBack;
        c.flush_interval = Duration::Seconds(30);
        break;
      case 2:
        c.policy = WritePolicy::kFlushBack;
        c.flush_interval = Duration::Minutes(5);
        break;
      default:
        c.policy = WritePolicy::kDelayedWrite;
    }
    configs.push_back(c);
  }
  const auto points = RunCacheSweep(trace(), configs);
  EXPECT_GT(points[0].metrics.MissRatio(), points[1].metrics.MissRatio());
  EXPECT_GT(points[1].metrics.MissRatio(), points[2].metrics.MissRatio());
  EXPECT_GT(points[2].metrics.MissRatio(), points[3].metrics.MissRatio());
}

TEST_F(EndToEndTest, ManyNewBlocksDieInLargeDelayedWriteCache) {
  // Paper §6.2: with large caches most newly-written blocks never reach disk.
  CacheConfig big;
  big.size_bytes = 16u << 20;
  big.policy = WritePolicy::kDelayedWrite;
  const CacheMetrics m = SimulateCache(trace(), big);
  const double discarded = static_cast<double>(m.dirty_discarded) /
                           static_cast<double>(m.dirty_discarded + m.disk_writes);
  EXPECT_GT(discarded, 0.5);
}

TEST_F(EndToEndTest, PageinHelpsLargeCachesHurtsSmall) {
  // Paper Fig. 7 crossover.
  CacheConfig small;
  small.size_bytes = 390 << 10;
  small.policy = WritePolicy::kDelayedWrite;
  CacheConfig small_page = small;
  small_page.simulate_execve_pagein = true;
  CacheConfig big = small;
  big.size_bytes = 16u << 20;
  CacheConfig big_page = big;
  big_page.simulate_execve_pagein = true;

  const double small_off = SimulateCache(trace(), small).MissRatio();
  const double small_on = SimulateCache(trace(), small_page).MissRatio();
  const double big_off = SimulateCache(trace(), big).MissRatio();
  const double big_on = SimulateCache(trace(), big_page).MissRatio();
  EXPECT_GT(small_on, small_off);  // paging hurts the small cache
  EXPECT_LT(big_on, big_off);      // and helps the big one
}

TEST_F(EndToEndTest, EventMixRoughlyMatchesTableIII) {
  const OverallStats& o = analysis().overall;
  // Opens (incl. creates) are the most common event after closes; seeks are
  // a substantial minority; truncates are rare.
  EXPECT_GT(o.Fraction(EventType::kOpen) + o.Fraction(EventType::kCreate), 0.25);
  EXPECT_GT(o.Fraction(EventType::kSeek), 0.04);
  EXPECT_LT(o.Fraction(EventType::kTruncate), 0.01);
  EXPECT_GT(o.Fraction(EventType::kExecve), 0.02);
  EXPECT_LT(o.Fraction(EventType::kExecve), 0.15);
}

TEST_F(EndToEndTest, InterEventIntervalsBoundTransferTimes) {
  // Paper §3.1: 75% of same-open event gaps under .5 s, 90% under 10 s.
  const WeightedCdf& cdf = analysis().overall.inter_event_interval_seconds;
  EXPECT_GT(cdf.FractionAtOrBelow(0.5), 0.6);
  EXPECT_GT(cdf.FractionAtOrBelow(10.0), 0.85);
}

}  // namespace
}  // namespace bsdtrace
