// Seed-stability properties: the workload calibration must not be a
// single-seed accident.  For several seeds, the headline distribution bands
// of the paper hold on short A5 traces.

#include <gtest/gtest.h>

#include "src/analysis/analyzer.h"
#include "src/trace/validate.h"
#include "tests/testing/analyze_helpers.h"
#include "src/workload/generator.h"

namespace bsdtrace {
namespace {

class SeedStability : public ::testing::TestWithParam<uint64_t> {
 protected:
  TraceAnalysis Analyze() {
    GeneratorOptions options;
    options.duration = Duration::Hours(3);
    options.seed = GetParam();
    const Trace trace = GenerateTraceOnly(ProfileA5(), options);
    const ValidationResult v = ValidateTrace(trace);
    EXPECT_TRUE(v.ok()) << v.Summary();
    return AnalyzeForTest(trace);
  }
};

TEST_P(SeedStability, HeadlineBandsHold) {
  const TraceAnalysis a = Analyze();

  // Sequentiality (Table V bands, with slack for short traces).
  EXPECT_GT(a.sequentiality.Mode(AccessMode::kReadOnly).SequentialFraction(), 0.85);
  EXPECT_GT(a.sequentiality.Mode(AccessMode::kWriteOnly).SequentialFraction(), 0.90);
  const ModeSequentiality total = a.sequentiality.Total();
  const double whole =
      static_cast<double>(total.whole_file) / static_cast<double>(total.accesses);
  EXPECT_GT(whole, 0.5);

  // Short files dominate accesses (Fig. 2a).
  EXPECT_GT(a.file_sizes.by_accesses.FractionAtOrBelow(10 * 1024), 0.55);

  // Opens are mostly short with a real tail (Fig. 3).
  EXPECT_GT(a.open_times.seconds.FractionAtOrBelow(0.5), 0.6);
  EXPECT_LT(a.open_times.seconds.FractionAtOrBelow(10.0), 0.999);

  // The 180 s daemon spike exists (Fig. 4).
  EXPECT_GT(a.lifetimes.FileFractionIn(175, 185), 0.1);

  // Event-mix sanity (Table III): opens+creates and closes balance, seeks
  // are a real minority, truncates are rare.
  const uint64_t opens =
      a.overall.Count(EventType::kOpen) + a.overall.Count(EventType::kCreate);
  EXPECT_NEAR(static_cast<double>(a.overall.Count(EventType::kClose)),
              static_cast<double>(opens), static_cast<double>(opens) * 0.05);
  EXPECT_GT(a.overall.Fraction(EventType::kSeek), 0.03);
  EXPECT_LT(a.overall.Fraction(EventType::kTruncate), 0.01);

  // Per-user throughput in the paper's order of magnitude.
  const double tpu = a.activity.ten_minute.throughput_per_user.mean();
  EXPECT_GT(tpu, 50.0);
  EXPECT_LT(tpu, 5000.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedStability,
                         ::testing::Values(1u, 1985u, 424242u, 7u, 900001u));

}  // namespace
}  // namespace bsdtrace
