#include "src/util/table.h"

#include <gtest/gtest.h>

namespace bsdtrace {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"Name", "Value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"beta", "22"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, TitleIncluded) {
  TextTable t({"A"});
  t.AddRow({"x"});
  EXPECT_EQ(t.Render("My Title").find("My Title"), 0u);
}

TEST(TextTable, RightAlignsNumericColumns) {
  TextTable t({"K", "Num"});
  t.AddRow({"a", "1"});
  t.AddRow({"b", "100"});
  const std::string out = t.Render();
  // The short value "1" should be padded to align right with "100".
  EXPECT_NE(out.find("  1\n"), std::string::npos);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"A", "B", "C"});
  t.AddRow({"only"});
  EXPECT_NE(t.Render().find("only"), std::string::npos);
}

TEST(TextTable, SeparatorProducesRule) {
  TextTable t({"A"});
  t.AddRow({"x"});
  t.AddSeparator();
  t.AddRow({"y"});
  const std::string out = t.Render();
  // Header rule plus explicit separator: at least two dashed lines.
  size_t dashes = 0, pos = 0;
  while ((pos = out.find("\n-", pos)) != std::string::npos) {
    ++dashes;
    ++pos;
  }
  EXPECT_GE(dashes, 2u);
}

TEST(TextTable, RowCount) {
  TextTable t({"A"});
  EXPECT_EQ(t.row_count(), 0u);
  t.AddRow({"x"});
  t.AddSeparator();
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Cell, IntegerFormatting) {
  EXPECT_EQ(Cell(static_cast<int64_t>(12345)), "12345");
  EXPECT_EQ(Cell(static_cast<int64_t>(-7)), "-7");
}

TEST(Cell, DoubleFormatting) {
  EXPECT_EQ(Cell(3.14159, 2), "3.14");
  EXPECT_EQ(Cell(2.0, 0), "2");
}

}  // namespace
}  // namespace bsdtrace
