#include "src/util/sim_time.h"

#include <gtest/gtest.h>

namespace bsdtrace {
namespace {

TEST(Duration, FactoryConversions) {
  EXPECT_EQ(Duration::Micros(1500).micros(), 1500);
  EXPECT_EQ(Duration::Millis(3).micros(), 3000);
  EXPECT_EQ(Duration::Seconds(2.5).micros(), 2'500'000);
  EXPECT_EQ(Duration::Minutes(2).micros(), 120'000'000);
  EXPECT_EQ(Duration::Hours(1).micros(), 3'600'000'000);
}

TEST(Duration, Accessors) {
  const Duration d = Duration::Seconds(90);
  EXPECT_DOUBLE_EQ(d.seconds(), 90.0);
  EXPECT_DOUBLE_EQ(d.minutes(), 1.5);
  EXPECT_DOUBLE_EQ(d.hours(), 0.025);
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::Seconds(10);
  const Duration b = Duration::Seconds(4);
  EXPECT_EQ((a + b).seconds(), 14.0);
  EXPECT_EQ((a - b).seconds(), 6.0);
  EXPECT_EQ((a * 2.5).seconds(), 25.0);
  EXPECT_EQ((a / 2).seconds(), 5.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
}

TEST(Duration, CompoundAssignment) {
  Duration d = Duration::Seconds(1);
  d += Duration::Seconds(2);
  EXPECT_EQ(d.seconds(), 3.0);
  d -= Duration::Seconds(1);
  EXPECT_EQ(d.seconds(), 2.0);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(Duration::Seconds(1), Duration::Seconds(2));
  EXPECT_EQ(Duration::Millis(1000), Duration::Seconds(1));
  EXPECT_GT(Duration::Hours(1), Duration::Minutes(59));
}

TEST(Duration, ToStringPicksUnits) {
  EXPECT_EQ(Duration::Micros(500).ToString(), "500us");
  EXPECT_EQ(Duration::Millis(250).ToString(), "250ms");
  EXPECT_EQ(Duration::Seconds(1.5).ToString(), "1.5s");
  EXPECT_EQ(Duration::Minutes(3).ToString(), "3m0s");
  EXPECT_EQ(Duration::Hours(2).ToString(), "2h0m");
}

TEST(Duration, ToStringNegative) {
  EXPECT_EQ((Duration::Zero() - Duration::Seconds(2)).ToString(), "-2s");
}

TEST(SimTime, OriginAndArithmetic) {
  const SimTime t0 = SimTime::Origin();
  EXPECT_EQ(t0.micros(), 0);
  const SimTime t1 = t0 + Duration::Seconds(5);
  EXPECT_EQ(t1.seconds(), 5.0);
  EXPECT_EQ((t1 - t0).seconds(), 5.0);
  EXPECT_EQ((t1 - Duration::Seconds(1)).seconds(), 4.0);
}

TEST(SimTime, Comparisons) {
  const SimTime a = SimTime::FromSeconds(1);
  const SimTime b = SimTime::FromSeconds(2);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, SimTime::FromMicros(1'000'000));
}

TEST(SimTime, QuantizeToTracerResolution) {
  // 10 ms tracer clock (paper Table II).
  EXPECT_EQ(SimTime::FromMicros(123'456'789).QuantizeToTracerResolution().micros(),
            123'450'000);
  EXPECT_EQ(SimTime::FromMicros(10'000).QuantizeToTracerResolution().micros(), 10'000);
  EXPECT_EQ(SimTime::FromMicros(9'999).QuantizeToTracerResolution().micros(), 0);
}

TEST(SimTime, QuantizationIsIdempotent) {
  const SimTime t = SimTime::FromMicros(987'654'321).QuantizeToTracerResolution();
  EXPECT_EQ(t, t.QuantizeToTracerResolution());
}

TEST(SimTime, CompoundAdd) {
  SimTime t = SimTime::Origin();
  t += Duration::Minutes(1);
  EXPECT_EQ(t.seconds(), 60.0);
}

}  // namespace
}  // namespace bsdtrace
