#include "src/util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace bsdtrace {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.Add(42.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 42.0);
  EXPECT_EQ(s.max(), 42.0);
  EXPECT_EQ(s.sum(), 42.0);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSinglePass) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10 + i * 0.1;
    all.Add(x);
    (i < 37 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);  // no-op
  EXPECT_EQ(a.count(), 2);
  b.Merge(a);  // copies
  EXPECT_EQ(b.count(), 2);
  EXPECT_EQ(b.mean(), 2.0);
}

TEST(WeightedCdf, EmptyBehaviour) {
  WeightedCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_EQ(cdf.FractionAtOrBelow(10.0), 0.0);
  EXPECT_EQ(cdf.total_weight(), 0.0);
}

TEST(WeightedCdf, UnweightedFractions) {
  WeightedCdf cdf;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    cdf.Add(v);
  }
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(100.0), 1.0);
}

TEST(WeightedCdf, WeightsShiftTheCurve) {
  WeightedCdf cdf;
  cdf.Add(1.0, 1.0);
  cdf.Add(10.0, 9.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(1.0), 0.1);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(10.0), 1.0);
}

TEST(WeightedCdf, ZeroWeightIgnored) {
  WeightedCdf cdf;
  cdf.Add(5.0, 0.0);
  EXPECT_TRUE(cdf.empty());
}

TEST(WeightedCdf, Quantiles) {
  WeightedCdf cdf;
  for (int i = 1; i <= 100; ++i) {
    cdf.Add(i);
  }
  EXPECT_EQ(cdf.Quantile(0.5), 50.0);
  EXPECT_EQ(cdf.Quantile(0.9), 90.0);
  EXPECT_EQ(cdf.Quantile(1.0), 100.0);
  EXPECT_EQ(cdf.Quantile(0.0), 1.0);
}

TEST(WeightedCdf, MinMaxMean) {
  WeightedCdf cdf;
  cdf.Add(2.0, 1.0);
  cdf.Add(4.0, 3.0);
  EXPECT_EQ(cdf.MinValue(), 2.0);
  EXPECT_EQ(cdf.MaxValue(), 4.0);
  EXPECT_DOUBLE_EQ(cdf.Mean(), 3.5);
}

TEST(WeightedCdf, DuplicateValuesAccumulate) {
  WeightedCdf cdf;
  cdf.Add(5.0, 2.0);
  cdf.Add(5.0, 2.0);
  cdf.Add(6.0, 1.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(5.0), 0.8);
}

TEST(WeightedCdf, InterleavedAddAndQuery) {
  WeightedCdf cdf;
  cdf.Add(1.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(1.0), 1.0);
  cdf.Add(3.0);  // must re-sort lazily
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(1.0), 0.5);
}

TEST(WeightedCdf, EvaluateMatchesPointQueries) {
  WeightedCdf cdf;
  for (double v : {1.0, 5.0, 9.0}) {
    cdf.Add(v);
  }
  const auto ys = cdf.Evaluate({0.0, 1.0, 5.0, 9.0});
  ASSERT_EQ(ys.size(), 4u);
  EXPECT_EQ(ys[0], 0.0);
  EXPECT_NEAR(ys[1], 1.0 / 3, 1e-12);
  EXPECT_NEAR(ys[2], 2.0 / 3, 1e-12);
  EXPECT_EQ(ys[3], 1.0);
}

TEST(Histogram, LinearBuckets) {
  Histogram h = Histogram::Linear(0, 10, 5);
  h.Add(-1);   // underflow
  h.Add(0.5);  // [0,2)
  h.Add(9.9);  // [8,10)
  h.Add(10);   // overflow (>= last bound)
  EXPECT_EQ(h.total_weight(), 4.0);
  EXPECT_EQ(h.bucket_weight(0), 1.0);
  EXPECT_EQ(h.bucket_weight(1), 1.0);
  EXPECT_EQ(h.bucket_weight(5), 1.0);
  EXPECT_EQ(h.bucket_weight(6), 1.0);
}

TEST(Histogram, ExponentialBuckets) {
  Histogram h = Histogram::Exponential(1, 2, 4);  // bounds 1,2,4,8,16
  h.Add(3);
  h.Add(3);
  h.Add(20);
  EXPECT_EQ(h.bucket_weight(2), 2.0);  // [2,4)
  EXPECT_EQ(h.bucket_weight(5), 1.0);  // overflow
}

TEST(Histogram, WeightedAdds) {
  Histogram h = Histogram::Linear(0, 4, 2);
  h.Add(1.0, 5.0);
  EXPECT_EQ(h.total_weight(), 5.0);
  EXPECT_EQ(h.bucket_weight(1), 5.0);
}

TEST(Histogram, CumulativeFractionInterpolates) {
  Histogram h = Histogram::Linear(0, 10, 10);
  for (int i = 0; i < 10; ++i) {
    h.Add(i + 0.5);
  }
  EXPECT_NEAR(h.CumulativeFraction(5.0), 0.5, 0.05);
  EXPECT_EQ(h.CumulativeFraction(-1.0), 0.0);
  EXPECT_NEAR(h.CumulativeFraction(10.0), 1.0, 1e-12);
}

TEST(Histogram, BucketLabels) {
  Histogram h = Histogram::Linear(0, 10, 2);
  EXPECT_EQ(h.BucketLabel(0), "(-inf, 0)");
  EXPECT_EQ(h.BucketLabel(1), "[0, 5)");
  EXPECT_EQ(h.BucketLabel(2), "[5, 10)");
  EXPECT_EQ(h.BucketLabel(3), "[10, +inf)");
}

TEST(FormatBytes, Units) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(4096), "4.0 KB");
  EXPECT_EQ(FormatBytes(400 * 1024), "400.0 KB");
  EXPECT_EQ(FormatBytes(16.0 * 1024 * 1024), "16.0 MB");
  EXPECT_EQ(FormatBytes(2.0 * 1024 * 1024 * 1024), "2.0 GB");
}

TEST(FormatPercent, Decimals) {
  EXPECT_EQ(FormatPercent(0.576), "57.6%");
  EXPECT_EQ(FormatPercent(0.5, 0), "50%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

}  // namespace
}  // namespace bsdtrace
