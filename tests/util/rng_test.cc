#include "src/util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace bsdtrace {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextDouble();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 9u);  // all 9 values hit in 1000 draws
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(7, 7), 7);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Exponential(5.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, LogNormalMedian) {
  Rng rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 50001; ++i) {
    xs.push_back(rng.LogNormal(std::log(100.0), 1.0));
  }
  std::nth_element(xs.begin(), xs.begin() + 25000, xs.end());
  EXPECT_NEAR(xs[25000], 100.0, 5.0);
}

TEST(Rng, ParetoBounds) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(31);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    counts[rng.WeightedIndex(weights)] += 1;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.Fork();
  // The child stream should not mirror the parent's subsequent output.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() == child.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkDeterministic) {
  Rng a(41);
  Rng b(41);
  Rng ca = a.Fork();
  Rng cb = b.Fork();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(ca.NextU64(), cb.NextU64());
  }
}

TEST(Rng, StreamZeroIsTheSeedStream) {
  // Stream 0 is the serial reference stream: bit-identical to Rng(seed).
  Rng direct(19851201);
  Rng stream = Rng::Stream(19851201, 0);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(direct.NextU64(), stream.NextU64());
  }
}

TEST(Rng, StreamsAreReproducible) {
  Rng a = Rng::Stream(7, 3);
  Rng b = Rng::Stream(7, 3);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, StreamsOfOneSeedDiffer) {
  // Streams of the same family must not mirror each other (shards draw from
  // sibling streams concurrently).
  Rng s0 = Rng::Stream(123, 0);
  Rng s1 = Rng::Stream(123, 1);
  Rng s2 = Rng::Stream(123, 2);
  int same01 = 0, same12 = 0;
  for (int i = 0; i < 64; ++i) {
    const uint64_t v0 = s0.NextU64(), v1 = s1.NextU64(), v2 = s2.NextU64();
    same01 += v0 == v1;
    same12 += v1 == v2;
  }
  EXPECT_EQ(same01, 0);
  EXPECT_EQ(same12, 0);
}

}  // namespace
}  // namespace bsdtrace
