#include "src/util/status.h"

#include <gtest/gtest.h>

namespace bsdtrace {
namespace {

TEST(Status, OkHasNoMessage) {
  const Status s = Status::Ok();
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(Status, ErrorCarriesMessage) {
  const Status s = Status::Error("boom");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "boom");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v(Status::Error("bad"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().message(), "bad");
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  const std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(StatusOr, MutableValue) {
  StatusOr<std::string> v(std::string("a"));
  v.value() += "b";
  EXPECT_EQ(v.value(), "ab");
}

}  // namespace
}  // namespace bsdtrace
