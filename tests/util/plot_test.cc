#include "src/util/plot.h"

#include <gtest/gtest.h>

namespace bsdtrace {
namespace {

TEST(AsciiPlot, RendersTitleAxesAndLegend) {
  AsciiPlot plot("My Plot", "x things", "y things");
  plot.AddSeries({.name = "series-one", .xs = {0, 1, 2}, .ys = {0, 1, 4}, .marker = 's'});
  const std::string out = plot.Render(40, 10);
  EXPECT_NE(out.find("My Plot"), std::string::npos);
  EXPECT_NE(out.find("x things"), std::string::npos);
  EXPECT_NE(out.find("y things"), std::string::npos);
  EXPECT_NE(out.find("series-one"), std::string::npos);
  EXPECT_NE(out.find('s'), std::string::npos);
}

TEST(AsciiPlot, MultipleSeriesMarkers) {
  AsciiPlot plot("", "x", "y");
  plot.AddSeries({.name = "a", .xs = {0, 1}, .ys = {0, 1}, .marker = 'a'});
  plot.AddSeries({.name = "b", .xs = {0, 1}, .ys = {1, 0}, .marker = 'b'});
  const std::string out = plot.Render(30, 8);
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

TEST(AsciiPlot, FixedRangesClipOutOfRangePoints) {
  AsciiPlot plot("", "x", "y");
  plot.SetXRange(0, 1);
  plot.SetYRange(0, 1);
  plot.AddSeries({.name = "wild", .xs = {0.5, 50.0}, .ys = {0.5, 50.0}, .marker = 'w'});
  // Must not crash; the in-range point still renders.
  const std::string out = plot.Render(20, 6);
  EXPECT_NE(out.find('w'), std::string::npos);
}

TEST(AsciiPlot, LogScaleHandlesWideRange) {
  AsciiPlot plot("", "size", "pct");
  plot.SetXLog2(true);
  plot.AddSeries({.name = "curve", .xs = {1, 1024, 1048576}, .ys = {0, 50, 100}, .marker = 'c'});
  const std::string out = plot.Render(40, 10);
  EXPECT_NE(out.find("log2"), std::string::npos);
}

TEST(AsciiPlot, EmptySeriesListStillRenders) {
  AsciiPlot plot("empty", "x", "y");
  const std::string out = plot.Render(10, 4);
  EXPECT_NE(out.find("empty"), std::string::npos);
}

TEST(AsciiPlot, SinglePointSeries) {
  AsciiPlot plot("", "x", "y");
  plot.AddSeries({.name = "dot", .xs = {5.0}, .ys = {5.0}, .marker = '.'});
  EXPECT_FALSE(plot.Render(10, 4).empty());
}

}  // namespace
}  // namespace bsdtrace
