// The strict numeric parsers back every untrusted-input surface (CLI flags,
// bsdtxt, strace logs), so the rejection cases matter as much as the happy
// path: signs, overflow, trailing garbage, and hex must all refuse.

#include "src/util/parse.h"

#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace bsdtrace {
namespace {

TEST(ParseUint64, AcceptsPlainDecimal) {
  uint64_t v = 1;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("42", &v));
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));  // UINT64_MAX
  EXPECT_EQ(v, std::numeric_limits<uint64_t>::max());
  EXPECT_TRUE(ParseUint64("007", &v));  // leading zeros are still decimal
  EXPECT_EQ(v, 7u);
}

TEST(ParseUint64, RejectsEverythingElse) {
  uint64_t v = 0;
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));   // strtoull would wrap this
  EXPECT_FALSE(ParseUint64("+1", &v));
  EXPECT_FALSE(ParseUint64(" 1", &v));
  EXPECT_FALSE(ParseUint64("1 ", &v));
  EXPECT_FALSE(ParseUint64("8oops", &v));  // atoi would read 8
  EXPECT_FALSE(ParseUint64("0x10", &v));
  EXPECT_FALSE(ParseUint64("1e3", &v));
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // UINT64_MAX + 1
  EXPECT_FALSE(ParseUint64("99999999999999999999", &v));
}

TEST(ParseUint64InRange, InclusiveBounds) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64InRange("5", 5, 10, &v));
  EXPECT_TRUE(ParseUint64InRange("10", 5, 10, &v));
  EXPECT_FALSE(ParseUint64InRange("4", 5, 10, &v));
  EXPECT_FALSE(ParseUint64InRange("11", 5, 10, &v));
}

TEST(ParseInt32InRange, RangeAndOverflow) {
  int v = 0;
  EXPECT_TRUE(ParseInt32InRange("0", 0, 4096, &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ParseInt32InRange("4096", 0, 4096, &v));
  EXPECT_EQ(v, 4096);
  EXPECT_FALSE(ParseInt32InRange("4097", 0, 4096, &v));
  EXPECT_FALSE(ParseInt32InRange("-1", 0, 4096, &v));
  // Far beyond int: must reject, not wrap to a small int.
  EXPECT_FALSE(ParseInt32InRange("4294967297", 0, 1 << 30, &v));
}

TEST(ParseSecondsToMicros, ExactFixedPoint) {
  int64_t us = -1;
  EXPECT_TRUE(ParseSecondsToMicros("0.000000", &us));
  EXPECT_EQ(us, 0);
  EXPECT_TRUE(ParseSecondsToMicros("1.5", &us));
  EXPECT_EQ(us, 1'500'000);
  EXPECT_TRUE(ParseSecondsToMicros("0.000007", &us));  // %.6f+atof loses this
  EXPECT_EQ(us, 7);
  EXPECT_TRUE(ParseSecondsToMicros("1723190000.000100", &us));  // strace -ttt epoch
  EXPECT_EQ(us, 1'723'190'000'000'100);
  EXPECT_TRUE(ParseSecondsToMicros("42", &us));  // integer seconds allowed
  EXPECT_EQ(us, 42'000'000);
}

TEST(ParseSecondsToMicros, RejectsNonFixedPointForms) {
  int64_t us = 0;
  EXPECT_FALSE(ParseSecondsToMicros("", &us));
  EXPECT_FALSE(ParseSecondsToMicros(".5", &us));
  EXPECT_FALSE(ParseSecondsToMicros("1.", &us));
  EXPECT_FALSE(ParseSecondsToMicros("-1.0", &us));
  EXPECT_FALSE(ParseSecondsToMicros("1.0000007", &us));  // 7 fractional digits
  EXPECT_FALSE(ParseSecondsToMicros("1e3", &us));
  EXPECT_FALSE(ParseSecondsToMicros("nan", &us));
  EXPECT_FALSE(ParseSecondsToMicros("1.2.3", &us));
  // Overflows int64 microseconds.
  EXPECT_FALSE(ParseSecondsToMicros("9223372036854.775808", &us));
}

TEST(ParseSecondsToMicros, MaxValueRoundTrips) {
  int64_t us = 0;
  EXPECT_TRUE(ParseSecondsToMicros("9223372036854.775807", &us));
  EXPECT_EQ(us, std::numeric_limits<int64_t>::max());
}

}  // namespace
}  // namespace bsdtrace
