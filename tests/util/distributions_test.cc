#include "src/util/distributions.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

namespace bsdtrace {
namespace {

TEST(ConstantDist, AlwaysSameValue) {
  Rng rng(1);
  ConstantDist d(7.5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(d.Sample(rng), 7.5);
  }
}

TEST(UniformDist, WithinBounds) {
  Rng rng(2);
  UniformDist d(10, 20);
  for (int i = 0; i < 1000; ++i) {
    const double x = d.Sample(rng);
    EXPECT_GE(x, 10);
    EXPECT_LT(x, 20);
  }
}

TEST(ExponentialDist, MeanConverges) {
  Rng rng(3);
  ExponentialDist d(4.0);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += d.Sample(rng);
  }
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(LogNormalDist, MedianParameterization) {
  Rng rng(4);
  LogNormalDist d(1000.0, 0.8);
  std::vector<double> xs;
  for (int i = 0; i < 40001; ++i) {
    xs.push_back(d.Sample(rng));
  }
  std::nth_element(xs.begin(), xs.begin() + 20000, xs.end());
  EXPECT_NEAR(xs[20000], 1000.0, 50.0);
}

TEST(LogNormalDist, CapIsRespected) {
  Rng rng(5);
  LogNormalDist d(1000.0, 2.0, 5000.0);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LE(d.Sample(rng), 5000.0);
  }
}

TEST(BoundedParetoDist, WithinBounds) {
  Rng rng(6);
  BoundedParetoDist d(100, 10000, 1.1);
  for (int i = 0; i < 10000; ++i) {
    const double x = d.Sample(rng);
    EXPECT_GE(x, 100);
    EXPECT_LE(x, 10000);
  }
}

TEST(BoundedParetoDist, HeavyTailSkew) {
  Rng rng(7);
  BoundedParetoDist d(1, 1000, 1.0);
  int below_10 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    below_10 += d.Sample(rng) < 10 ? 1 : 0;
  }
  // With alpha=1 over [1,1000], most mass is near the low end.
  EXPECT_GT(static_cast<double>(below_10) / n, 0.7);
}

TEST(MixtureDist, SamplesFromComponents) {
  Rng rng(8);
  MixtureDist mix;
  mix.Add(1.0, std::make_unique<ConstantDist>(1.0));
  mix.Add(3.0, std::make_unique<ConstantDist>(2.0));
  int twos = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const double x = mix.Sample(rng);
    EXPECT_TRUE(x == 1.0 || x == 2.0);
    twos += x == 2.0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(twos) / n, 0.75, 0.02);
}

TEST(ZipfSampler, FirstItemDominates) {
  Rng rng(9);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    counts[zipf.Sample(rng)] += 1;
  }
  EXPECT_GT(counts[0], counts[9] * 5);   // 1/1 vs 1/10: ratio 10 expected
  EXPECT_GT(counts[0], counts[50] * 20);
}

TEST(ZipfSampler, AllIndicesValid) {
  Rng rng(10);
  ZipfSampler zipf(5, 0.5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 5u);
  }
}

// Property sweep: every distribution yields non-negative, finite samples.
class DistributionProperty : public ::testing::TestWithParam<int> {};

TEST_P(DistributionProperty, SamplesAreFiniteAndNonNegative) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 1);
  std::vector<std::unique_ptr<Distribution>> dists;
  dists.push_back(std::make_unique<ConstantDist>(3.0));
  dists.push_back(std::make_unique<UniformDist>(0, 100));
  dists.push_back(std::make_unique<ExponentialDist>(10));
  dists.push_back(std::make_unique<LogNormalDist>(500, 1.2));
  dists.push_back(std::make_unique<BoundedParetoDist>(1, 1e6, 1.3));
  for (const auto& d : dists) {
    for (int i = 0; i < 200; ++i) {
      const double x = d->Sample(rng);
      EXPECT_TRUE(std::isfinite(x));
      EXPECT_GE(x, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributionProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace bsdtrace
