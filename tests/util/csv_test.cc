#include "src/util/csv.h"

#include <sstream>

#include <gtest/gtest.h>

namespace bsdtrace {
namespace {

TEST(CsvWriter, PlainRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.WriteRow({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriter, QuotesCommas) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.WriteRow({"x,y", "z"});
  EXPECT_EQ(out.str(), "\"x,y\",z\n");
}

TEST(CsvWriter, EscapesQuotes) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.WriteRow({"say \"hi\""});
  EXPECT_EQ(out.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, QuotesNewlines) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.WriteRow({"line1\nline2"});
  EXPECT_EQ(out.str(), "\"line1\nline2\"\n");
}

TEST(CsvWriter, EmptyRowAndCells) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.WriteRow({});
  csv.WriteRow({"", ""});
  EXPECT_EQ(out.str(), "\n,\n");
}

}  // namespace
}  // namespace bsdtrace
