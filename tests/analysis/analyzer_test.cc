#include "src/analysis/analyzer.h"

#include <gtest/gtest.h>

#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

TEST(AnalyzeTrace, SinglePassPopulatesAllSections) {
  TraceBuilder b;
  b.WholeRead(1, 2, 1, 10, 4096, 5);
  b.WholeWrite(3, 4, 2, 11, 2048, 6);
  b.Unlink(30, 11, 6);
  b.Execve(31, 12, 10000, 5);
  const TraceAnalysis a = AnalyzeTrace(b.Build());

  EXPECT_EQ(a.overall.total_records, 6u);
  EXPECT_EQ(a.overall.bytes_transferred, 6144u);
  EXPECT_EQ(a.activity.distinct_users, 2u);
  EXPECT_EQ(a.sequentiality.Total().accesses, 2u);
  EXPECT_EQ(a.runs.by_runs.sample_count(), 2);
  EXPECT_EQ(a.file_sizes.by_accesses.sample_count(), 2);
  EXPECT_EQ(a.open_times.seconds.sample_count(), 2);
  EXPECT_EQ(a.lifetimes.new_files, 1u);
  EXPECT_EQ(a.lifetimes.observed_deaths, 1u);
}

TEST(AnalyzeTrace, EmptyTraceSafe) {
  const TraceAnalysis a = AnalyzeTrace(Trace{});
  EXPECT_EQ(a.overall.total_records, 0u);
  EXPECT_EQ(a.activity.distinct_users, 0u);
  EXPECT_TRUE(a.open_times.seconds.empty());
}

TEST(AnalyzeTrace, ConsistencyBetweenCollectors) {
  TraceBuilder b;
  double t = 1;
  for (OpenId oid = 1; oid <= 20; ++oid) {
    b.WholeRead(t, t + 0.5, oid, 10 + oid, 1000 * oid);
    t += 1;
  }
  const TraceAnalysis a = AnalyzeTrace(b.Build());
  // Bytes seen by overall == bytes classified by sequentiality.
  EXPECT_EQ(a.overall.bytes_transferred, a.sequentiality.Total().bytes);
  // Every access produced a run (whole-file reads are single runs).
  EXPECT_EQ(a.runs.by_runs.sample_count(), 20);
  EXPECT_EQ(static_cast<uint64_t>(a.runs.by_bytes.total_weight()),
            a.overall.bytes_transferred);
}

}  // namespace
}  // namespace bsdtrace
