#include "src/analysis/analyzer.h"

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "src/trace/trace_io.h"
#include "src/trace/trace_source.h"
#include "tests/testing/analyze_helpers.h"
#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

TEST(AnalyzeTrace, SinglePassPopulatesAllSections) {
  TraceBuilder b;
  b.WholeRead(1, 2, 1, 10, 4096, 5);
  b.WholeWrite(3, 4, 2, 11, 2048, 6);
  b.Unlink(30, 11, 6);
  b.Execve(31, 12, 10000, 5);
  const TraceAnalysis a = AnalyzeForTest(b.Build());

  EXPECT_EQ(a.overall.total_records, 6u);
  EXPECT_EQ(a.overall.bytes_transferred, 6144u);
  EXPECT_EQ(a.activity.distinct_users, 2u);
  EXPECT_EQ(a.sequentiality.Total().accesses, 2u);
  EXPECT_EQ(a.runs.by_runs.sample_count(), 2);
  EXPECT_EQ(a.file_sizes.by_accesses.sample_count(), 2);
  EXPECT_EQ(a.open_times.seconds.sample_count(), 2);
  EXPECT_EQ(a.lifetimes.new_files, 1u);
  EXPECT_EQ(a.lifetimes.observed_deaths, 1u);
}

TEST(AnalyzeTrace, EmptyTraceSafe) {
  const TraceAnalysis a = AnalyzeForTest(Trace{});
  EXPECT_EQ(a.overall.total_records, 0u);
  EXPECT_EQ(a.activity.distinct_users, 0u);
  EXPECT_TRUE(a.open_times.seconds.empty());
}

TEST(AnalyzeTrace, ConsistencyBetweenCollectors) {
  TraceBuilder b;
  double t = 1;
  for (OpenId oid = 1; oid <= 20; ++oid) {
    b.WholeRead(t, t + 0.5, oid, 10 + oid, 1000 * oid);
    t += 1;
  }
  const TraceAnalysis a = AnalyzeForTest(b.Build());
  // Bytes seen by overall == bytes classified by sequentiality.
  EXPECT_EQ(a.overall.bytes_transferred, a.sequentiality.Total().bytes);
  // Every access produced a run (whole-file reads are single runs).
  EXPECT_EQ(a.runs.by_runs.sample_count(), 20);
  EXPECT_EQ(static_cast<uint64_t>(a.runs.by_bytes.total_weight()),
            a.overall.bytes_transferred);
}

// The streaming entry point must compute exactly what the in-memory one
// does — same collectors, records arriving through a TraceSource.
TEST(AnalyzeTrace, StreamingSourceMatchesInMemory) {
  TraceBuilder b;
  double t = 1;
  for (OpenId oid = 1; oid <= 30; ++oid) {
    b.WholeRead(t, t + 0.4, oid, 100 + oid, 512 * oid, 1 + oid % 3);
    t += 1;
  }
  b.Unlink(t + 1, 101, 1);
  const Trace trace = b.Build();
  const TraceAnalysis direct = AnalyzeForTest(trace);

  // Through an in-memory source...
  TraceVectorSource vector_source(trace);
  AnalyzeOptions stream_options;
  stream_options.source = &vector_source;
  auto streamed = Analyze(stream_options);
  ASSERT_TRUE(streamed.ok()) << streamed.status().message();

  // ...and through a real file, the full generate-to-file → analyze-from-file
  // recipe.
  const std::string path = (std::filesystem::temp_directory_path() /
                            "bsdtrace-analyzer-stream-test.trc")
                               .string();
  ASSERT_TRUE(SaveTrace(path, trace).ok());
  TraceFileSource file_source(path);
  AnalyzeOptions file_options;
  file_options.source = &file_source;
  auto from_file = Analyze(file_options);
  std::remove(path.c_str());
  ASSERT_TRUE(from_file.ok()) << from_file.status().message();

  for (const TraceAnalysis* a : {&streamed.value(), &from_file.value()}) {
    EXPECT_EQ(a->overall.total_records, direct.overall.total_records);
    EXPECT_EQ(a->overall.bytes_transferred, direct.overall.bytes_transferred);
    EXPECT_EQ(a->activity.distinct_users, direct.activity.distinct_users);
    EXPECT_EQ(a->sequentiality.Total().accesses, direct.sequentiality.Total().accesses);
    EXPECT_EQ(a->runs.by_runs.sample_count(), direct.runs.by_runs.sample_count());
    EXPECT_EQ(a->open_times.seconds.sample_count(), direct.open_times.seconds.sample_count());
    EXPECT_EQ(a->lifetimes.new_files, direct.lifetimes.new_files);
    EXPECT_EQ(a->lifetimes.observed_deaths, direct.lifetimes.observed_deaths);
  }
}

TEST(AnalyzeTrace, SourceErrorPropagates) {
  TraceFileSource missing("/nonexistent/bsdtrace-analyzer-missing.trc");
  AnalyzeOptions options;
  options.source = &missing;
  auto analysis = Analyze(options);
  EXPECT_FALSE(analysis.ok());
}

}  // namespace
}  // namespace bsdtrace
