#include "src/analysis/patterns.h"

#include <gtest/gtest.h>

#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

struct Results {
  RunLengthStats runs;
  FileSizeStats sizes;
  OpenTimeStats opens;
};

Results Analyze(const Trace& t) {
  PatternsCollector collector;
  Reconstruct(t, &collector);
  return {collector.TakeRuns(), collector.TakeFileSizes(), collector.TakeOpenTimes()};
}

TEST(RunLengths, CountAndByteWeighting) {
  TraceBuilder b;
  b.WholeRead(1, 2, 1, 10, 1000);    // run of 1000
  b.WholeRead(3, 4, 2, 11, 9000);    // run of 9000
  const Results r = Analyze(b.Build());
  // By runs: half the runs are <= 1000.
  EXPECT_DOUBLE_EQ(r.runs.by_runs.FractionAtOrBelow(1000), 0.5);
  // By bytes: only 10% of bytes are in runs <= 1000.
  EXPECT_DOUBLE_EQ(r.runs.by_bytes.FractionAtOrBelow(1000), 0.1);
}

TEST(RunLengths, SeeksSplitRuns) {
  TraceBuilder b;
  b.Open(1, 1, 10, 10000);
  b.Seek(2, 1, 10, 2000, 8000);  // run 1: 2000 bytes
  b.Close(3, 1, 10, 9000, 10000);  // run 2: 1000 bytes
  const Results r = Analyze(b.Build());
  EXPECT_EQ(r.runs.by_runs.sample_count(), 2);
  EXPECT_DOUBLE_EQ(r.runs.by_runs.FractionAtOrBelow(1000), 0.5);
}

TEST(FileSizes, MeasuredAtClose) {
  TraceBuilder b;
  // The file grows during the access; Fig. 2 uses the size at close.
  b.Create(1, 1, 10);
  b.Close(2, 1, 10, 5000, 5000);
  const Results r = Analyze(b.Build());
  EXPECT_DOUBLE_EQ(r.sizes.by_accesses.FractionAtOrBelow(4999), 0.0);
  EXPECT_DOUBLE_EQ(r.sizes.by_accesses.FractionAtOrBelow(5000), 1.0);
}

TEST(FileSizes, ByteWeightingUsesTransferredBytes) {
  TraceBuilder b;
  // A 1 MB file accessed with a tiny read, plus a small file read whole.
  b.Open(1, 1, 10, 1 << 20);
  b.Seek(2, 1, 10, 0, 500000);
  b.Close(3, 1, 10, 501024, 1 << 20);  // 1024 bytes from the big file
  b.WholeRead(4, 5, 2, 11, 1024);      // 1024 bytes from the small file
  const Results r = Analyze(b.Build());
  // Accesses: half to small files...
  EXPECT_DOUBLE_EQ(r.sizes.by_accesses.FractionAtOrBelow(10000), 0.5);
  // ...and the byte split is also 50/50 despite the size difference.
  EXPECT_DOUBLE_EQ(r.sizes.by_bytes.FractionAtOrBelow(10000), 0.5);
}

TEST(FileSizes, ZeroByteAccessExcludedFromByteWeighting) {
  TraceBuilder b;
  b.Open(1, 1, 10, 100);
  b.Close(2, 1, 10, 0, 100);  // nothing transferred
  const Results r = Analyze(b.Build());
  EXPECT_EQ(r.sizes.by_accesses.sample_count(), 1);
  EXPECT_EQ(r.sizes.by_bytes.sample_count(), 0);
}

TEST(OpenTimes, DurationDistribution) {
  TraceBuilder b;
  b.WholeRead(1, 1.2, 1, 10, 100);   // 0.2 s
  b.WholeRead(2, 12, 2, 11, 100);    // 10 s
  const Results r = Analyze(b.Build());
  EXPECT_DOUBLE_EQ(r.opens.seconds.FractionAtOrBelow(0.5), 0.5);
  EXPECT_DOUBLE_EQ(r.opens.seconds.FractionAtOrBelow(10.0), 1.0);
}

TEST(OpenTimes, InstantOpenClose) {
  TraceBuilder b;
  b.Open(1, 1, 10, 100);
  b.Close(1, 1, 10, 100, 100);  // same timestamp
  const Results r = Analyze(b.Build());
  EXPECT_DOUBLE_EQ(r.opens.seconds.FractionAtOrBelow(0.0), 1.0);
}

}  // namespace
}  // namespace bsdtrace
