#include "src/analysis/popularity.h"

#include <gtest/gtest.h>

#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

TEST(Popularity, CountsAccessesPerFile) {
  TraceBuilder b;
  b.WholeRead(1, 1.1, 1, 10, 100);
  b.WholeRead(2, 2.1, 2, 10, 100);
  b.WholeRead(3, 3.1, 3, 11, 500);
  const PopularityStats s = AnalyzePopularity(b.Build());
  EXPECT_EQ(s.distinct_files, 2u);
  EXPECT_EQ(s.total_accesses, 3u);
  EXPECT_EQ(s.access_counts_sorted[0], 2u);
  EXPECT_EQ(s.access_counts_sorted[1], 1u);
}

TEST(Popularity, ExecvesCountAsAccesses) {
  TraceBuilder b;
  b.Execve(1, 20, 1000);
  b.Execve(2, 20, 1000);
  const PopularityStats s = AnalyzePopularity(b.Build());
  EXPECT_EQ(s.distinct_files, 1u);
  EXPECT_EQ(s.total_accesses, 2u);
}

TEST(Popularity, TopShares) {
  TraceBuilder b;
  double t = 1;
  OpenId oid = 1;
  for (int i = 0; i < 8; ++i) {
    b.WholeRead(t, t + 0.1, oid++, 50, 100);  // hot file: 8 accesses
    t += 1;
  }
  b.WholeRead(t, t + 0.1, oid++, 51, 100);
  b.WholeRead(t + 1, t + 1.1, oid++, 52, 100);
  const PopularityStats s = AnalyzePopularity(b.Build());
  EXPECT_DOUBLE_EQ(s.TopAccessShare(1), 0.8);
  EXPECT_DOUBLE_EQ(s.TopAccessShare(3), 1.0);
  EXPECT_EQ(s.FilesForAccessFraction(0.5), 1u);
  EXPECT_EQ(s.FilesForAccessFraction(1.0), 3u);
}

TEST(Popularity, ByteSharesUseTransferredBytes) {
  TraceBuilder b;
  b.WholeRead(1, 1.1, 1, 60, 10000);
  b.WholeRead(2, 2.1, 2, 61, 100);
  const PopularityStats s = AnalyzePopularity(b.Build());
  EXPECT_EQ(s.total_bytes, 10100u);
  EXPECT_NEAR(s.TopByteShare(1), 10000.0 / 10100.0, 1e-12);
}

TEST(Popularity, EmptyTrace) {
  const PopularityStats s = AnalyzePopularity(Trace{});
  EXPECT_EQ(s.distinct_files, 0u);
  EXPECT_EQ(s.TopAccessShare(5), 0.0);
  EXPECT_EQ(s.FilesForAccessFraction(0.5), 0u);
}

}  // namespace
}  // namespace bsdtrace
