#include "src/analysis/overall.h"

#include <gtest/gtest.h>

#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

OverallStats Analyze(const Trace& t) {
  OverallStatsCollector collector;
  Reconstruct(t, &collector);
  return collector.Take();
}

TEST(OverallStats, CountsByType) {
  const Trace t = TraceBuilder()
                      .WholeRead(1, 2, 1, 10, 100)
                      .WholeWrite(3, 4, 2, 11, 200)
                      .Unlink(5, 11)
                      .Execve(6, 12, 300)
                      .Build();
  const OverallStats s = Analyze(t);
  EXPECT_EQ(s.total_records, 6u);
  EXPECT_EQ(s.Count(EventType::kOpen), 1u);
  EXPECT_EQ(s.Count(EventType::kCreate), 1u);
  EXPECT_EQ(s.Count(EventType::kClose), 2u);
  EXPECT_EQ(s.Count(EventType::kUnlink), 1u);
  EXPECT_EQ(s.Count(EventType::kExecve), 1u);
  EXPECT_DOUBLE_EQ(s.Fraction(EventType::kClose), 2.0 / 6.0);
}

TEST(OverallStats, DurationIsLastRecordTime) {
  const Trace t = TraceBuilder().Unlink(1, 5).Unlink(9.5, 6).Build();
  EXPECT_DOUBLE_EQ(Analyze(t).duration.seconds(), 9.5);
}

TEST(OverallStats, BytesSplitByDirection) {
  const Trace t = TraceBuilder()
                      .WholeRead(1, 2, 1, 10, 1000)
                      .WholeWrite(3, 4, 2, 11, 500)
                      .Build();
  const OverallStats s = Analyze(t);
  EXPECT_EQ(s.bytes_transferred, 1500u);
  EXPECT_EQ(s.bytes_read, 1000u);
  EXPECT_EQ(s.bytes_written, 500u);
}

TEST(OverallStats, InterEventIntervalsPerOpen) {
  // open at 1, seek at 2.5, close at 3: intervals 1.5 and 0.5.
  const Trace t = TraceBuilder()
                      .Open(1, 1, 10, 10000)
                      .Seek(2.5, 1, 10, 100, 5000)
                      .Close(3, 1, 10, 6000, 10000)
                      .Build();
  const OverallStats s = Analyze(t);
  EXPECT_EQ(s.inter_event_interval_seconds.sample_count(), 2);
  EXPECT_DOUBLE_EQ(s.inter_event_interval_seconds.FractionAtOrBelow(0.5), 0.5);
  EXPECT_DOUBLE_EQ(s.inter_event_interval_seconds.FractionAtOrBelow(1.5), 1.0);
}

TEST(OverallStats, IntervalsIgnoreOtherOpens) {
  // Two interleaved opens: intervals are tracked per open id.
  const Trace t = TraceBuilder()
                      .Open(1, 1, 10, 100)
                      .Open(1.1, 2, 11, 100)
                      .Close(1.2, 1, 10, 100, 100)    // 0.2 for open 1
                      .Close(5.1, 2, 11, 100, 100)    // 4.0 for open 2
                      .Build();
  const OverallStats s = Analyze(t);
  EXPECT_EQ(s.inter_event_interval_seconds.sample_count(), 2);
  EXPECT_NEAR(s.inter_event_interval_seconds.Quantile(1.0), 4.0, 1e-9);
}

TEST(OverallStats, EmptyTrace) {
  const OverallStats s = Analyze(Trace{});
  EXPECT_EQ(s.total_records, 0u);
  EXPECT_EQ(s.Fraction(EventType::kOpen), 0.0);
}

}  // namespace
}  // namespace bsdtrace
