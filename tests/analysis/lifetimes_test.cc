#include "src/analysis/lifetimes.h"

#include <gtest/gtest.h>

#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

LifetimeStats Analyze(const Trace& t) {
  LifetimeCollector collector;
  Reconstruct(t, &collector);
  return collector.Take();
}

TEST(Lifetimes, DeathByUnlink) {
  TraceBuilder b;
  b.WholeWrite(10, 11, 1, 50, 1000);
  b.Unlink(40, 50);
  const LifetimeStats s = Analyze(b.Build());
  EXPECT_EQ(s.new_files, 1u);
  EXPECT_EQ(s.observed_deaths, 1u);
  // Born at the create (t=10), died at t=40.
  EXPECT_DOUBLE_EQ(s.by_files.Quantile(1.0), 30.0);
}

TEST(Lifetimes, DeathByRecreate) {
  TraceBuilder b;
  b.WholeWrite(10, 11, 1, 50, 1000);
  b.WholeWrite(190, 191, 2, 50, 1000);  // overwritten 180 s later
  const LifetimeStats s = Analyze(b.Build());
  EXPECT_EQ(s.new_files, 2u);
  EXPECT_EQ(s.observed_deaths, 1u);
  EXPECT_DOUBLE_EQ(s.FileFractionIn(179, 181), 1.0);
}

TEST(Lifetimes, DeathByTruncateToZero) {
  TraceBuilder b;
  b.WholeWrite(10, 11, 1, 50, 1000);
  b.Truncate(25, 50, 0);
  const LifetimeStats s = Analyze(b.Build());
  EXPECT_EQ(s.observed_deaths, 1u);
  EXPECT_DOUBLE_EQ(s.by_files.Quantile(1.0), 15.0);
}

TEST(Lifetimes, PartialTruncateIsNotDeath) {
  TraceBuilder b;
  b.WholeWrite(10, 11, 1, 50, 1000);
  b.Truncate(25, 50, 500);
  const LifetimeStats s = Analyze(b.Build());
  EXPECT_EQ(s.observed_deaths, 0u);
}

TEST(Lifetimes, SurvivorsAreCensored) {
  TraceBuilder b;
  b.WholeWrite(10, 11, 1, 50, 1000);  // never dies within the trace
  const LifetimeStats s = Analyze(b.Build());
  EXPECT_EQ(s.new_files, 1u);
  EXPECT_EQ(s.observed_deaths, 0u);
  EXPECT_TRUE(s.by_files.empty());
}

TEST(Lifetimes, PreexistingFilesNotCounted) {
  // A file never created during the trace: unlinking it is not a measurable
  // lifetime (its birth is unknown).
  TraceBuilder b;
  b.WholeRead(1, 2, 1, 50, 1000);
  b.Unlink(5, 50);
  const LifetimeStats s = Analyze(b.Build());
  EXPECT_EQ(s.new_files, 0u);
  EXPECT_EQ(s.observed_deaths, 0u);
}

TEST(Lifetimes, ByteWeightingUsesBytesWritten) {
  TraceBuilder b;
  b.WholeWrite(10, 11, 1, 50, 10000);  // 10 KB dies at t=20 (life 10)
  b.Unlink(20, 50);
  b.WholeWrite(30, 31, 2, 51, 1000);   // 1 KB dies at t=130 (life 100)
  b.Unlink(130, 51);
  const LifetimeStats s = Analyze(b.Build());
  EXPECT_DOUBLE_EQ(s.by_files.FractionAtOrBelow(10.0), 0.5);
  EXPECT_NEAR(s.by_bytes.FractionAtOrBelow(10.0), 10.0 / 11.0, 1e-9);
}

TEST(Lifetimes, AppendsToNewFileCountTowardItsBytes) {
  TraceBuilder b;
  b.WholeWrite(10, 11, 1, 50, 1000);
  // A later append to the same (still new) file adds 500 bytes.
  b.Open(12, 2, 50, 1000, AccessMode::kWriteOnly, 1, 1000);
  b.Close(13, 2, 50, 1500, 1500);
  b.Unlink(20, 50);
  const LifetimeStats s = Analyze(b.Build());
  EXPECT_DOUBLE_EQ(s.by_bytes.total_weight(), 1500.0);
}

TEST(Lifetimes, ReadsDoNotCountAsBytesWritten) {
  TraceBuilder b;
  b.WholeWrite(10, 11, 1, 50, 1000);
  b.WholeRead(12, 13, 2, 50, 1000);
  b.Unlink(20, 50);
  const LifetimeStats s = Analyze(b.Build());
  EXPECT_DOUBLE_EQ(s.by_bytes.total_weight(), 1000.0);
}

TEST(Lifetimes, FileFractionInWindow) {
  TraceBuilder b;
  b.WholeWrite(0, 1, 1, 50, 100);
  b.Unlink(180, 50);  // lifetime exactly 180
  b.WholeWrite(0, 1, 2, 51, 100);
  b.Unlink(10, 51);   // lifetime 10
  const LifetimeStats s = Analyze(b.Build());
  EXPECT_DOUBLE_EQ(s.FileFractionIn(179, 181), 0.5);
  EXPECT_DOUBLE_EQ(s.FileFractionIn(0, 50), 0.5);
}

}  // namespace
}  // namespace bsdtrace
