// Parallel-analysis parity: Analyze() over a seekable path must reproduce
// the serial streaming engine bit for bit — every counter, CDF sample, and
// Welford accumulator — for hand-built boundary-straddling traces and for
// the three standard generated workloads at 1, 2, and 8 threads.

#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "src/analysis/analyzer.h"
#include "src/analysis/parallel_analyzer.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_source.h"
#include "src/workload/generator.h"
#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Saves as v3 with tiny blocks (many segment boundaries) and returns the
// serial streaming analysis of the same file.
TraceAnalysis SaveAndAnalyzeSerial(const Trace& trace, const std::string& path,
                                   size_t block_target = 256) {
  TraceWriterOptions options;
  options.version = 3;
  options.block_target_bytes = block_target;
  EXPECT_TRUE(SaveTrace(path, trace, options).ok());
  TraceFileSource source(path);
  AnalyzeOptions serial_options;
  serial_options.source = &source;
  auto serial = Analyze(serial_options);
  EXPECT_TRUE(serial.ok()) << serial.status().message();
  EXPECT_EQ(serial.value().mode, AnalyzeMode::kSerial);
  return std::move(serial).value();
}

void ExpectParity(const TraceAnalysis& serial, const std::string& path,
                  unsigned threads) {
  AnalyzeOptions options;
  options.path = path;
  options.threads = threads;
  auto parallel = Analyze(options);
  ASSERT_TRUE(parallel.ok()) << parallel.status().message();
  const TraceAnalysis& p = parallel.value();
  // Spot-check a few fields with readable failure output before the full
  // bitwise comparison.
  EXPECT_EQ(serial.overall.total_records, p.overall.total_records);
  EXPECT_EQ(serial.overall.bytes_transferred, p.overall.bytes_transferred);
  EXPECT_EQ(serial.overall.inter_event_interval_seconds.sample_count(),
            p.overall.inter_event_interval_seconds.sample_count());
  EXPECT_EQ(serial.activity.distinct_users, p.activity.distinct_users);
  EXPECT_EQ(serial.activity.ten_second.intervals, p.activity.ten_second.intervals);
  EXPECT_EQ(serial.activity.ten_second.throughput_per_user.mean(),
            p.activity.ten_second.throughput_per_user.mean());
  EXPECT_EQ(serial.sequentiality.Total().accesses, p.sequentiality.Total().accesses);
  EXPECT_EQ(serial.runs.by_runs.sample_count(), p.runs.by_runs.sample_count());
  EXPECT_EQ(serial.lifetimes.new_files, p.lifetimes.new_files);
  EXPECT_EQ(serial.lifetimes.observed_deaths, p.lifetimes.observed_deaths);
  EXPECT_EQ(serial.lifetimes.by_bytes.total_weight(), p.lifetimes.by_bytes.total_weight());
  EXPECT_TRUE(AnalysisBitIdentical(serial, p)) << "parity broken at " << threads
                                               << " threads";
}

// Every boundary hazard in one trace: opens whose seeks/closes land in later
// blocks, lifetimes straddling blocks (pre-zone bytes, boundary kills,
// marked slots, exit-live incarnations), open-id reuse after a straddling
// close, and genuinely orphan records (no open anywhere).
Trace StraddleTrace() {
  TraceBuilder b;
  // Open 1 straddles: transfers bill in later blocks (writes feed file 500's
  // lifetime, which is created before and unlinked after — pre/slot zones).
  b.Create(1.0, 10, 500, AccessMode::kWriteOnly, 3);
  b.Open(2.0, 1, 500, 0, AccessMode::kWriteOnly, 3);
  for (int i = 0; i < 40; ++i) {
    // Padding records so tiny blocks split between the interesting events.
    b.Execve(3.0 + i * 0.5, 900 + i, 4096, 7);
  }
  b.Seek(25.0, 1, 500, 8192, 0);       // first run: 8 KB written
  b.Close(40.0, 2, 501, 1024, 1024);   // orphan close: 501 never opened
  for (int i = 0; i < 40; ++i) {
    b.Execve(41.0 + i * 0.5, 900 + i, 4096, 7);
  }
  b.Seek(70.0, 1, 500, 4096, 4096);    // second run: 4 KB
  b.Close(90.0, 1, 500, 12288, 12288); // third run: 8 KB; slot gets 20 KB total
  b.Unlink(100.0, 500, 3);             // kills file 500: lifetime 99 s, 20 KB
  // Read-side straddle: whole-file read of 502 across blocks.
  b.Open(110.0, 2, 502, 65536, AccessMode::kReadOnly, 4);
  for (int i = 0; i < 40; ++i) {
    b.Execve(111.0 + i * 0.5, 900 + i, 4096, 7);
  }
  b.Close(140.0, 2, 502, 65536, 65536);
  // Open-id reuse after a straddling close.
  b.Open(150.0, 1, 503, 4096, AccessMode::kReadOnly, 5);
  b.Close(160.0, 1, 503, 4096, 4096);
  // An incarnation that outlives the trace (right-censored) keeps receiving
  // bytes via a straddling write.
  b.Create(170.0, 3, 504, AccessMode::kWriteOnly, 6);
  b.Open(171.0, 4, 504, 0, AccessMode::kWriteOnly, 6);
  for (int i = 0; i < 40; ++i) {
    b.Execve(172.0 + i * 0.4, 900 + i, 4096, 7);
  }
  b.Close(190.0, 4, 504, 2048, 2048);
  // A dangling open (never closed) spanning the remaining blocks.
  b.Open(200.0, 5, 505, 1024, AccessMode::kReadOnly, 8);
  for (int i = 0; i < 20; ++i) {
    b.Unlink(201.0 + i, 950 + i, 9);
  }
  Trace t = b.Build();
  t.header().machine = "straddle";
  return t;
}

TEST(ParallelAnalyzer, StraddleTraceParity) {
  const Trace trace = StraddleTrace();
  const std::string path = TempPath("parallel_straddle.trc");
  const TraceAnalysis serial = SaveAndAnalyzeSerial(trace, path, /*block_target=*/64);
  SeekableTraceSource seekable(path);
  ASSERT_TRUE(seekable.status().ok());
  ASSERT_GT(seekable.index().size(), 8u) << "trace too small to exercise splitting";
  for (unsigned threads : {1u, 2u, 3u, 8u, 32u}) {
    ExpectParity(serial, path, threads);
  }
}

class StandardWorkloadParity : public ::testing::TestWithParam<const char*> {};

TEST_P(StandardWorkloadParity, BitIdenticalAcrossThreadCounts) {
  const MachineProfile profile = std::string(GetParam()) == "A5"   ? ProfileA5()
                                 : std::string(GetParam()) == "E3" ? ProfileE3()
                                                                   : ProfileC4();
  GeneratorOptions options;
  options.duration = Duration::Minutes(45);
  options.seed = 1985;
  const Trace trace = GenerateTraceOnly(profile, options);
  const std::string path = TempPath(std::string("parallel_") + GetParam() + ".trc");
  // 16 KB blocks: plenty of segment boundaries without bloating the file.
  const TraceAnalysis serial = SaveAndAnalyzeSerial(trace, path, 16 * 1024);
  for (unsigned threads : {1u, 2u, 8u}) {
    ExpectParity(serial, path, threads);
  }
}

INSTANTIATE_TEST_SUITE_P(Traces, StandardWorkloadParity,
                         ::testing::Values("A5", "E3", "C4"));

TEST(ParallelAnalyzer, V2FileFallsBackToSerial) {
  const Trace trace = StraddleTrace();
  const std::string path = TempPath("parallel_v2.trc");
  ASSERT_TRUE(SaveTrace(path, trace).ok());
  TraceFileSource source(path);
  AnalyzeOptions serial_options;
  serial_options.source = &source;
  auto serial = Analyze(serial_options);
  ASSERT_TRUE(serial.ok());
  AnalyzeOptions options;
  options.path = path;
  options.threads = 8;
  auto parallel = Analyze(options);
  ASSERT_TRUE(parallel.ok()) << parallel.status().message();
  // No block index: the engine must fall back to — and report — serial.
  EXPECT_EQ(parallel.value().mode, AnalyzeMode::kSerial);
  EXPECT_TRUE(AnalysisBitIdentical(serial.value(), parallel.value()));
}

TEST(ParallelAnalyzer, MissingFileIsAnError) {
  AnalyzeOptions options;
  options.path = TempPath("does_not_exist.trc");
  options.threads = 4;
  auto result = Analyze(options);
  EXPECT_FALSE(result.ok());
}

TEST(ParallelAnalyzer, CorruptBlockSurfacesThroughWorkers) {
  const Trace trace = StraddleTrace();
  const std::string path = TempPath("parallel_corrupt.trc");
  TraceWriterOptions options;
  options.version = 3;
  options.block_target_bytes = 64;
  ASSERT_TRUE(SaveTrace(path, trace, options).ok());
  // Flip a byte inside some middle block's payload.
  SeekableTraceSource seekable(path);
  ASSERT_TRUE(seekable.status().ok());
  ASSERT_GT(seekable.index().size(), 4u);
  const uint64_t victim = seekable.index()[seekable.index().size() / 2].offset + 8;
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(victim), SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, static_cast<long>(victim), SEEK_SET), 0);
    std::fputc(c ^ 0x20, f);
    std::fclose(f);
  }
  AnalyzeOptions analyze_options;
  analyze_options.path = path;
  analyze_options.threads = 8;
  auto result = Analyze(analyze_options);
  EXPECT_FALSE(result.ok());
}

// -- Segment carving ----------------------------------------------------------

std::vector<TraceBlockIndexEntry> UniformIndex(size_t blocks, uint64_t records_each) {
  std::vector<TraceBlockIndexEntry> index(blocks);
  for (size_t i = 0; i < blocks; ++i) {
    index[i] = {.offset = i * 1000, .record_count = records_each};
  }
  return index;
}

void ExpectPartition(const std::vector<std::pair<size_t, size_t>>& ranges, size_t blocks) {
  size_t next = 0;
  for (const auto& [first, count] : ranges) {
    EXPECT_EQ(first, next);
    EXPECT_GT(count, 0u) << "empty segment";
    next = first + count;
  }
  EXPECT_EQ(next, blocks) << "segments do not cover the index";
}

TEST(CarveIndex, EmptyIndexYieldsNoRanges) {
  EXPECT_TRUE(internal::CarveIndex({}, 8, 8192).empty());
}

TEST(CarveIndex, TinyBlocksCoalesceIntoOneSegment) {
  // 100 blocks of 10 records: far below min_records even in aggregate, so
  // the carve must refuse to fan out (the caller then runs serially).
  const auto ranges = internal::CarveIndex(UniformIndex(100, 10), 8, 8192);
  ASSERT_EQ(ranges.size(), 1u);
  ExpectPartition(ranges, 100);
}

TEST(CarveIndex, SegmentCountIsBoundedByRecordsOverMin) {
  // 40 blocks x 1000 records = 40k records; min 8192 allows at most 4
  // segments even with 8 threads — and every segment clears the minimum.
  const auto index = UniformIndex(40, 1000);
  const auto ranges = internal::CarveIndex(index, 8, 8192);
  ASSERT_EQ(ranges.size(), 4u);
  ExpectPartition(ranges, index.size());
  for (const auto& [first, count] : ranges) {
    uint64_t records = 0;
    for (size_t b = first; b < first + count; ++b) {
      records += index[b].record_count;
    }
    EXPECT_GE(records, 8192u);
  }
}

TEST(CarveIndex, ZeroMinDisablesCoalescing) {
  const auto ranges = internal::CarveIndex(UniformIndex(16, 1), 4, 0);
  ASSERT_EQ(ranges.size(), 4u);
  ExpectPartition(ranges, 16);
}

TEST(CarveIndex, UnevenBlocksStillPartition) {
  std::vector<TraceBlockIndexEntry> index;
  for (uint64_t i = 0; i < 30; ++i) {
    index.push_back({.offset = i * 100, .record_count = (i % 7 == 0) ? 20'000u : 3u});
  }
  for (const unsigned threads : {2u, 4u, 8u, 16u}) {
    const auto ranges = internal::CarveIndex(index, threads, 8192);
    ASSERT_FALSE(ranges.empty());
    EXPECT_LE(ranges.size(), threads);
    ExpectPartition(ranges, index.size());
  }
}

}  // namespace
}  // namespace bsdtrace
