#include "src/analysis/working_set.h"

#include <gtest/gtest.h>

#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

// Reads one 4 KB block of `file` at time t.
void Touch(TraceBuilder& b, OpenId oid, double t, FileId file) {
  b.WholeRead(t, t, oid, file, 4096);
}

TEST(WorkingSet, SingleBlockForever) {
  TraceBuilder b;
  for (int i = 0; i < 10; ++i) {
    Touch(b, static_cast<OpenId>(i + 1), i * 1.0, 7);
  }
  const WorkingSetStats stats =
      AnalyzeWorkingSets(b.Build(), {Duration::Seconds(5), Duration::Seconds(100)});
  for (const WorkingSetPoint& p : stats.points) {
    EXPECT_EQ(p.peak_blocks, 1u);
    EXPECT_NEAR(p.average_blocks, 1.0, 0.01);
  }
}

TEST(WorkingSet, WindowBoundsTheSet) {
  // A new block every second: a 3 s window holds ~3-4 blocks, a 100 s window
  // holds them all.
  TraceBuilder b;
  for (int i = 0; i < 50; ++i) {
    Touch(b, static_cast<OpenId>(i + 1), i * 1.0, static_cast<FileId>(100 + i));
  }
  const WorkingSetStats stats =
      AnalyzeWorkingSets(b.Build(), {Duration::Seconds(3), Duration::Seconds(100)});
  EXPECT_LE(stats.points[0].peak_blocks, 5u);
  EXPECT_GE(stats.points[0].peak_blocks, 3u);
  EXPECT_EQ(stats.points[1].peak_blocks, 50u);
}

TEST(WorkingSet, AverageGrowsWithWindow) {
  TraceBuilder b;
  for (int i = 0; i < 200; ++i) {
    Touch(b, static_cast<OpenId>(i + 1), i * 0.5, static_cast<FileId>(100 + i % 30));
  }
  const WorkingSetStats stats = AnalyzeWorkingSets(
      b.Build(), {Duration::Seconds(1), Duration::Seconds(10), Duration::Seconds(60)});
  EXPECT_LT(stats.points[0].average_blocks, stats.points[1].average_blocks);
  EXPECT_LE(stats.points[1].average_blocks, stats.points[2].average_blocks);
  // The 30-file loop bounds every window's working set.
  EXPECT_LE(stats.points[2].peak_blocks, 30u);
}

TEST(WorkingSet, ReaccessKeepsBlockAlive) {
  // Block A touched every second; block B only once at t=0.  In a 2 s window
  // B expires but A persists.
  TraceBuilder b;
  Touch(b, 1, 0.0, 500);  // B
  for (int i = 0; i < 20; ++i) {
    Touch(b, static_cast<OpenId>(i + 2), i * 1.0, 7);  // A
  }
  const WorkingSetStats stats = AnalyzeWorkingSets(b.Build(), {Duration::Seconds(2)});
  EXPECT_EQ(stats.points[0].peak_blocks, 2u);
  // Long-run average near 1 (B leaves quickly).
  EXPECT_LT(stats.points[0].average_blocks, 1.5);
}

TEST(WorkingSet, MultiBlockTransfersCounted) {
  TraceBuilder b;
  b.WholeRead(1, 1, 1, 9, 4096 * 6);  // six blocks at once
  const WorkingSetStats stats = AnalyzeWorkingSets(b.Build(), {Duration::Seconds(10)});
  EXPECT_EQ(stats.points[0].peak_blocks, 6u);
}

TEST(WorkingSet, EmptyTrace) {
  const WorkingSetStats stats = AnalyzeWorkingSets(Trace{}, {Duration::Seconds(10)});
  EXPECT_EQ(stats.points[0].peak_blocks, 0u);
  EXPECT_EQ(stats.points[0].average_blocks, 0.0);
}

}  // namespace
}  // namespace bsdtrace
