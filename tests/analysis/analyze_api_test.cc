// The Analyze() front door: input validation, engine dispatch, effective-mode
// reporting, and the opt-in Table I band check.

#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "src/analysis/analyzer.h"
#include "src/analysis/parallel_analyzer.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_source.h"
#include "src/workload/fleet.h"
#include "src/workload/generator.h"
#include "src/workload/sharded_generator.h"
#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Trace SmallTrace() {
  TraceBuilder b;
  double t = 1;
  for (OpenId oid = 1; oid <= 50; ++oid) {
    b.WholeRead(t, t + 0.5, oid, 100 + oid, 1024 * oid, 1 + oid % 4);
    t += 1;
  }
  return b.Build();
}

TEST(AnalyzeApi, NoInputIsAnError) {
  auto result = Analyze(AnalyzeOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("no input"), std::string::npos);
}

TEST(AnalyzeApi, AmbiguousInputIsAnError) {
  const Trace trace = SmallTrace();
  TraceVectorSource source(trace);
  AnalyzeOptions options;
  options.trace = &trace;
  options.source = &source;
  auto result = Analyze(options);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("ambiguous"), std::string::npos);
}

TEST(AnalyzeApi, ModeNamesAreStable) {
  EXPECT_STREQ(AnalyzeModeName(AnalyzeMode::kSerial), "serial");
  EXPECT_STREQ(AnalyzeModeName(AnalyzeMode::kParallel), "parallel");
  EXPECT_STREQ(AnalyzeModeName(AnalyzeMode::kLive), "live");
}

TEST(AnalyzeApi, InMemoryTraceReportsSerial) {
  const Trace trace = SmallTrace();
  AnalyzeOptions options;
  options.trace = &trace;
  auto result = Analyze(options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().mode, AnalyzeMode::kSerial);
  EXPECT_EQ(result.value().threads_used, 1u);
  EXPECT_EQ(result.value().segments_used, 1u);
}

TEST(AnalyzeApi, StreamingSourceReportsSerial) {
  const Trace trace = SmallTrace();
  TraceVectorSource source(trace);
  AnalyzeOptions options;
  options.source = &source;
  // threads is ignored for a non-seekable source — and the result says so.
  options.threads = 8;
  auto result = Analyze(options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().mode, AnalyzeMode::kSerial);
  EXPECT_EQ(result.value().threads_used, 1u);
}

TEST(AnalyzeApi, IndexedFileReportsParallelAndMatchesSerial) {
  // A generated trace big enough to clear the per-segment minimum twice.
  GeneratorOptions gen;
  gen.duration = Duration::Hours(4);
  gen.seed = 99;
  const Trace trace = GenerateTraceOnly(ProfileA5(), gen);
  const std::string path = TempPath("analyze_api_parallel.trc");
  TraceWriterOptions writer;
  writer.version = 3;
  writer.block_target_bytes = 4096;
  ASSERT_TRUE(SaveTrace(path, trace, writer).ok());

  AnalyzeOptions serial_options;
  serial_options.path = path;
  serial_options.threads = 1;
  auto serial = Analyze(serial_options);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(serial.value().mode, AnalyzeMode::kSerial);

  AnalyzeOptions parallel_options;
  parallel_options.path = path;
  parallel_options.threads = 4;
  auto parallel = Analyze(parallel_options);
  ASSERT_TRUE(parallel.ok());
  if (trace.size() >= 2 * 8192) {
    EXPECT_EQ(parallel.value().mode, AnalyzeMode::kParallel);
    EXPECT_GE(parallel.value().threads_used, 2u);
    EXPECT_GE(parallel.value().segments_used, 2u);
  }
  EXPECT_TRUE(AnalysisBitIdentical(serial.value(), parallel.value()));

  // A caller-owned seekable source dispatches to the same engine.
  SeekableTraceSource seekable(path);
  ASSERT_TRUE(seekable.status().ok());
  AnalyzeOptions seekable_options;
  seekable_options.seekable = &seekable;
  seekable_options.threads = 4;
  auto via_seekable = Analyze(seekable_options);
  ASSERT_TRUE(via_seekable.ok());
  EXPECT_EQ(via_seekable.value().mode, parallel.value().mode);
  EXPECT_TRUE(AnalysisBitIdentical(parallel.value(), via_seekable.value()));
}

TEST(AnalyzeApi, SnapshotIntervalReportsLive) {
  const Trace trace = SmallTrace();
  AnalyzeOptions options;
  options.trace = &trace;
  options.snapshot_interval = Duration::Minutes(1);
  auto live = Analyze(options);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live.value().mode, AnalyzeMode::kLive);

  AnalyzeOptions batch_options;
  batch_options.trace = &trace;
  auto batch = Analyze(batch_options);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(AnalysisBitIdentical(live.value(), batch.value()));
}

TEST(AnalyzeApi, CheckBandsFillsVerdictsForFleetTraces) {
  auto fleet = ParseFleetSpec("A5");
  ASSERT_TRUE(fleet.ok());
  FleetGeneratorOptions gen;
  gen.base.duration = Duration::Hours(1);
  gen.base.seed = 1234;
  gen.shards_per_machine = 2;
  gen.threads = 2;
  const std::string path = TempPath("analyze_api_bands.trc");
  ASSERT_TRUE(GenerateFleetToFile(fleet.value(), gen, path).ok());

  AnalyzeOptions options;
  options.path = path;
  options.threads = 2;
  options.check_bands = true;
  auto result = Analyze(options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().band_checks.size(), 1u);
  EXPECT_EQ(result.value().band_checks[0].trace_name, "A5");

  // Without the opt-in the verdict list stays empty.
  options.check_bands = false;
  auto unchecked = Analyze(options);
  ASSERT_TRUE(unchecked.ok());
  EXPECT_TRUE(unchecked.value().band_checks.empty());
  EXPECT_TRUE(unchecked.value().bands_ok());
}

}  // namespace
}  // namespace bsdtrace
