// Table I per-user activity: attribution of records/bytes to the opening
// user, exact segment merging (serial/parallel parity), and the property
// tests pinning the activity bands at paper scale and at 1000+ users.

#include "src/analysis/per_user_activity.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/analyzer.h"
#include "src/analysis/parallel_analyzer.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_source.h"
#include "src/workload/fleet.h"
#include "src/workload/sharded_generator.h"
#include "tests/testing/analyze_helpers.h"
#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

// -- Attribution --------------------------------------------------------------

// Close and seek records carry user id 0 in the trace; the collector must
// bill them — and the reconstructed bytes — to the user who opened the file.
TEST(PerUserActivity, AttributesClosesSeeksAndBytesToOpeningUser) {
  TraceBuilder b;
  b.Open(1.0, /*oid=*/1, /*file=*/100, /*size=*/4096, AccessMode::kReadOnly, /*user=*/7);
  b.Seek(2.0, /*oid=*/1, /*file=*/100, /*from=*/2048, /*to=*/0);
  b.Close(3.0, /*oid=*/1, /*file=*/100, /*final_position=*/1024, /*size_at_close=*/4096);
  b.WholeWrite(4.0, 5.0, /*oid=*/2, /*file=*/101, /*size=*/2048, /*user=*/9);
  b.Execve(6.0, /*file=*/102, /*size=*/512, /*user=*/7);
  const TraceAnalysis analysis = AnalyzeForTest(b.Build());
  const PerUserActivityStats& per_user = analysis.per_user;

  ASSERT_EQ(per_user.users.size(), 2u);
  // User 7: open + seek + close + execve, with read bytes from both runs.
  EXPECT_EQ(per_user.users.at(7).records, 4u);
  EXPECT_GT(per_user.users.at(7).bytes, 0u);
  // User 9: create + close, writing the whole 2 KB file.
  EXPECT_EQ(per_user.users.at(9).records, 2u);
  EXPECT_EQ(per_user.users.at(9).bytes, 2048u);
  EXPECT_EQ(per_user.total_records, 6u);
  EXPECT_EQ(per_user.total_bytes,
            per_user.users.at(7).bytes + per_user.users.at(9).bytes);
}

// -- Segment algebra ----------------------------------------------------------

TEST(PerUserSegment, MergeMatchesSingleAccumulation) {
  PerUserSegment whole, left, right;
  const struct {
    double t;
    UserId user;
    uint64_t records, bytes;
  } touches[] = {
      {10.0, 2, 1, 0},   {20.0, 3, 1, 512},    {86410.0, 2, 1, 128},
      {86420.0, 4, 2, 0}, {172830.0, 3, 1, 64},
  };
  int i = 0;
  for (const auto& e : touches) {
    whole.Touch(SimTime::FromSeconds(e.t), e.user, e.records, e.bytes);
    (i++ % 2 == 0 ? left : right).Touch(SimTime::FromSeconds(e.t), e.user, e.records, e.bytes);
  }
  left.Merge(right);
  EXPECT_EQ(left.users, whole.users);
  EXPECT_EQ(left.daily_active, whole.daily_active);
  EXPECT_EQ(left.last_time, whole.last_time);

  const PerUserActivityStats a = left.Finalize();
  const PerUserActivityStats b = whole.Finalize();
  EXPECT_EQ(a.users, b.users);
  EXPECT_EQ(a.total_records, b.total_records);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.days, b.days);
  EXPECT_EQ(a.records_per_user_day.count(), b.records_per_user_day.count());
  EXPECT_EQ(a.records_per_user_day.mean(), b.records_per_user_day.mean());
  EXPECT_EQ(a.active_users_per_day.count(), b.active_users_per_day.count());
  EXPECT_EQ(a.active_users_per_day.sum(), b.active_users_per_day.sum());
}

// Days with no activity between the first and last touched day are counted
// as zero-active days, not skipped.
TEST(PerUserSegment, QuietDaysCountAsZeroActive) {
  PerUserSegment segment;
  segment.Touch(SimTime::FromSeconds(100.0), 5, 1, 0);               // day 0
  segment.Touch(SimTime::FromSeconds(3 * 86400.0 + 100.0), 5, 1, 0);  // day 3
  const PerUserActivityStats stats = segment.Finalize();
  EXPECT_EQ(stats.active_users_per_day.count(), 4);  // days 0..3
  EXPECT_EQ(stats.active_users_per_day.sum(), 2.0);
  EXPECT_EQ(stats.active_users_per_day.min(), 0.0);
  EXPECT_EQ(stats.active_users_per_day.max(), 1.0);
}

// -- Serial vs parallel parity on a fleet trace -------------------------------

TEST(PerUserActivity, FleetSerialAndParallelAnalysesBitIdentical) {
  auto fleet = ParseFleetSpec("2xA5+E3");
  ASSERT_TRUE(fleet.ok()) << fleet.status().message();
  FleetGeneratorOptions options;
  options.base.duration = Duration::Minutes(40);
  options.base.seed = 777;
  options.shards_per_machine = 2;
  options.threads = 2;
  auto generated = GenerateFleetTrace(fleet.value(), options);
  ASSERT_TRUE(generated.ok()) << generated.status().message();

  // Tiny blocks force many parallel segment boundaries.
  const std::string path = ::testing::TempDir() + "/per_user_fleet.trc";
  TraceWriterOptions writer;
  writer.version = 3;
  writer.block_target_bytes = 4096;
  ASSERT_TRUE(SaveTrace(path, generated.value().trace, writer).ok());

  TraceFileSource source(path);
  AnalyzeOptions serial_options;
  serial_options.source = &source;
  auto serial = Analyze(serial_options);
  ASSERT_TRUE(serial.ok()) << serial.status().message();
  // A 40-minute trace sees only a handful of logins per machine, but each
  // instance's daemon pseudo-users plus at least a few humans show up.
  EXPECT_GT(serial.value().per_user.users.size(), 4u);
  for (unsigned threads : {2u, 8u}) {
    AnalyzeOptions parallel_options;
    parallel_options.path = path;
    parallel_options.threads = threads;
    auto parallel = Analyze(parallel_options);
    ASSERT_TRUE(parallel.ok()) << parallel.status().message();
    EXPECT_EQ(serial.value().per_user.total_records,
              parallel.value().per_user.total_records);
    EXPECT_TRUE(AnalysisBitIdentical(serial.value(), parallel.value()))
        << "per-user parity broken at " << threads << " threads";
  }
}

// -- Band validation ----------------------------------------------------------

TEST(TableIBandCheck, FlagsOutOfBandRatesAndIgnoresDaemonUsers) {
  TraceHeader header;
  header.description = AppendFleetTag(
      "t", {{.trace_name = "A5", .user_base = 0, .user_population = 10}});
  PerUserActivityStats stats;
  stats.duration = Duration::Hours(24);
  stats.days = 1.0;
  // Daemon pseudo-users (ids 0 and 1) are wildly active but must not count.
  stats.users[0] = {.records = 1000000, .bytes = 0};
  stats.users[1] = {.records = 1000000, .bytes = 0};
  for (UserId u = 2; u < 12; ++u) {
    stats.users[u] = {.records = 10, .bytes = 0};  // 10 records/user/day
  }
  const std::vector<ActivityBandCheck> checks = CheckActivityBands(header, stats);
  ASSERT_EQ(checks.size(), 1u);
  EXPECT_EQ(checks[0].trace_name, "A5");
  EXPECT_NEAR(checks[0].records_per_user_day, 10.0, 1e-9);
  EXPECT_FALSE(checks[0].ok) << "a starved machine must trip the band";
}

TEST(TableIBandCheck, UntaggedOrTooShortTracesYieldNoChecks) {
  PerUserActivityStats stats;
  stats.days = 1.0;
  TraceHeader untagged;
  untagged.description = "synthetic A5 trace";
  EXPECT_TRUE(CheckActivityBands(untagged, stats).empty());

  TraceHeader tagged;
  tagged.description = AppendFleetTag(
      "t", {{.trace_name = "A5", .user_base = 0, .user_population = 90}});
  PerUserActivityStats blip;
  blip.days = 1.0 / (24.0 * 60.0);  // one simulated minute
  EXPECT_TRUE(CheckActivityBands(tagged, blip).empty());
}

// The satellite property test: each paper profile stays inside its
// calibrated Table I band both at the paper's population and when scaled to
// 1000 users — per-user activity is scale-invariant by construction.
TEST(TableIBandProperty, HoldsAtPaperScaleAndAtThousandUsers) {
  for (const char* name : {"A5", "E3", "C4"}) {
    for (int users : {0, 1000}) {
      auto fleet = ParseFleetSpec(name, users);
      ASSERT_TRUE(fleet.ok()) << fleet.status().message();
      FleetGeneratorOptions options;
      options.base.duration = Duration::Hours(6);
      options.base.seed = 20260806;
      options.shards_per_machine = 4;
      options.threads = 2;
      auto result = GenerateFleetTrace(fleet.value(), options);
      ASSERT_TRUE(result.ok()) << result.status().message();
      const TraceAnalysis analysis = AnalyzeForTest(result.value().trace);
      const std::vector<ActivityBandCheck> checks =
          CheckActivityBands(result.value().trace.header(), analysis.per_user);
      ASSERT_EQ(checks.size(), 1u) << name;
      EXPECT_EQ(checks[0].trace_name, name);
      if (users > 0) {
        EXPECT_EQ(checks[0].user_population, users);
      }
      EXPECT_TRUE(checks[0].ok)
          << name << " at users=" << users << ": " << checks[0].records_per_user_day
          << " records/user/day outside [" << checks[0].band.min_records_per_user_day
          << ", " << checks[0].band.max_records_per_user_day << "]";
    }
  }
}

}  // namespace
}  // namespace bsdtrace
