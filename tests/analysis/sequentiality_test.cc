#include "src/analysis/sequentiality.h"

#include <gtest/gtest.h>

#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

SequentialityStats Analyze(const Trace& t) {
  SequentialityCollector collector;
  Reconstruct(t, &collector);
  return collector.Take();
}

TEST(Sequentiality, WholeFileReadCounted) {
  const SequentialityStats s = Analyze(TraceBuilder().WholeRead(1, 2, 1, 10, 4096).Build());
  const ModeSequentiality& ro = s.Mode(AccessMode::kReadOnly);
  EXPECT_EQ(ro.accesses, 1u);
  EXPECT_EQ(ro.whole_file, 1u);
  EXPECT_EQ(ro.sequential, 1u);
  EXPECT_EQ(ro.bytes, 4096u);
  EXPECT_DOUBLE_EQ(ro.WholeFileFraction(), 1.0);
}

TEST(Sequentiality, ModesSeparated) {
  TraceBuilder b;
  b.WholeRead(1, 2, 1, 10, 100);
  b.WholeWrite(3, 4, 2, 11, 200);
  b.Open(5, 3, 12, 1000, AccessMode::kReadWrite);
  b.Close(6, 3, 12, 500, 1000);
  const SequentialityStats s = Analyze(b.Build());
  EXPECT_EQ(s.Mode(AccessMode::kReadOnly).accesses, 1u);
  EXPECT_EQ(s.Mode(AccessMode::kWriteOnly).accesses, 1u);
  EXPECT_EQ(s.Mode(AccessMode::kReadWrite).accesses, 1u);
  EXPECT_EQ(s.Total().accesses, 3u);
}

TEST(Sequentiality, AppendIsSequentialNotWhole) {
  TraceBuilder b;
  b.Open(1, 1, 10, 1000, AccessMode::kWriteOnly);
  b.Seek(2, 1, 10, 0, 1000);
  b.Close(3, 1, 10, 1500, 1500);
  const SequentialityStats s = Analyze(b.Build());
  const ModeSequentiality& wo = s.Mode(AccessMode::kWriteOnly);
  EXPECT_EQ(wo.sequential, 1u);
  EXPECT_EQ(wo.whole_file, 0u);
  EXPECT_EQ(wo.sequential_bytes, 500u);
  EXPECT_EQ(wo.whole_file_bytes, 0u);
}

TEST(Sequentiality, NonSequentialMultiSeek) {
  TraceBuilder b;
  b.Open(1, 1, 10, 100000, AccessMode::kReadOnly);
  b.Seek(2, 1, 10, 1000, 50000);
  b.Seek(3, 1, 10, 51000, 90000);
  b.Close(4, 1, 10, 91000, 100000);
  const SequentialityStats s = Analyze(b.Build());
  const ModeSequentiality& ro = s.Mode(AccessMode::kReadOnly);
  EXPECT_EQ(ro.sequential, 0u);
  EXPECT_EQ(ro.bytes, 3000u);
}

TEST(Sequentiality, ByteFractions) {
  TraceBuilder b;
  b.WholeRead(1, 2, 1, 10, 750);  // whole & sequential
  b.Open(3, 2, 11, 1000, AccessMode::kReadOnly);
  b.Seek(4, 2, 11, 100, 500);  // transferred before seek: non-sequential
  b.Close(5, 2, 11, 650, 1000);
  const SequentialityStats s = Analyze(b.Build());
  // Total bytes 750 + (100 + 150) = 1000; whole-file bytes 750.
  EXPECT_DOUBLE_EQ(s.WholeFileByteFraction(), 0.75);
  EXPECT_DOUBLE_EQ(s.SequentialByteFraction(), 0.75);
}

TEST(Sequentiality, EmptyStats) {
  const SequentialityStats s = Analyze(Trace{});
  EXPECT_EQ(s.Total().accesses, 0u);
  EXPECT_EQ(s.WholeFileByteFraction(), 0.0);
  EXPECT_EQ(s.Mode(AccessMode::kReadOnly).SequentialFraction(), 0.0);
}

}  // namespace
}  // namespace bsdtrace
