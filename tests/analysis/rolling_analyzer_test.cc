// The live pipeline's correctness gate: every snapshot a RollingAnalyzer
// publishes must be bit-identical to a batch Analyze() of exactly the
// records before that boundary, and the final result bit-identical to the
// batch analysis of the whole stream — for hand-built boundary hazards and
// for the three standard generated workloads, fed directly and through a
// TraceRing.

#include "src/analysis/rolling_analyzer.h"

#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/parallel_analyzer.h"
#include "src/trace/trace_ring.h"
#include "src/workload/generator.h"
#include "tests/testing/analyze_helpers.h"
#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

// Records strictly before `boundary`, batch-analyzed.
TraceAnalysis BatchPrefix(const Trace& trace, SimTime boundary) {
  Trace prefix(trace.header());
  for (const TraceRecord& r : trace.records()) {
    if (r.time < boundary) {
      prefix.Append(r);
    }
  }
  return AnalyzeForTest(prefix);
}

struct PublishedSnapshot {
  TraceAnalysis analysis;
  SimTime boundary;
};

// Feeds the trace through a RollingAnalyzer and checks the gate at every
// published boundary plus the final result.  Returns the snapshot count.
uint64_t ExpectRollingMatchesBatch(const Trace& trace, Duration interval) {
  std::vector<PublishedSnapshot> published;
  RollingAnalyzer rolling(interval, [&](const TraceAnalysis& snapshot, SimTime boundary) {
    published.push_back({snapshot, boundary});
  });
  for (const TraceRecord& r : trace.records()) {
    rolling.Process(r);
  }
  const TraceAnalysis final_analysis = rolling.Finish();

  EXPECT_EQ(rolling.records_processed(), trace.size());
  EXPECT_EQ(rolling.snapshots_published(), published.size());
  for (const PublishedSnapshot& s : published) {
    EXPECT_EQ(s.analysis.mode, AnalyzeMode::kLive);
    EXPECT_TRUE(AnalysisBitIdentical(s.analysis, BatchPrefix(trace, s.boundary)))
        << "snapshot at +" << (s.boundary - SimTime::Origin()).hours()
        << "h diverges from the batch analysis of its prefix";
  }
  EXPECT_EQ(final_analysis.mode, AnalyzeMode::kLive);
  EXPECT_TRUE(AnalysisBitIdentical(final_analysis, AnalyzeForTest(trace)))
      << "final rolling analysis diverges from batch";
  return published.size();
}

// Every cross-boundary hazard: opens outliving several intervals, lifetime
// zones straddling boundaries, orphan closes, dangling opens, and an idle
// stretch long enough to publish the same prefix repeatedly.
TEST(RollingAnalyzer, BoundaryHazardsMatchBatchAtEverySnapshot) {
  TraceBuilder b;
  b.Create(10.0, 1, 500, AccessMode::kWriteOnly, 3);
  b.Open(20.0, 2, 500, 0, AccessMode::kWriteOnly, 3);
  // The open lives across the 1-minute boundaries at 60/120/180 s.
  b.Seek(70.0, 2, 500, 8192, 0);
  b.Seek(130.0, 2, 500, 4096, 4096);
  b.Close(190.0, 2, 500, 12288, 12288);
  b.Unlink(200.0, 500, 3);
  b.Close(205.0, 9, 777, 512, 512);  // orphan: 777 was never opened
  b.WholeRead(210.0, 215.0, 3, 501, 65536, 4);
  // Idle from 215 s to 560 s: boundaries at 240..540 s republish the prefix.
  b.Open(560.0, 4, 502, 1024, AccessMode::kReadOnly, 5);  // dangling open
  b.Execve(570.0, 503, 4096, 5);
  const Trace trace = b.Build();

  const uint64_t snapshots = ExpectRollingMatchesBatch(trace, Duration::Minutes(1));
  // 570 s of records over 60 s intervals: boundaries at 60..540 s inclusive.
  EXPECT_EQ(snapshots, 9u);
}

TEST(RollingAnalyzer, EmptyStreamFinishesClean) {
  RollingAnalyzer rolling(Duration::Hours(1));
  const TraceAnalysis a = rolling.Finish();
  EXPECT_EQ(a.overall.total_records, 0u);
  EXPECT_EQ(rolling.snapshots_published(), 0u);
  EXPECT_EQ(a.mode, AnalyzeMode::kLive);
}

class RollingWorkloadParity : public ::testing::TestWithParam<const char*> {};

TEST_P(RollingWorkloadParity, HourlySnapshotsBitIdenticalToBatchPrefix) {
  const MachineProfile profile = std::string(GetParam()) == "A5"   ? ProfileA5()
                                 : std::string(GetParam()) == "E3" ? ProfileE3()
                                                                   : ProfileC4();
  GeneratorOptions options;
  options.duration = Duration::Hours(3);
  options.seed = 1985;
  const Trace trace = GenerateTraceOnly(profile, options);

  const uint64_t snapshots = ExpectRollingMatchesBatch(trace, Duration::Hours(1));
  EXPECT_GE(snapshots, 2u) << "trace too short to cross two hourly boundaries";
}

INSTANTIATE_TEST_SUITE_P(Traces, RollingWorkloadParity,
                         ::testing::Values("A5", "E3", "C4"));

// The full live wiring: a producer thread pushes the trace into a TraceRing
// and RollingAnalyze drains the ring's source face.  Same result as batch,
// nothing dropped.
TEST(RollingAnalyzer, RingFedStreamMatchesBatch) {
  GeneratorOptions options;
  options.duration = Duration::Hours(2);
  options.seed = 424242;
  const Trace trace = GenerateTraceOnly(ProfileA5(), options);

  TraceRingOptions ring_options;
  ring_options.capacity = 64;  // small: force producer/consumer interleaving
  TraceRing ring(trace.header(), ring_options);

  std::thread producer([&]() {
    RingTraceSink sink(&ring);
    for (const TraceRecord& r : trace.records()) {
      sink.Append(r);
    }
    ring.Close();
  });

  RingTraceSource source(&ring);
  uint64_t snapshots = 0;
  auto result = RollingAnalyze(source, Duration::Minutes(30),
                               [&](const TraceAnalysis&, SimTime) { ++snapshots; });
  producer.join();

  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_TRUE(AnalysisBitIdentical(result.value(), AnalyzeForTest(trace)));
  EXPECT_EQ(snapshots, 3u);  // boundaries at 0:30, 1:00, 1:30
  EXPECT_EQ(ring.stats().dropped(), 0u);
  EXPECT_EQ(ring.stats().produced, trace.size());
}

// Analyze() exposes the same pipeline behind snapshot_interval/on_snapshot.
TEST(RollingAnalyzer, AnalyzeFrontDoorPublishesSnapshots) {
  GeneratorOptions options;
  options.duration = Duration::Hours(2);
  options.seed = 7;
  const Trace trace = GenerateTraceOnly(ProfileE3(), options);

  std::vector<PublishedSnapshot> published;
  AnalyzeOptions analyze_options;
  analyze_options.trace = &trace;
  analyze_options.snapshot_interval = Duration::Hours(1);
  analyze_options.on_snapshot = [&](const TraceAnalysis& snapshot, SimTime boundary) {
    published.push_back({snapshot, boundary});
  };
  auto result = Analyze(analyze_options);
  ASSERT_TRUE(result.ok()) << result.status().message();

  EXPECT_EQ(result.value().mode, AnalyzeMode::kLive);
  ASSERT_EQ(published.size(), 1u);  // one interior boundary at 1:00
  EXPECT_TRUE(AnalysisBitIdentical(published[0].analysis,
                                   BatchPrefix(trace, published[0].boundary)));
  EXPECT_TRUE(AnalysisBitIdentical(result.value(), AnalyzeForTest(trace)));
}

}  // namespace
}  // namespace bsdtrace
