#include "src/analysis/activity.h"

#include <gtest/gtest.h>

#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

ActivityStats Analyze(const Trace& t) {
  ActivityCollector collector;
  Reconstruct(t, &collector);
  return collector.Take();
}

TEST(ActivityStats, DistinctUsersCounted) {
  const Trace t = TraceBuilder()
                      .WholeRead(1, 2, 1, 10, 100, 5)
                      .WholeRead(3, 4, 2, 10, 100, 6)
                      .WholeRead(5, 6, 3, 10, 100, 5)
                      .Build();
  EXPECT_EQ(Analyze(t).distinct_users, 2u);
}

TEST(ActivityStats, AverageThroughputOverLife) {
  // 1000 bytes over 10 seconds of trace.
  const Trace t = TraceBuilder().WholeRead(1, 2, 1, 10, 1000).Unlink(10, 99).Build();
  EXPECT_DOUBLE_EQ(Analyze(t).average_throughput, 100.0);
}

TEST(ActivityStats, TenSecondIntervalsSeparateUsers) {
  // Users 1 and 2 active in the first 10-second interval; only user 1 later.
  const Trace t = TraceBuilder()
                      .WholeRead(1, 2, 1, 10, 500, 1)
                      .WholeRead(3, 4, 2, 11, 500, 2)
                      .WholeRead(15, 16, 3, 10, 500, 1)
                      .Unlink(30, 99, 3)
                      .Build();
  const ActivityStats s = Analyze(t);
  EXPECT_EQ(s.ten_second.max_active_users, 2);
  EXPECT_GE(s.ten_second.intervals, 3u);
}

TEST(ActivityStats, CloseAttributedToOpeningUser) {
  // The close record carries no user id; activity must come from the open's.
  TraceBuilder b;
  b.Open(1, 1, 10, 1000, AccessMode::kReadOnly, 42);
  b.Close(15, 1, 10, 1000, 1000);  // next 10-s interval; bytes billed here
  const ActivityStats s = Analyze(b.Build());
  // User 42 is active in both intervals (open event, then close+transfer).
  EXPECT_EQ(s.distinct_users, 1u);
  EXPECT_EQ(s.ten_second.max_active_users, 1);
  EXPECT_GT(s.ten_second.throughput_per_user.max(), 0.0);
}

TEST(ActivityStats, EmptyIntervalsCountZeroActive) {
  // Activity at t=1 and t=25 (10-s intervals 0 and 2); interval 1 is empty.
  const Trace t = TraceBuilder().Unlink(1, 5, 1).Unlink(25, 6, 1).Build();
  const ActivityStats s = Analyze(t);
  EXPECT_GE(s.ten_second.intervals, 2u);
  EXPECT_EQ(s.ten_second.active_users.min(), 0.0);
}

TEST(ActivityStats, ThroughputPerUserUsesIntervalLength) {
  // 2000 bytes in one 10-second interval => 200 B/s for that user.
  const Trace t = TraceBuilder().WholeRead(1, 2, 1, 10, 2000, 3).Unlink(11, 99, 9).Build();
  const ActivityStats s = Analyze(t);
  EXPECT_DOUBLE_EQ(s.ten_second.throughput_per_user.max(), 200.0);
}

TEST(ActivityStats, ActiveWithoutBytesCountsAsZeroThroughput) {
  const Trace t = TraceBuilder().Unlink(1, 5, 4).Unlink(11, 5, 4).Build();
  const ActivityStats s = Analyze(t);
  EXPECT_EQ(s.ten_second.throughput_per_user.mean(), 0.0);
  EXPECT_GT(s.ten_second.active_users.max(), 0.0);
}

TEST(ActivityStats, EmptyTrace) {
  const ActivityStats s = Analyze(Trace{});
  EXPECT_EQ(s.total_bytes, 0u);
  EXPECT_EQ(s.distinct_users, 0u);
  EXPECT_EQ(s.average_throughput, 0.0);
}

}  // namespace
}  // namespace bsdtrace
