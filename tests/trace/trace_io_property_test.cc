// Property tests for the binary trace codec: the legacy iostream path and
// the block-buffered file path must accept arbitrary record streams, agree
// byte for byte, and round-trip bit-exactly — including extreme varint
// values, negative time deltas, and both header versions.

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "gtest/gtest.h"
#include "src/trace/trace_io.h"
#include "src/util/rng.h"

namespace bsdtrace {
namespace {

// Unique per process: ctest runs each TEST() of this binary as its own
// parallel process, and they must not share scratch files.
std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_" + name;
}

// Random record with occasional extreme field values: zero, one, varint
// byte-length boundaries, and the 64-bit maximum.  Records are built through
// the per-type factories because the codec is deliberately per-type lossy —
// fields a type does not carry are not encoded.
TraceRecord RandomRecord(Rng& rng, SimTime time) {
  const auto extreme = [&rng]() -> uint64_t {
    switch (rng.UniformInt(0, 6)) {
      case 0: return 0;
      case 1: return 1;
      case 2: return 127;               // 1-byte varint max
      case 3: return 128;               // first 2-byte varint
      case 4: return (1ull << 56) - 1;  // 8-byte varint max
      case 5: return 1ull << 56;        // first 9-byte varint
      default: return std::numeric_limits<uint64_t>::max();
    }
  };
  const auto value = [&]() -> uint64_t {
    return rng.UniformInt(0, 3) == 0 ? extreme()
                                     : static_cast<uint64_t>(rng.UniformInt(0, 1 << 20));
  };
  const auto open_id = [&]() -> OpenId { return value() | 1; };  // non-sentinel
  const auto user = [&rng]() -> UserId { return static_cast<UserId>(rng.UniformInt(0, 1000)); };
  const auto mode = [&rng]() { return static_cast<AccessMode>(rng.UniformInt(0, 2)); };
  switch (rng.UniformInt(1, 7)) {
    case 1:
      return MakeOpen(time, open_id(), value(), user(), mode(), value(), value());
    case 2:
      return MakeCreate(time, open_id(), value(), user(), mode());
    case 3:
      return MakeClose(time, open_id(), value(), value(), value());
    case 4:
      return MakeSeek(time, open_id(), value(), value(), value());
    case 5:
      return MakeUnlink(time, value(), user());
    case 6:
      return MakeTruncate(time, value(), user(), value());
    default:
      return MakeExecve(time, value(), user(), value());
  }
}

// Random trace whose record times jump forward AND backward (the format
// stores signed zigzag deltas; out-of-order records must survive the codec
// even though generated traces are sorted).
Trace RandomTrace(uint64_t seed, size_t records) {
  Rng rng(seed);
  Trace trace(TraceHeader{.machine = "propmachine" + std::to_string(seed),
                          .description = "property trace, seed " + std::to_string(seed)});
  SimTime t = SimTime::Origin();
  for (size_t i = 0; i < records; ++i) {
    t += Duration::Micros(rng.UniformInt(-5'000'000, 5'000'000));
    if (rng.UniformInt(0, 15) == 0) {
      // Occasional huge jump, in either direction: a 6+ byte time varint.
      t += Duration::Micros((rng.UniformInt(0, 1) == 0 ? 1 : -1) * (int64_t{1} << 40));
    }
    trace.Append(RandomRecord(rng, t));
  }
  return trace;
}

std::string StreamBytes(const Trace& trace) {
  std::ostringstream out;
  WriteBinaryTrace(out, trace);
  return std::move(out).str();
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

// Parses one LEB128 varint (for rewriting headers in the v1 test).
size_t VarintEnd(const std::string& bytes, size_t pos) {
  while (pos < bytes.size() && (static_cast<uint8_t>(bytes[pos]) & 0x80) != 0) {
    ++pos;
  }
  return pos + 1;
}

// Converts v2 file bytes to the v1 format: swap the magic and splice out the
// record-count varint that follows the two header strings.
std::string ToV1(const std::string& v2) {
  EXPECT_EQ(v2.substr(0, 8), "BSDTRC2\n");
  size_t pos = 8;
  for (int str = 0; str < 2; ++str) {
    const size_t len_end = VarintEnd(v2, pos);
    uint64_t len = 0;
    int shift = 0;
    for (size_t i = pos; i < len_end; ++i) {
      len |= static_cast<uint64_t>(static_cast<uint8_t>(v2[i]) & 0x7f) << shift;
      shift += 7;
    }
    pos = len_end + len;
  }
  const size_t count_end = VarintEnd(v2, pos);
  return "BSDTRC1\n" + v2.substr(8, pos - 8) + v2.substr(count_end);
}

class TraceIoProperty : public ::testing::TestWithParam<uint64_t> {};

// The buffered file path emits exactly the bytes of the iostream path.
TEST_P(TraceIoProperty, BufferedBytesMatchStreamBytes) {
  const Trace trace = RandomTrace(GetParam(), 400);
  const std::string path = TempPath("prop_bytes.trace");
  ASSERT_TRUE(SaveTrace(path, trace).ok());
  EXPECT_EQ(FileBytes(path), StreamBytes(trace));
}

// Round trip through the buffered path is the identity, via both the mmap
// window and the stdio fallback.
TEST_P(TraceIoProperty, BufferedRoundTripIdentity) {
  const Trace trace = RandomTrace(GetParam(), 400);
  const std::string path = TempPath("prop_roundtrip.trace");
  ASSERT_TRUE(SaveTrace(path, trace).ok());

  auto loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value(), trace);

  for (bool prefer_mmap : {true, false}) {
    TraceFileReader reader(path, prefer_mmap);
    ASSERT_TRUE(reader.status().ok()) << reader.status().message();
    EXPECT_EQ(reader.declared_record_count(), static_cast<int64_t>(trace.size()));
    Trace reread(reader.header());
    TraceRecord record;
    while (reader.Next(&record)) {
      reread.Append(record);
    }
    ASSERT_TRUE(reader.status().ok()) << reader.status().message();
    EXPECT_EQ(reread, trace) << "prefer_mmap=" << prefer_mmap;
  }
}

// Cross-path reads: bytes written by either writer load through the other
// reader.
TEST_P(TraceIoProperty, CrossPathReads) {
  const Trace trace = RandomTrace(GetParam(), 300);
  const std::string path = TempPath("prop_cross.trace");
  {
    std::ofstream out(path, std::ios::binary);
    WriteBinaryTrace(out, trace);
  }
  auto via_buffered = LoadTrace(path);
  ASSERT_TRUE(via_buffered.ok()) << via_buffered.status().message();
  EXPECT_EQ(via_buffered.value(), trace);

  ASSERT_TRUE(SaveTrace(path, trace).ok());
  std::ifstream in(path, std::ios::binary);
  auto via_stream = ReadBinaryTrace(in);
  ASSERT_TRUE(via_stream.ok()) << via_stream.status().message();
  EXPECT_EQ(via_stream.value(), trace);
}

// v1 files (no record count) read identically through both paths.
TEST_P(TraceIoProperty, VersionOneHeader) {
  const Trace trace = RandomTrace(GetParam(), 200);
  const std::string v1_bytes = ToV1(StreamBytes(trace));
  const std::string path = TempPath("prop_v1.trace");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(v1_bytes.data(), static_cast<std::streamsize>(v1_bytes.size()));
  }

  auto via_buffered = LoadTrace(path);
  ASSERT_TRUE(via_buffered.ok()) << via_buffered.status().message();
  EXPECT_EQ(via_buffered.value(), trace);

  TraceFileReader reader(path);
  ASSERT_TRUE(reader.status().ok());
  EXPECT_EQ(reader.declared_record_count(), -1);

  std::istringstream in(v1_bytes);
  auto via_stream = ReadBinaryTrace(in);
  ASSERT_TRUE(via_stream.ok()) << via_stream.status().message();
  EXPECT_EQ(via_stream.value(), trace);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceIoProperty,
                         ::testing::Values(1u, 2u, 3u, 77u, 19851201u));

// Truncation anywhere in the body is an error on both paths, never a crash.
TEST(TraceIoPropertyEdge, TruncatedFilesFailCleanly) {
  const Trace trace = RandomTrace(99, 50);
  const std::string bytes = StreamBytes(trace);
  const std::string path = TempPath("prop_trunc.trace");
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    const size_t cut = static_cast<size_t>(
        rng.UniformInt(9, static_cast<int64_t>(bytes.size()) - 2));
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    EXPECT_FALSE(LoadTrace(path).ok()) << "cut at " << cut;
    std::istringstream in(bytes.substr(0, cut));
    EXPECT_FALSE(ReadBinaryTrace(in).ok()) << "cut at " << cut;
  }
}

// An empty file and a bad magic are reported as errors, not end-of-trace.
TEST(TraceIoPropertyEdge, BadHeadersFail) {
  const std::string path = TempPath("prop_bad.trace");
  { std::ofstream out(path, std::ios::binary | std::ios::trunc); }
  EXPECT_FALSE(LoadTrace(path).ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "NOTATRACE!";
  }
  EXPECT_FALSE(LoadTrace(path).ok());
}

}  // namespace
}  // namespace bsdtrace
