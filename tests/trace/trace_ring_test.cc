// TraceRing: the devtrace-style fifo behind `trace_stream serve`.  The
// properties that matter: FIFO order through full/empty boundaries at
// wrap-around, exact drop accounting under both overflow policies, close
// semantics, and per-producer order under MPSC interleavings (run these
// under TSan to check the locking, not just the outcomes).

#include "src/trace/trace_ring.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/trace/record.h"

namespace bsdtrace {
namespace {

TraceHeader TestHeader() {
  TraceHeader header;
  header.machine = "ring-test";
  return header;
}

// A distinguishable record: sequence number in file_id, producer in user_id.
TraceRecord Rec(uint64_t seq, UserId producer = 1) {
  TraceRecord r;
  r.type = EventType::kExecve;
  r.time = SimTime::FromSeconds(static_cast<double>(seq));
  r.file_id = seq;
  r.user_id = producer;
  r.size = 4096;
  return r;
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  for (const auto& [requested, expected] :
       std::vector<std::pair<size_t, size_t>>{{1, 2}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {100, 128}}) {
    TraceRingOptions options;
    options.capacity = requested;
    TraceRing ring(TestHeader(), options);
    EXPECT_EQ(ring.capacity(), expected) << "requested " << requested;
  }
}

TEST(TraceRing, HeaderIsVisibleToConsumers) {
  TraceRing ring(TestHeader());
  RingTraceSource source(&ring);
  EXPECT_EQ(source.header().machine, "ring-test");
  EXPECT_TRUE(source.status().ok());
}

TEST(TraceRing, FifoThroughWrapAround) {
  TraceRingOptions options;
  options.capacity = 4;
  TraceRing ring(TestHeader(), options);

  // Fill, half-drain, refill: the produce counter passes capacity several
  // times, so masked indexing must keep empty/full exact at the wrap.
  uint64_t next_push = 0;
  uint64_t next_pop = 0;
  TraceRecord out;
  for (int round = 0; round < 5; ++round) {
    while (next_push - next_pop < ring.capacity()) {
      EXPECT_TRUE(ring.Push(Rec(next_push)));
      ++next_push;
    }
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(ring.Pop(&out));
      EXPECT_EQ(out, Rec(next_pop));
      ++next_pop;
    }
  }
  ring.Close();
  while (ring.Pop(&out)) {
    EXPECT_EQ(out, Rec(next_pop));
    ++next_pop;
  }
  EXPECT_EQ(next_pop, next_push);

  const TraceRingStats stats = ring.stats();
  EXPECT_EQ(stats.capacity, 4u);
  EXPECT_EQ(stats.produced, next_push);
  EXPECT_EQ(stats.consumed, next_push);
  EXPECT_EQ(stats.dropped(), 0u);
  EXPECT_EQ(stats.max_occupancy, 4u);
}

TEST(TraceRing, DropOldestOverwritesAndCounts) {
  TraceRingOptions options;
  options.capacity = 4;
  options.policy = RingOverflowPolicy::kDropOldest;
  TraceRing ring(TestHeader(), options);

  for (uint64_t seq = 0; seq < 10; ++seq) {
    EXPECT_TRUE(ring.Push(Rec(seq)));  // never blocks, never refuses
  }
  ring.Close();

  // The oldest six were overwritten; the survivors are the newest four, in
  // order — a gapped but still time-ordered stream.
  TraceRecord out;
  for (uint64_t seq = 6; seq < 10; ++seq) {
    ASSERT_TRUE(ring.Pop(&out));
    EXPECT_EQ(out, Rec(seq));
  }
  EXPECT_FALSE(ring.Pop(&out));

  const TraceRingStats stats = ring.stats();
  EXPECT_EQ(stats.produced, 10u);
  EXPECT_EQ(stats.dropped_oldest, 6u);
  EXPECT_EQ(stats.dropped_timeout, 0u);
  EXPECT_EQ(stats.consumed, 4u);
}

TEST(TraceRing, BlockWithTimeoutRefusesWhenFull) {
  TraceRingOptions options;
  options.capacity = 2;
  options.policy = RingOverflowPolicy::kBlock;
  options.push_timeout = std::chrono::milliseconds(10);
  TraceRing ring(TestHeader(), options);

  EXPECT_TRUE(ring.Push(Rec(0)));
  EXPECT_TRUE(ring.Push(Rec(1)));
  EXPECT_FALSE(ring.Push(Rec(2)));  // no consumer: times out and drops

  const TraceRingStats stats = ring.stats();
  EXPECT_EQ(stats.produced, 2u);
  EXPECT_EQ(stats.dropped_timeout, 1u);

  // The queued records are intact.
  ring.Close();
  TraceRecord out;
  ASSERT_TRUE(ring.Pop(&out));
  EXPECT_EQ(out, Rec(0));
  ASSERT_TRUE(ring.Pop(&out));
  EXPECT_EQ(out, Rec(1));
  EXPECT_FALSE(ring.Pop(&out));
}

TEST(TraceRing, CloseRefusesPushesAndDrainsPops) {
  TraceRing ring(TestHeader());
  EXPECT_TRUE(ring.Push(Rec(0)));
  EXPECT_TRUE(ring.Push(Rec(1)));
  ring.Close();
  EXPECT_TRUE(ring.closed());
  EXPECT_FALSE(ring.Push(Rec(2)));
  ring.Close();  // idempotent

  TraceRecord out;
  ASSERT_TRUE(ring.Pop(&out));
  EXPECT_EQ(out, Rec(0));
  ASSERT_TRUE(ring.Pop(&out));
  EXPECT_EQ(out, Rec(1));
  EXPECT_FALSE(ring.Pop(&out));
  EXPECT_FALSE(ring.Pop(&out));  // stays drained
}

// SPSC under real concurrency: a small ring forces the producer to block on
// the consumer; every record must arrive exactly once, in order.
TEST(TraceRing, SpscBlockingDeliversEverythingInOrder) {
  constexpr uint64_t kRecords = 20000;
  TraceRingOptions options;
  options.capacity = 8;
  TraceRing ring(TestHeader(), options);

  std::thread producer([&]() {
    for (uint64_t seq = 0; seq < kRecords; ++seq) {
      EXPECT_TRUE(ring.Push(Rec(seq)));
    }
    ring.Close();
  });

  RingTraceSource source(&ring);
  TraceRecord out;
  uint64_t expected = 0;
  while (source.Next(&out)) {
    ASSERT_EQ(out.file_id, expected);
    ++expected;
  }
  producer.join();

  EXPECT_EQ(expected, kRecords);
  const TraceRingStats stats = ring.stats();
  EXPECT_EQ(stats.produced, kRecords);
  EXPECT_EQ(stats.consumed, kRecords);
  EXPECT_EQ(stats.dropped(), 0u);
  EXPECT_LE(stats.max_occupancy, ring.capacity());
}

// MPSC: several producers interleave through the sink face.  The global
// order is nondeterministic, but each producer's records must arrive in its
// own push order (per-producer FIFO), with nothing lost or duplicated.
TEST(TraceRing, MpscPreservesPerProducerFifo) {
  constexpr int kProducers = 4;
  constexpr uint64_t kEach = 5000;
  TraceRingOptions options;
  options.capacity = 16;
  TraceRing ring(TestHeader(), options);
  RingTraceSink sink(&ring);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p]() {
      for (uint64_t seq = 0; seq < kEach; ++seq) {
        sink.Append(Rec(seq, static_cast<UserId>(p + 1)));
      }
    });
  }
  std::thread closer([&]() {
    for (std::thread& t : producers) {
      t.join();
    }
    ring.Close();
  });

  std::vector<uint64_t> next_from(kProducers, 0);
  TraceRecord out;
  uint64_t total = 0;
  while (ring.Pop(&out)) {
    const int p = static_cast<int>(out.user_id) - 1;
    ASSERT_GE(p, 0);
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(out.file_id, next_from[p]) << "producer " << p << " reordered";
    ++next_from[p];
    ++total;
  }
  closer.join();

  EXPECT_EQ(total, kProducers * kEach);
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_from[p], kEach);
  }
  EXPECT_EQ(ring.stats().dropped(), 0u);
}

}  // namespace
}  // namespace bsdtrace
