// Trace format v4: compressed block payloads.  Round trips over arbitrary
// (even structurally invalid) record streams, the v1-v4 back-compat matrix,
// codec fallback for incompressible blocks, seekable cursors, and clean
// failure on corrupted stored bytes or lying block headers.

#include <cstdint>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/trace/trace_io.h"
#include "src/trace/trace_source.h"
#include "src/trace/validate.h"
#include "src/util/rng.h"

namespace bsdtrace {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TraceWriterOptions V4(size_t block_target = 16 * 1024, TraceCodec codec = TraceCodec::kLz) {
  TraceWriterOptions options;
  options.version = 4;
  options.block_target_bytes = block_target;
  options.codec = codec;
  return options;
}

// A well-formed trace: opens matched by closes with the sequential-access
// shape the v4 predictions target, plus seeks, unlinks, and execves.
Trace WellFormedTrace(size_t n = 12'000) {
  Rng rng(19851201);
  Trace t(TraceHeader{.machine = "v4box", .description = "v4 round trip"});
  int64_t time_us = 0;
  std::vector<std::pair<OpenId, std::pair<FileId, uint64_t>>> open;  // oid -> (file, size)
  OpenId next_oid = 1;
  for (size_t i = 0; i < n; ++i) {
    time_us += rng.UniformInt(100, 900'000);  // spans several hours
    const SimTime now = SimTime::FromMicros(time_us);
    const int dice = rng.UniformInt(0, 9);
    if (open.empty() || dice < 4) {
      const auto file = static_cast<FileId>(rng.UniformInt(1, 300));
      const uint64_t size = static_cast<uint64_t>(rng.UniformInt(0, 1 << 16));
      t.Append(MakeOpen(now, next_oid, file, rng.UniformInt(1, 40), AccessMode::kReadOnly,
                        size, 0));
      open.push_back({next_oid, {file, size}});
      ++next_oid;
    } else if (dice < 8) {
      const size_t pick = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(open.size()) - 1));
      const auto [oid, fs] = open[pick];
      t.Append(MakeClose(now, oid, fs.first, fs.second, fs.second));  // read it all
      open.erase(open.begin() + static_cast<ptrdiff_t>(pick));
    } else if (dice == 8) {
      const size_t pick = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(open.size()) - 1));
      const auto [oid, fs] = open[pick];
      t.Append(MakeSeek(now, oid, fs.first, 0, fs.second / 2));
    } else {
      t.Append(MakeUnlink(now, rng.UniformInt(1, 300), rng.UniformInt(1, 40)));
    }
  }
  return t;
}

// An adversarial trace: random per-type records with extreme field values,
// duplicate open ids, closes and seeks that never had an open, and closes
// whose file id disagrees with the open's — the writer's predictions must
// never rewrite any of it.
Trace AdversarialTrace(uint64_t seed, size_t n = 4'000) {
  Rng rng(seed);
  Trace t(TraceHeader{.machine = "v4adv", .description = "adversarial"});
  const auto extreme = [&rng]() -> uint64_t {
    switch (rng.UniformInt(0, 5)) {
      case 0: return 0;
      case 1: return 127;
      case 2: return 128;
      case 3: return (1ull << 56) - 1;
      case 4: return 1ull << 56;
      default: return std::numeric_limits<uint64_t>::max();
    }
  };
  const auto value = [&]() -> uint64_t {
    return rng.UniformInt(0, 3) == 0 ? extreme()
                                     : static_cast<uint64_t>(rng.UniformInt(0, 1 << 20));
  };
  SimTime time = SimTime::Origin();
  for (size_t i = 0; i < n; ++i) {
    time += Duration::Micros(rng.UniformInt(-1'000'000, 30'000'000));
    const auto oid = static_cast<OpenId>(rng.UniformInt(1, 64));  // heavy id reuse
    const auto mode = static_cast<AccessMode>(rng.UniformInt(0, 2));
    switch (rng.UniformInt(1, 7)) {
      case 1:
        t.Append(MakeOpen(time, oid, value(), rng.UniformInt(0, 1000), mode, value(), value()));
        break;
      case 2:
        t.Append(MakeCreate(time, oid, value(), rng.UniformInt(0, 1000), mode));
        break;
      case 3:
        t.Append(MakeClose(time, oid, value(), value(), value()));
        break;
      case 4:
        t.Append(MakeSeek(time, oid, value(), value(), value()));
        break;
      case 5:
        t.Append(MakeUnlink(time, value(), rng.UniformInt(0, 1000)));
        break;
      case 6:
        t.Append(MakeTruncate(time, value(), rng.UniformInt(0, 1000), value()));
        break;
      default:
        t.Append(MakeExecve(time, value(), rng.UniformInt(0, 1000), value()));
        break;
    }
  }
  return t;
}

void ExpectRoundTrip(const Trace& original, const TraceWriterOptions& options,
                     const std::string& name) {
  const std::string path = TempPath(name);
  ASSERT_TRUE(SaveTrace(path, original, options).ok());
  for (const bool prefer_mmap : {true, false}) {
    TraceFileReader reader(path, prefer_mmap);
    ASSERT_TRUE(reader.status().ok()) << reader.status().message();
    EXPECT_EQ(reader.version(), 4);
    TraceRecord r;
    size_t i = 0;
    while (reader.Next(&r)) {
      ASSERT_LT(i, original.size());
      ASSERT_EQ(r, original.records()[i]) << "record " << i;
      ++i;
    }
    EXPECT_TRUE(reader.status().ok()) << reader.status().message();
    EXPECT_EQ(i, original.size());
  }
}

TEST(TraceV4, WellFormedTraceRoundTripsCompressed) {
  ExpectRoundTrip(WellFormedTrace(), V4(), "v4_roundtrip.trc");
}

TEST(TraceV4, WellFormedTraceActuallyCompresses) {
  const Trace t = WellFormedTrace();
  const std::string v3_path = TempPath("v4_ratio_v3.trc");
  const std::string v4_path = TempPath("v4_ratio_v4.trc");
  TraceWriterOptions v3;
  v3.version = 3;
  ASSERT_TRUE(SaveTrace(v3_path, t, v3).ok());
  ASSERT_TRUE(SaveTrace(v4_path, t, V4(256 * 1024)).ok());
  // The ISSUE gate (>= 3x) is asserted on realistic generated fleets by the
  // benchmark; this synthetic trace still must clearly beat v3.
  EXPECT_LT(ReadFileBytes(v4_path).size(), ReadFileBytes(v3_path).size() / 2);
}

TEST(TraceV4, AdversarialTracesRoundTripExactly) {
  for (const uint64_t seed : {1u, 2u, 77u}) {
    ExpectRoundTrip(AdversarialTrace(seed), V4(), "v4_adv_" + std::to_string(seed) + ".trc");
    // Tiny blocks force every record near a prediction-state reset.
    ExpectRoundTrip(AdversarialTrace(seed + 100), V4(256),
                    "v4_adv_small_" + std::to_string(seed) + ".trc");
  }
}

TEST(TraceV4, EmptyTraceRoundTrips) {
  Trace empty(TraceHeader{.machine = "m", .description = ""});
  const std::string path = TempPath("v4_empty.trc");
  ASSERT_TRUE(SaveTrace(path, empty, V4()).ok());
  auto loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().size(), 0u);
}

TEST(TraceV4, AllVersionsLoadTheSameRecords) {
  const Trace original = WellFormedTrace(3'000);
  for (const int version : {2, 3, 4}) {
    TraceWriterOptions options;
    options.version = version;
    options.codec = TraceCodec::kLz;
    const std::string path = TempPath("v4_compat_" + std::to_string(version) + ".trc");
    ASSERT_TRUE(SaveTrace(path, original, options).ok());
    TraceFileReader reader(path);
    ASSERT_TRUE(reader.status().ok());
    EXPECT_EQ(reader.version(), version);
    auto loaded = LoadTrace(path);
    ASSERT_TRUE(loaded.ok()) << "v" << version << ": " << loaded.status().message();
    EXPECT_EQ(loaded.value(), original) << "v" << version;
  }
}

TEST(TraceV4, StoredCodecBlocksReadBack) {
  // v4 with codec "none": the block layout (raw == stored length, codec id
  // 0) must read back exactly — it is also what the writer's fallback emits
  // for a block the codec fails to shrink.
  const Trace t = AdversarialTrace(9, 6'000);
  const std::string path = TempPath("v4_stored.trc");
  ASSERT_TRUE(SaveTrace(path, t, V4(16 * 1024, TraceCodec::kNone)).ok());
  TraceFileReader reader(path);
  ASSERT_TRUE(reader.status().ok());
  Trace reread(reader.header());
  TraceRecord r;
  while (reader.Next(&r)) {
    reread.Append(r);
  }
  ASSERT_TRUE(reader.status().ok()) << reader.status().message();
  EXPECT_EQ(reread.records(), t.records());
  EXPECT_EQ(reader.codecs_seen(), 1u << static_cast<uint8_t>(TraceCodec::kNone));
  const TraceFileCheck check = CheckTraceFile(path);
  ASSERT_TRUE(check.status.ok());
  EXPECT_EQ(check.payload_raw_bytes, check.payload_stored_bytes);
}

TEST(TraceV4, SeekableCursorsStartAtAnyBlock) {
  const Trace original = WellFormedTrace(8'000);
  const std::string path = TempPath("v4_seek.trc");
  ASSERT_TRUE(SaveTrace(path, original, V4(4 * 1024)).ok());
  SeekableTraceSource seekable(path);
  ASSERT_TRUE(seekable.status().ok()) << seekable.status().message();
  ASSERT_GT(seekable.index().size(), 3u);
  // Decode from the third block onward; records must match the tail of the
  // original stream exactly even though the prediction state reset there.
  uint64_t skipped = 0;
  for (size_t b = 0; b < 2; ++b) {
    skipped += seekable.index()[b].record_count;
  }
  auto cursor = seekable.OpenCursor(2, seekable.index().size() - 2);
  ASSERT_TRUE(cursor->status().ok()) << cursor->status().message();
  TraceRecord r;
  size_t i = static_cast<size_t>(skipped);
  while (cursor->Next(&r)) {
    ASSERT_LT(i, original.size());
    ASSERT_EQ(r, original.records()[i]) << "record " << i;
    ++i;
  }
  EXPECT_TRUE(cursor->status().ok()) << cursor->status().message();
  EXPECT_EQ(i, original.size());
}

TEST(TraceV4, FlippedStoredByteFailsCleanly) {
  const Trace original = WellFormedTrace(8'000);
  const std::string path = TempPath("v4_corrupt.trc");
  std::vector<TraceBlockIndexEntry> index;
  {
    TraceFileWriter writer(path, original.header(), static_cast<int64_t>(original.size()),
                           V4(8 * 1024));
    for (const TraceRecord& r : original.records()) {
      writer.Append(r);
    }
    ASSERT_TRUE(writer.Finish().ok());
    index = writer.index();
  }
  ASSERT_GT(index.size(), 2u);
  // Flip one byte in the middle of the second block's stored payload.
  std::string bytes = ReadFileBytes(path);
  const size_t victim = (index[1].offset + index[2].offset) / 2;
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0x10);
  const std::string bad = TempPath("v4_corrupt_flipped.trc");
  WriteFileBytes(bad, bytes);

  TraceFileReader reader(bad);
  ASSERT_TRUE(reader.status().ok());
  TraceRecord r;
  size_t delivered = 0;
  while (reader.Next(&r)) {
    ++delivered;
  }
  EXPECT_FALSE(reader.status().ok());
  EXPECT_EQ(delivered, index[0].record_count) << "records leaked from the corrupt block";

  const TraceFileCheck check = CheckTraceFile(bad);
  EXPECT_FALSE(check.status.ok());
  EXPECT_EQ(check.blocks_verified, 1u);
}

TEST(TraceV4, TruncatedFileFailsCleanly) {
  const Trace original = WellFormedTrace(4'000);
  const std::string path = TempPath("v4_trunc.trc");
  ASSERT_TRUE(SaveTrace(path, original, V4(8 * 1024)).ok());
  const std::string bytes = ReadFileBytes(path);
  Rng rng(3);
  for (int i = 0; i < 16; ++i) {
    const size_t cut =
        static_cast<size_t>(rng.UniformInt(9, static_cast<int64_t>(bytes.size()) - 2));
    const std::string cut_path = TempPath("v4_trunc_cut.trc");
    WriteFileBytes(cut_path, bytes.substr(0, cut));
    EXPECT_FALSE(CheckTraceFile(cut_path).status.ok()) << "cut at " << cut;
  }
}

TEST(TraceV4, CheckReportsCompressionCounters) {
  const Trace original = WellFormedTrace(6'000);
  const std::string path = TempPath("v4_counters.trc");
  ASSERT_TRUE(SaveTrace(path, original, V4()).ok());
  const TraceFileCheck check = CheckTraceFile(path);
  ASSERT_TRUE(check.status.ok()) << check.status.message();
  EXPECT_EQ(check.version, 4);
  EXPECT_EQ(check.records, original.size());
  EXPECT_GT(check.payload_raw_bytes, check.payload_stored_bytes);
}

}  // namespace
}  // namespace bsdtrace
