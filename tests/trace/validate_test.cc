#include "src/trace/validate.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "src/trace/trace_io.h"
#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

TEST(ValidateTrace, EmptyTraceIsValid) {
  const ValidationResult r = ValidateTrace(Trace{});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.records, 0u);
}

TEST(ValidateTrace, WellFormedAccess) {
  const Trace t = TraceBuilder()
                      .Open(1, 1, 10, 4096)
                      .Seek(2, 1, 10, 1024, 2048)
                      .Close(3, 1, 10, 4096, 4096)
                      .Build();
  const ValidationResult r = ValidateTrace(t);
  EXPECT_TRUE(r.ok()) << r.Summary();
  EXPECT_EQ(r.opens_pending_at_end, 0u);
}

TEST(ValidateTrace, DetectsTimeGoingBackwards) {
  const Trace t = TraceBuilder().Unlink(5, 1).Unlink(4, 2).Build();
  const ValidationResult r = ValidateTrace(t);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].find("backwards"), std::string::npos);
}

TEST(ValidateTrace, DetectsReusedOpenId) {
  const Trace t =
      TraceBuilder().Open(1, 7, 10, 100).Open(2, 7, 11, 100).Build();
  const ValidationResult r = ValidateTrace(t);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].find("reused"), std::string::npos);
}

TEST(ValidateTrace, DetectsCloseWithoutOpen) {
  const Trace t = TraceBuilder().Close(1, 9, 10, 0, 0).Build();
  const ValidationResult r = ValidateTrace(t);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].find("not open"), std::string::npos);
}

TEST(ValidateTrace, DetectsSeekWithoutOpen) {
  const Trace t = TraceBuilder().Seek(1, 9, 10, 0, 5).Build();
  EXPECT_FALSE(ValidateTrace(t).ok());
}

TEST(ValidateTrace, DetectsFileIdMismatch) {
  const Trace t =
      TraceBuilder().Open(1, 1, 10, 100).Close(2, 1, 99, 0, 0).Build();
  const ValidationResult r = ValidateTrace(t);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].find("file id"), std::string::npos);
}

TEST(ValidateTrace, DetectsBackwardPositionWithoutSeek) {
  // Position after open is 50, but the seek claims it was at 20.
  const Trace t = TraceBuilder()
                      .Open(1, 1, 10, 100, AccessMode::kReadOnly, 1, 50)
                      .Seek(2, 1, 10, 20, 60)
                      .Close(3, 1, 10, 60, 100)
                      .Build();
  const ValidationResult r = ValidateTrace(t);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].find("behind"), std::string::npos);
}

TEST(ValidateTrace, DetectsClosePositionRegression) {
  const Trace t = TraceBuilder()
                      .Open(1, 1, 10, 100, AccessMode::kReadOnly, 1, 50)
                      .Close(2, 1, 10, 10, 100)
                      .Build();
  EXPECT_FALSE(ValidateTrace(t).ok());
}

TEST(ValidateTrace, DetectsSizeSmallerThanFinalPosition) {
  const Trace t =
      TraceBuilder().Open(1, 1, 10, 100).Close(2, 1, 10, 200, 100).Build();
  const ValidationResult r = ValidateTrace(t);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].find("size smaller"), std::string::npos);
}

TEST(ValidateTrace, DetectsOpenPositionBeyondSize) {
  const Trace t =
      TraceBuilder().Open(1, 1, 10, 100, AccessMode::kReadOnly, 1, 200).Build();
  EXPECT_FALSE(ValidateTrace(t).ok());
}

TEST(ValidateTrace, DetectsInvalidOpenId) {
  Trace t;
  t.Append(MakeOpen(SimTime::FromSeconds(1), kInvalidOpenId, 10, 1, AccessMode::kReadOnly, 0,
                    0));
  EXPECT_FALSE(ValidateTrace(t).ok());
}

TEST(ValidateTrace, PendingOpensAreWarningsNotErrors) {
  const Trace t = TraceBuilder().Open(1, 1, 10, 100).Build();
  const ValidationResult r = ValidateTrace(t);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.opens_pending_at_end, 1u);
  ASSERT_EQ(r.warnings.size(), 1u);
  EXPECT_NE(r.warnings[0].find("still open"), std::string::npos);
}

TEST(ValidateTrace, IssueCountIsCapped) {
  TraceBuilder b;
  for (int i = 0; i < 100; ++i) {
    b.Close(i + 1, 1000 + i, 10, 0, 0);  // 100 orphan closes
  }
  const ValidationResult r = ValidateTrace(b.Build(), 5);
  EXPECT_EQ(r.errors.size(), 5u);
}

TEST(ValidateTrace, SummaryListsIssues) {
  const Trace t = TraceBuilder().Close(1, 9, 10, 0, 0).Build();
  const ValidationResult r = ValidateTrace(t);
  EXPECT_NE(r.Summary().find("error:"), std::string::npos);
}

TEST(ValidateTrace, CreateWithNonzeroSizeRejected) {
  Trace t;
  TraceRecord r = MakeCreate(SimTime::FromSeconds(1), 1, 2, 3, AccessMode::kWriteOnly);
  r.size = 10;
  t.Append(r);
  EXPECT_FALSE(ValidateTrace(t).ok());
}

// -- CheckTraceFile -----------------------------------------------------------

Trace FileCheckTrace() {
  TraceBuilder b;
  for (int i = 0; i < 200; ++i) {
    const double t = 1.0 + i * 30.0;  // spans several simulated hours
    b.Open(t, i + 1, 100 + i, 4096);
    b.Close(t + 1.0, i + 1, 100 + i, 4096, 4096);
  }
  return b.Build();
}

TEST(CheckTraceFile, CleanV3FileChecksOut) {
  const std::string path = ::testing::TempDir() + "/check_v3.trc";
  TraceWriterOptions options;
  options.version = 3;
  options.block_target_bytes = 512;
  const Trace trace = FileCheckTrace();
  ASSERT_TRUE(SaveTrace(path, trace, options).ok());

  const TraceFileCheck check = CheckTraceFile(path);
  EXPECT_TRUE(check.ok()) << check.status.message();
  EXPECT_EQ(check.version, 3);
  EXPECT_TRUE(check.has_index);
  EXPECT_EQ(check.records, trace.size());
  EXPECT_EQ(check.indexed_records, trace.size());
  EXPECT_GT(check.index_entries, 1u);
  EXPECT_EQ(check.blocks_verified, check.index_entries);
  EXPECT_EQ(check.last_time, trace.records().back().time);
  std::remove(path.c_str());
}

TEST(CheckTraceFile, CleanV2FileChecksOut) {
  const std::string path = ::testing::TempDir() + "/check_v2.trc";
  const Trace trace = FileCheckTrace();
  ASSERT_TRUE(SaveTrace(path, trace).ok());

  const TraceFileCheck check = CheckTraceFile(path);
  EXPECT_TRUE(check.ok()) << check.status.message();
  EXPECT_EQ(check.version, 2);
  EXPECT_FALSE(check.has_index);
  EXPECT_EQ(check.records, trace.size());
  std::remove(path.c_str());
}

TEST(CheckTraceFile, FlippedByteIsReported) {
  const std::string path = ::testing::TempDir() + "/check_flip.trc";
  TraceWriterOptions options;
  options.version = 3;
  options.block_target_bytes = 512;
  ASSERT_TRUE(SaveTrace(path, FileCheckTrace(), options).ok());

  // Flip a byte in some middle block's payload.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
  const long mid = std::ftell(f) / 2;
  ASSERT_EQ(std::fseek(f, mid, SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, mid, SEEK_SET), 0);
  std::fputc(c ^ 0x01, f);
  std::fclose(f);

  const TraceFileCheck check = CheckTraceFile(path);
  EXPECT_FALSE(check.ok());
  EXPECT_EQ(check.version, 3);
  std::remove(path.c_str());
}

// -- hardened structural checks (importer support) ---------------------------

TEST(ValidateTrace, DetectsOpenIdReuseAfterClose) {
  const Trace t = TraceBuilder()
                      .Open(1, 7, 10, 100)
                      .Close(2, 7, 10, 100, 100)
                      .Open(3, 7, 11, 100)  // id 7 recycled: i-numbers never are
                      .Build();
  const ValidationResult r = ValidateTrace(t);
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_NE(r.errors[0].find("reused after close"), std::string::npos) << r.errors[0];
}

TEST(ValidateTrace, DistinguishesAlreadyClosedFromNeverOpened) {
  const Trace t = TraceBuilder()
                      .Open(1, 7, 10, 100)
                      .Close(2, 7, 10, 100, 100)
                      .Close(3, 7, 10, 100, 100)  // stale id
                      .Seek(4, 9, 10, 0, 5)       // unknown id
                      .Build();
  const ValidationResult r = ValidateTrace(t);
  ASSERT_EQ(r.errors.size(), 2u);
  EXPECT_NE(r.errors[0].find("already closed"), std::string::npos) << r.errors[0];
  EXPECT_NE(r.errors[1].find("never opened"), std::string::npos) << r.errors[1];
}

TEST(ValidateTrace, LineNumbersAndRenderedRecordsInDiagnostics) {
  const Trace t = TraceBuilder()
                      .Open(1, 7, 10, 100)
                      .Close(2, 9, 10, 100, 100)  // wrong id
                      .Build();
  const std::vector<uint64_t> lines = {12, 57};
  ValidateTraceOptions options;
  options.line_numbers = &lines;
  options.render_records = true;
  const ValidationResult r = ValidateTrace(t, options);
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_NE(r.errors[0].find("line 57"), std::string::npos) << r.errors[0];
  // The offending record's ToString rendering rides along.
  EXPECT_NE(r.errors[0].find("close\toid=9"), std::string::npos) << r.errors[0];
}

TEST(ValidateTrace, SeekFromBehindTrackedPositionNamesBothPositions) {
  const Trace t = TraceBuilder()
                      .Open(1, 1, 10, 4096)
                      .Seek(2, 1, 10, 1000, 2000)
                      .Seek(3, 1, 10, 1500, 0)  // 1500 < tracked 2000
                      .Close(4, 1, 10, 4096, 4096)
                      .Build();
  const ValidationResult r = ValidateTrace(t);
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_NE(r.errors[0].find("1500"), std::string::npos) << r.errors[0];
  EXPECT_NE(r.errors[0].find("2000"), std::string::npos) << r.errors[0];
}

TEST(CheckTraceFile, MissingFileIsAnError) {
  EXPECT_FALSE(CheckTraceFile(::testing::TempDir() + "/no_such_trace.trc").ok());
}

}  // namespace
}  // namespace bsdtrace
