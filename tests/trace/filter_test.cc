#include "src/trace/filter.h"

#include <gtest/gtest.h>

#include "src/trace/validate.h"
#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

Trace SampleTrace() {
  TraceBuilder b;
  b.WholeRead(1, 2, 1, 10, 100, 5);      // user 5, inside [0, 10)
  b.WholeWrite(3, 4, 2, 11, 200, 6);     // user 6
  b.Unlink(5, 11, 6);
  b.Open(8, 3, 12, 1000, AccessMode::kReadOnly, 5);
  b.Close(12, 3, 12, 1000, 1000);        // straddles a boundary at t=10
  b.Execve(15, 13, 5000, 7);
  return b.Build();
}

TEST(SliceByTime, KeepsOnlyFullyContainedAccesses) {
  const Trace slice = SliceByTime(SampleTrace(), SimTime::FromSeconds(0),
                                  SimTime::FromSeconds(10), /*rebase=*/false);
  // Access 3 (open t=8, close t=12) straddles the boundary: dropped whole.
  for (const TraceRecord& r : slice.records()) {
    EXPECT_NE(r.open_id, 3u);
  }
  // Accesses 1 and 2 and the unlink survive.
  EXPECT_EQ(slice.size(), 5u);
  EXPECT_TRUE(ValidateTrace(slice).ok());
}

TEST(SliceByTime, RebaseShiftsTimesToZero) {
  const Trace slice =
      SliceByTime(SampleTrace(), SimTime::FromSeconds(3), SimTime::FromSeconds(6));
  ASSERT_FALSE(slice.empty());
  EXPECT_EQ(slice.records().front().time, SimTime::Origin());
  EXPECT_LT(slice.duration(), Duration::Seconds(3));
}

TEST(SliceByTime, EmptyWindow) {
  const Trace slice =
      SliceByTime(SampleTrace(), SimTime::FromSeconds(100), SimTime::FromSeconds(200));
  EXPECT_TRUE(slice.empty());
}

TEST(SliceByTime, FullWindowKeepsEverything) {
  const Trace original = SampleTrace();
  const Trace slice = SliceByTime(original, SimTime::Origin(), SimTime::FromSeconds(1000),
                                  /*rebase=*/false);
  EXPECT_EQ(slice.records(), original.records());
}

TEST(FilterByUser, KeepsWholeAccessChains) {
  const Trace filtered =
      FilterByUser(SampleTrace(), [](UserId user) { return user == 5; });
  // User 5: access 1 (open+close) and access 3 (open+close) — 4 records.
  EXPECT_EQ(filtered.size(), 4u);
  for (const TraceRecord& r : filtered.records()) {
    EXPECT_TRUE(r.open_id == 1 || r.open_id == 3);
  }
  EXPECT_TRUE(ValidateTrace(filtered).ok());
}

TEST(FilterByUser, StandaloneEventsFilteredByOwnUser) {
  const Trace filtered =
      FilterByUser(SampleTrace(), [](UserId user) { return user == 7; });
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered.records()[0].type, EventType::kExecve);
}

TEST(FilterByFile, KeepsMatchingFilesOnly) {
  const Trace filtered = FilterByFile(SampleTrace(), [](FileId f) { return f == 11; });
  // Access 2 (create+close) and the unlink of file 11.
  EXPECT_EQ(filtered.size(), 3u);
  for (const TraceRecord& r : filtered.records()) {
    EXPECT_EQ(r.file_id, 11u);
  }
}

TEST(FilterByUser, DescriptionNotesDerivation) {
  const Trace filtered = FilterByUser(SampleTrace(), [](UserId) { return true; });
  EXPECT_NE(filtered.header().description.find("user filter"), std::string::npos);
}

TEST(CountEventsByUser, AttributesClosesToOpeningUser) {
  const auto counts = CountEventsByUser(SampleTrace());
  // User 5: open+close (access 1) + open+close (access 3) = 4.
  EXPECT_EQ(counts.at(5), 4u);
  // User 6: create+close+unlink = 3.
  EXPECT_EQ(counts.at(6), 3u);
  EXPECT_EQ(counts.at(7), 1u);
}

TEST(CountEventsByUser, EmptyTrace) {
  EXPECT_TRUE(CountEventsByUser(Trace{}).empty());
}

}  // namespace
}  // namespace bsdtrace
