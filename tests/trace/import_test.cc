// Foreign-trace import: the bsdtxt streaming reader (TextTraceSource) and
// the strace adapter.  Covers the tentpole properties: export | import is
// the identity on generated A5/E3/C4 traces, strace fd/position synthesis
// follows the documented rules, and malformed input fails with a clean
// Status naming the offending line — never a crash or a silent partial
// import (exercised by a random-mutation drill in the spirit of
// lz_codec_test).

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/trace/import/strace_import.h"
#include "src/trace/import/text_import.h"
#include "src/trace/trace_io.h"
#include "src/trace/validate.h"
#include "src/util/rng.h"
#include "src/workload/generator.h"
#include "src/workload/profile.h"

#ifndef BSDTRACE_TEST_DATA_DIR
#define BSDTRACE_TEST_DATA_DIR "tests/data"
#endif

namespace bsdtrace {
namespace {

// Collects a TextTraceSource into a Trace; EXPECTs a clean stream.
Trace Collect(TextTraceSource& source) {
  Trace trace(source.header());
  TraceRecord record{};
  while (source.Next(&record)) {
    trace.Append(record);
  }
  EXPECT_TRUE(source.status().ok()) << source.status().message();
  return trace;
}

std::string ExportText(const Trace& trace) {
  std::ostringstream out;
  EXPECT_TRUE(WriteTextTrace(out, trace).ok());
  return out.str();
}

// -- TextTraceSource ----------------------------------------------------------

TEST(TextTraceSource, ReadsHeaderRecordsAndLineNumbers) {
  std::istringstream in(
      "# machine testbox\r\n"
      "# description a text trace\n"
      "\n"
      "# free-form comment\n"
      "0.000000\topen\toid=1\tfile=2\tuser=3\tmode=r\tsize=100\tpos=0\n"
      "\n"
      "1.500000\tclose\toid=1\tfile=2\tpos=100\tsize=100\n");
  TextTraceSource source(in);
  EXPECT_EQ(source.header().machine, "testbox");
  EXPECT_EQ(source.header().description, "a text trace");
  const Trace trace = Collect(source);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.records()[0].type, EventType::kOpen);
  EXPECT_EQ(trace.records()[1].time.micros(), 1'500'000);
  // The blank and comment lines count, so records sit on lines 5 and 7.
  EXPECT_EQ(source.record_lines(), (std::vector<uint64_t>{5, 7}));
}

TEST(TextTraceSource, BadRecordFailsWithLineNumber) {
  std::istringstream in(
      "# machine m\n"
      "0.000000\topen\toid=1\tfile=2\tuser=3\tmode=r\tsize=100\tpos=0\n"
      "0.100000\topen\toid=2\tfile=2\tuser=3\tmode=q\tsize=100\tpos=0\n");
  TextTraceSource source(in);
  TraceRecord record{};
  EXPECT_TRUE(source.Next(&record));
  EXPECT_FALSE(source.Next(&record));
  EXPECT_FALSE(source.status().ok());
  EXPECT_NE(source.status().message().find("line 3"), std::string::npos)
      << source.status().message();
  // The status is sticky: further pulls keep failing.
  EXPECT_FALSE(source.Next(&record));
}

TEST(TextTraceSource, TimeMovingBackwardsFailsWithLineNumber) {
  std::istringstream in(
      "1.000000\tunlink\tfile=1\tuser=0\n"
      "0.500000\tunlink\tfile=2\tuser=0\n");
  TextTraceSource source(in);
  TraceRecord record{};
  EXPECT_TRUE(source.Next(&record));
  EXPECT_FALSE(source.Next(&record));
  EXPECT_NE(source.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(source.status().message().find("backwards"), std::string::npos);
}

TEST(TextTraceSource, HeaderCommentsAfterFirstRecordAreIgnored) {
  std::istringstream in(
      "# machine first\n"
      "0.000000\tunlink\tfile=1\tuser=0\n"
      "# machine second\n"
      "1.000000\tunlink\tfile=2\tuser=0\n");
  TextTraceSource source(in);
  EXPECT_EQ(source.header().machine, "first");
  const Trace trace = Collect(source);
  EXPECT_EQ(trace.size(), 2u);
}

TEST(TextTraceSource, MissingFileSurfacesInStatus) {
  TextTraceSource source(std::string(::testing::TempDir() + "/no_such_trace.txt"));
  TraceRecord record{};
  EXPECT_FALSE(source.Next(&record));
  EXPECT_FALSE(source.status().ok());
}

// The tentpole identity: export | import reproduces the exact record stream
// and header for each of the paper's three machines, and re-exporting is
// byte-identical.
TEST(TextTraceSource, ExportImportIsIdentityOnGeneratedTraces) {
  for (const MachineProfile& profile : {ProfileA5(), ProfileE3(), ProfileC4()}) {
    GeneratorOptions options;
    options.duration = Duration::Hours(0.05);
    options.seed = 20260809;
    const Trace trace = GenerateTraceOnly(profile, options);
    ASSERT_GT(trace.size(), 0u);

    const std::string text = ExportText(trace);
    std::istringstream in(text);
    TextTraceSource source(in);
    const Trace back = Collect(source);

    EXPECT_TRUE(back == trace) << profile.trace_name << ": records or header differ";
    EXPECT_EQ(ExportText(back), text) << profile.trace_name;
    EXPECT_EQ(source.record_lines().size(), trace.size());
  }
}

// -- strace adapter -----------------------------------------------------------

StraceImportResult ImportOk(const std::string& log) {
  std::istringstream in(log);
  StatusOr<StraceImportResult> imported = ImportStraceLog(in);
  EXPECT_TRUE(imported.ok()) << imported.status().message();
  return imported.ok() ? std::move(imported.value()) : StraceImportResult{};
}

Status ImportError(const std::string& log) {
  std::istringstream in(log);
  StatusOr<StraceImportResult> imported = ImportStraceLog(in);
  EXPECT_FALSE(imported.ok());
  return imported.status();
}

TEST(StraceImport, ReadsAdvancePositionAndBillAtClose) {
  const StraceImportResult r = ImportOk(
      "100.000001 open(\"/etc/passwd\", O_RDONLY) = 3\n"
      "100.000002 read(3, \"aaa\", 4096) = 100\n"
      "100.000003 read(3, \"bbb\", 4096) = 50\n"
      "100.000004 close(3) = 0\n");
  ASSERT_EQ(r.trace.size(), 2u);
  const TraceRecord& open = r.trace.records()[0];
  const TraceRecord& close = r.trace.records()[1];
  EXPECT_EQ(open.type, EventType::kOpen);
  EXPECT_EQ(open.mode, AccessMode::kReadOnly);
  EXPECT_EQ(open.time.micros(), 0);  // rebased so the first event is t=0
  EXPECT_EQ(close.type, EventType::kClose);
  EXPECT_EQ(close.position, 150u);  // two reads advanced the position
  EXPECT_EQ(close.size, 150u);      // size billed at close covers the bytes seen
  EXPECT_EQ(close.open_id, open.open_id);
  EXPECT_EQ(r.record_lines, (std::vector<uint64_t>{1, 4}));
}

TEST(StraceImport, SeekEmittedOnlyOnActualReposition) {
  const StraceImportResult r = ImportOk(
      "1.000001 open(\"/f\", O_RDONLY) = 3\n"
      "1.000002 read(3, \"\", 4096) = 4096\n"
      "1.000003 lseek(3, 0, SEEK_CUR) = 4096\n"   // tells the position: no event
      "1.000004 lseek(3, 100, SEEK_SET) = 100\n"  // real reposition
      "1.000005 close(3) = 0\n");
  ASSERT_EQ(r.trace.size(), 3u);
  const TraceRecord& seek = r.trace.records()[1];
  EXPECT_EQ(seek.type, EventType::kSeek);
  EXPECT_EQ(seek.seek_from, 4096u);
  EXPECT_EQ(seek.seek_to, 100u);
  EXPECT_EQ(r.trace.records()[2].position, 100u);
}

TEST(StraceImport, DupSharesOneOpenUntilLastClose) {
  const StraceImportResult r = ImportOk(
      "1.000001 open(\"/log\", O_WRONLY|O_CREAT|O_APPEND, 0644) = 3\n"
      "1.000002 dup2(3, 8) = 8\n"
      "1.000003 write(8, \"x\", 6) = 6\n"
      "1.000004 close(3) = 0\n"  // entry still live through fd 8
      "1.000005 write(8, \"y\", 6) = 6\n"
      "1.000006 close(8) = 0\n");
  // One create (unknown path + O_CREAT), one close: the dup pair is one open.
  ASSERT_EQ(r.trace.size(), 2u);
  EXPECT_EQ(r.trace.records()[0].type, EventType::kCreate);
  EXPECT_EQ(r.trace.records()[1].type, EventType::kClose);
  EXPECT_EQ(r.trace.records()[1].position, 12u);
}

TEST(StraceImport, CreateHeuristicsFollowFlagsAndNovelty) {
  const StraceImportResult r = ImportOk(
      "1.000001 creat(\"/a\", 0644) = 3\n"
      "1.000002 close(3) = 0\n"
      "1.000003 open(\"/a\", O_RDONLY) = 3\n"  // known path, no trunc: plain open
      "1.000004 close(3) = 0\n"
      "1.000005 open(\"/a\", O_WRONLY|O_TRUNC) = 3\n"  // truncating write: create
      "1.000006 close(3) = 0\n"
      "1.000007 open(\"/a\", O_RDONLY|O_CREAT, 0644) = 3\n"  // exists: open
      "1.000008 close(3) = 0\n"
      "1.000009 open(\"/b\", O_RDONLY|O_CREAT, 0644) = 3\n"  // novel: create
      "1.000010 close(3) = 0\n");
  ASSERT_EQ(r.trace.size(), 10u);
  EXPECT_EQ(r.trace.records()[0].type, EventType::kCreate);
  EXPECT_EQ(r.trace.records()[2].type, EventType::kOpen);
  EXPECT_EQ(r.trace.records()[4].type, EventType::kCreate);
  EXPECT_EQ(r.trace.records()[6].type, EventType::kOpen);
  EXPECT_EQ(r.trace.records()[8].type, EventType::kCreate);
  // /a and /b are two files.
  EXPECT_EQ(r.stats.files, 2u);
}

TEST(StraceImport, AppendOpensAtTrackedSizeAndUnlinkRetiresTheFile) {
  const StraceImportResult r = ImportOk(
      "1.000001 creat(\"/a\", 0644) = 3\n"
      "1.000002 write(3, \"x\", 10) = 10\n"
      "1.000003 close(3) = 0\n"
      "1.000004 open(\"/a\", O_WRONLY|O_APPEND) = 3\n"  // starts at size 10
      "1.000005 close(3) = 0\n"
      "1.000006 unlink(\"/a\") = 0\n"
      "1.000007 creat(\"/a\", 0644) = 3\n"  // same name, new file id
      "1.000008 close(3) = 0\n");
  ASSERT_EQ(r.trace.size(), 7u);
  const TraceRecord& append_open = r.trace.records()[2];
  EXPECT_EQ(append_open.type, EventType::kOpen);
  EXPECT_EQ(append_open.position, 10u);
  EXPECT_EQ(append_open.size, 10u);
  const FileId first = r.trace.records()[0].file_id;
  EXPECT_EQ(r.trace.records()[4].type, EventType::kUnlink);
  EXPECT_EQ(r.trace.records()[4].file_id, first);
  EXPECT_NE(r.trace.records()[5].file_id, first) << "unlinked name must re-intern fresh";
}

TEST(StraceImport, InterleavedPidsKeepSeparateFdTables) {
  const StraceImportResult r = ImportOk(
      "10  1.000001 open(\"/a\", O_RDONLY) = 3\n"
      "11  1.000002 open(\"/b\", O_RDONLY) = 3\n"  // same fd, different pid
      "10  1.000003 read(3, \"\", 100) = 100\n"
      "11  1.000004 read(3, \"\", 100) = 7\n"
      "10  1.000005 close(3) = 0\n"
      "11  1.000006 close(3) = 0\n");
  ASSERT_EQ(r.trace.size(), 4u);
  EXPECT_EQ(r.stats.pids, 2u);
  EXPECT_EQ(r.trace.records()[2].position, 100u);  // pid 10's close
  EXPECT_EQ(r.trace.records()[3].position, 7u);    // pid 11's close
  EXPECT_EQ(r.trace.records()[0].user_id, 10u);
  EXPECT_EQ(r.trace.records()[1].user_id, 11u);
}

TEST(StraceImport, UnfinishedResumedPairsJoinAcrossInterleavings) {
  const StraceImportResult r = ImportOk(
      "10  1.000001 open(\"/a\", O_RDONLY) = 3\n"
      "10  1.000002 read(3,  <unfinished ...>\n"
      "11  1.000003 open(\"/b\", O_RDONLY) = 3\n"
      "10  1.000004 <... read resumed> \"zz\", 4096) = 4096\n"
      "10  1.000005 close(3) = 0\n"
      "11  1.000006 close(3) = 0\n");
  ASSERT_EQ(r.trace.size(), 4u);
  EXPECT_EQ(r.stats.resumed_joined, 1u);
  EXPECT_EQ(r.trace.records()[2].position, 4096u);  // pid 10's close saw the read
}

TEST(StraceImport, NoiseLinesAndFailedCallsAreSkipped) {
  const StraceImportResult r = ImportOk(
      "1.000001 open(\"/gone\", O_RDONLY) = -1 ENOENT (No such file or directory)\n"
      "1.000002 --- SIGCHLD {si_signo=SIGCHLD} ---\n"
      "1.000003 open(\"/a\", O_RDONLY) = 3\n"
      "1.000004 fstat(3, {st_mode=S_IFREG|0644}) = 0\n"  // untracked syscall
      "1.000005 close(3) = 0\n"
      "1.000006 +++ exited with 0 +++\n");
  EXPECT_EQ(r.trace.size(), 2u);
  EXPECT_EQ(r.stats.failed_calls, 1u);
  EXPECT_EQ(r.stats.ignored_lines, 3u);
}

TEST(StraceImport, UnknownFdSynthesizesAnOpen) {
  const StraceImportResult r = ImportOk(
      "1.000001 read(7, \"inherited\", 256) = 256\n"
      "1.000002 close(7) = 0\n"
      "1.000003 write(1, \"tty\", 3) = 3\n"  // stdio: ignored entirely
      "1.000004 close(0) = 0\n");
  ASSERT_EQ(r.trace.size(), 2u);
  EXPECT_EQ(r.stats.synthesized_opens, 1u);
  EXPECT_EQ(r.trace.records()[0].type, EventType::kOpen);
  EXPECT_EQ(r.trace.records()[1].position, 256u);
}

TEST(StraceImport, GarbageFailsWithLineNumber) {
  const Status s = ImportError(
      "1.000001 open(\"/a\", O_RDONLY) = 3\n"
      "1.000002 close(3) = 0\n"
      "total garbage, not an strace line\n");
  EXPECT_NE(s.message().find("line 3"), std::string::npos) << s.message();
}

TEST(StraceImport, TruncatedSyscallFailsWithLineNumber) {
  const Status s = ImportError("1.000001 open(\"/a\", O_RDON");
  EXPECT_NE(s.message().find("line 1"), std::string::npos) << s.message();
  const Status s2 = ImportError("1.000001 open(\"/a\", O_RDONLY)\n");
  EXPECT_NE(s2.message().find("return value"), std::string::npos) << s2.message();
  const Status s3 = ImportError("notatime open(\"/a\", O_RDONLY) = 3\n");
  EXPECT_NE(s3.message().find("timestamp"), std::string::npos) << s3.message();
}

// The checked-in 200-line fixture must import, validate cleanly under the
// hardened validator with line numbers attached, and carry the documented
// shape (two pids, one synthesized open, one resumed join).
TEST(StraceImport, SampleFixtureImportsAndValidates) {
  std::ifstream in(std::string(BSDTRACE_TEST_DATA_DIR) + "/sample.strace");
  ASSERT_TRUE(in.is_open()) << "missing " << BSDTRACE_TEST_DATA_DIR << "/sample.strace";
  StatusOr<StraceImportResult> imported = ImportStraceLog(in);
  ASSERT_TRUE(imported.ok()) << imported.status().message();
  const StraceImportResult& r = imported.value();
  EXPECT_EQ(r.stats.lines, 200u);
  EXPECT_EQ(r.stats.pids, 2u);
  EXPECT_EQ(r.stats.synthesized_opens, 1u);
  EXPECT_EQ(r.stats.resumed_joined, 1u);
  EXPECT_GT(r.trace.size(), 100u);

  ValidateTraceOptions options;
  options.line_numbers = &r.record_lines;
  options.render_records = true;
  const ValidationResult v = ValidateTrace(r.trace, options);
  EXPECT_TRUE(v.ok()) << v.Summary();
}

// -- mutation drill -----------------------------------------------------------

// Randomly corrupts a valid input and re-parses it.  The contract under
// fire: the importer either succeeds or returns a Status — it never crashes,
// and (for bsdtxt) whatever it does accept still round-trips exactly.
TEST(ImportFuzz, MutatedInputsNeverCrashTheImporters) {
  GeneratorOptions options;
  options.duration = Duration::Hours(0.02);
  options.seed = 7;
  const std::string text = ExportText(GenerateTraceOnly(ProfileA5(), options));

  std::ifstream fixture_in(std::string(BSDTRACE_TEST_DATA_DIR) + "/sample.strace");
  ASSERT_TRUE(fixture_in.is_open());
  std::ostringstream fixture_buf;
  fixture_buf << fixture_in.rdbuf();
  const std::string strace_log = fixture_buf.str();

  Rng rng(20260809);
  const auto mutate = [&rng](std::string s) {
    const int mutations = static_cast<int>(rng.UniformInt(1, 8));
    for (int i = 0; i < mutations; ++i) {
      if (s.empty()) {
        break;
      }
      const size_t at = static_cast<size_t>(rng.UniformInt(0, static_cast<int>(s.size()) - 1));
      switch (rng.UniformInt(0, 3)) {
        case 0:
          s[at] = static_cast<char>(rng.UniformInt(32, 126));
          break;
        case 1:
          s.erase(at, static_cast<size_t>(rng.UniformInt(1, 16)));
          break;
        case 2:
          s.insert(at, std::string(static_cast<size_t>(rng.UniformInt(1, 8)),
                                   static_cast<char>(rng.UniformInt(32, 126))));
          break;
        default:
          s.resize(at);  // truncate: simulates a clipped log
          break;
      }
    }
    return s;
  };

  for (int round = 0; round < 200; ++round) {
    {
      std::istringstream in(mutate(text));
      TextTraceSource source(in);
      Trace trace(source.header());
      TraceRecord record{};
      while (source.Next(&record)) {
        trace.Append(record);
      }
      if (source.status().ok()) {
        // Whatever survived mutation still round-trips byte-exactly.
        std::istringstream again(ExportText(trace));
        TextTraceSource source2(again);
        const Trace back = Collect(source2);
        EXPECT_TRUE(back.records() == trace.records());
        ValidateTrace(trace, ValidateTraceOptions{});  // must not crash either
      }
    }
    {
      std::istringstream in(mutate(strace_log));
      StatusOr<StraceImportResult> imported = ImportStraceLog(in);
      if (imported.ok()) {
        ValidateTraceOptions voptions;
        voptions.line_numbers = &imported.value().record_lines;
        ValidateTrace(imported.value().trace, voptions);
      }
    }
  }
}

}  // namespace
}  // namespace bsdtrace
