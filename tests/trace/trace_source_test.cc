#include "src/trace/trace_source.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/trace/trace_io.h"
#include "src/trace/trace_merge.h"
#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

// A unique temp-file path per test; removed by the fixture-less tests
// themselves via ScopedPath.
class ScopedPath {
 public:
  explicit ScopedPath(const std::string& stem)
      : path_((std::filesystem::temp_directory_path() /
               ("bsdtrace-source-test-" + stem + ".trc"))
                  .string()) {
    std::remove(path_.c_str());
  }
  ~ScopedPath() { std::remove(path_.c_str()); }
  const std::string& get() const { return path_; }

 private:
  std::string path_;
};

Trace SampleTrace() {
  TraceBuilder b;
  b.Open(0.01, 1, 100, 4096, AccessMode::kReadOnly, 5)
      .Seek(0.02, 1, 100, 1024, 2048)
      .Close(0.03, 1, 100, 4096, 4096)
      .Create(0.04, 2, 101, AccessMode::kWriteOnly, 5)
      .Close(0.05, 2, 101, 512, 512)
      .Unlink(0.06, 101, 5)
      .Truncate(0.07, 100, 128, 5)
      .Execve(0.08, 102, 8192, 5);
  Trace t = b.Build();
  t.header().machine = "testbox";
  t.header().description = "sample";
  return t;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// LEB128, as the binary codec writes it.
void AppendVarint(std::string* out, uint64_t v) {
  do {
    uint8_t byte = v & 0x7f;
    v >>= 7;
    if (v != 0) {
      byte |= 0x80;
    }
    out->push_back(static_cast<char>(byte));
  } while (v != 0);
}

// A v2 file with no records whose header declares `declared_count` records.
std::string V2FileWithDeclaredCount(uint64_t declared_count) {
  std::string bytes = "BSDTRC2\n";
  AppendVarint(&bytes, 1);  // machine "m"
  bytes += "m";
  AppendVarint(&bytes, 0);  // empty description
  AppendVarint(&bytes, declared_count + 1);
  bytes.push_back('\0');  // end sentinel
  return bytes;
}

// -- TraceVectorSource / CollectTrace ----------------------------------------

TEST(TraceVectorSource, StreamsHeaderAndRecords) {
  const Trace trace = SampleTrace();
  TraceVectorSource source(trace);
  EXPECT_EQ(source.header(), trace.header());
  EXPECT_EQ(source.size_hint(), static_cast<int64_t>(trace.size()));

  auto collected = CollectTrace(source);
  ASSERT_TRUE(collected.ok()) << collected.status().message();
  EXPECT_EQ(collected.value(), trace);
  // Exhausted: further Next() calls keep returning false, status stays ok.
  TraceRecord r;
  EXPECT_FALSE(source.Next(&r));
  EXPECT_TRUE(source.status().ok());
}

// -- TraceFileSource ----------------------------------------------------------

TEST(TraceFileSource, RoundTripsThroughSaveTrace) {
  const Trace trace = SampleTrace();
  ScopedPath path("roundtrip");
  ASSERT_TRUE(SaveTrace(path.get(), trace).ok());

  TraceFileSource source(path.get());
  ASSERT_TRUE(source.status().ok()) << source.status().message();
  EXPECT_EQ(source.size_hint(), static_cast<int64_t>(trace.size()));
  auto collected = CollectTrace(source);
  ASSERT_TRUE(collected.ok()) << collected.status().message();
  EXPECT_EQ(collected.value(), trace);
}

TEST(TraceFileSource, MissingFileIsCleanError) {
  TraceFileSource source("/nonexistent/bsdtrace-no-such-file.trc");
  EXPECT_FALSE(source.status().ok());
  TraceRecord r;
  EXPECT_FALSE(source.Next(&r));
  EXPECT_FALSE(source.status().ok());
}

TEST(TraceFileSource, BadMagicIsCleanError) {
  ScopedPath path("badmagic");
  WriteFileBytes(path.get(), "definitely not a trace file at all");
  TraceFileSource source(path.get());
  EXPECT_FALSE(source.status().ok());
  EXPECT_NE(source.status().message().find("bad magic"), std::string::npos)
      << source.status().message();
}

TEST(TraceFileSource, TruncatedMidRecordIsDiagnosticError) {
  const Trace trace = SampleTrace();
  ScopedPath path("truncated");
  ASSERT_TRUE(SaveTrace(path.get(), trace).ok());
  const std::string bytes = ReadFileBytes(path.get());
  // Cut inside the last record's body (well past the header, before the
  // sentinel and the record's final fields).
  WriteFileBytes(path.get(), bytes.substr(0, bytes.size() - 4));

  TraceFileSource source(path.get());
  ASSERT_TRUE(source.status().ok());
  TraceRecord r;
  while (source.Next(&r)) {
  }
  EXPECT_FALSE(source.status().ok());
  EXPECT_NE(source.status().message().find("truncated"), std::string::npos)
      << source.status().message();

  // The whole-file loader surfaces the same diagnostic.
  auto loaded = LoadTrace(path.get());
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("truncated"), std::string::npos);
}

TEST(TraceFileSource, MissingEndSentinelIsCleanError) {
  const Trace trace = SampleTrace();
  ScopedPath path("nosentinel");
  ASSERT_TRUE(SaveTrace(path.get(), trace).ok());
  const std::string bytes = ReadFileBytes(path.get());
  WriteFileBytes(path.get(), bytes.substr(0, bytes.size() - 1));

  TraceFileSource source(path.get());
  TraceRecord r;
  while (source.Next(&r)) {
  }
  EXPECT_FALSE(source.status().ok());
  EXPECT_NE(source.status().message().find("end sentinel"), std::string::npos)
      << source.status().message();
}

TEST(TraceFileSource, LyingHeaderCountIsClampedToFileSize) {
  // Header claims ~10^15 records in a file a few dozen bytes long.  The
  // size hint must be bounded by what the file could actually hold, so a
  // consumer can reserve() it without an OOM.
  ScopedPath path("lying");
  WriteFileBytes(path.get(), V2FileWithDeclaredCount(uint64_t{1} << 50));

  TraceFileSource source(path.get());
  ASSERT_TRUE(source.status().ok()) << source.status().message();
  EXPECT_LE(source.size_hint(),
            static_cast<int64_t>(std::filesystem::file_size(path.get())));

  // The stream itself is well-formed (zero records); loading must succeed
  // rather than try to reserve petabytes.
  auto loaded = LoadTrace(path.get());
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_TRUE(loaded.value().empty());
}

TEST(ReadBinaryTrace, LyingHeaderCountIsClampedOnIstreams) {
  std::istringstream in(V2FileWithDeclaredCount(uint64_t{1} << 50));
  auto loaded = ReadBinaryTrace(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_TRUE(loaded.value().empty());
}

TEST(ReadBinaryTrace, ShortVarintHeaderIsCleanError) {
  // Magic plus half a varint: length byte promising more data than exists.
  std::string bytes = "BSDTRC2\n";
  bytes.push_back(static_cast<char>(0x85));  // continuation bit set, then EOF
  std::istringstream in(bytes);
  auto loaded = ReadBinaryTrace(in);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("truncated"), std::string::npos)
      << loaded.status().message();
}

// -- SaveTrace(TraceSource&) --------------------------------------------------

TEST(SaveTrace, SourceOverloadIsByteIdenticalToTraceOverload) {
  const Trace trace = SampleTrace();
  ScopedPath direct("save-direct");
  ScopedPath streamed("save-streamed");
  ASSERT_TRUE(SaveTrace(direct.get(), trace).ok());

  TraceVectorSource source(trace);
  ASSERT_TRUE(SaveTrace(streamed.get(), source).ok());
  EXPECT_EQ(ReadFileBytes(direct.get()), ReadFileBytes(streamed.get()));
}

// -- MergingTraceSource -------------------------------------------------------

std::unique_ptr<TraceSource> VectorSourceOwning(Trace trace) {
  // Test-local adapter: owns the trace it streams.
  struct Owning : TraceSource {
    explicit Owning(Trace t) : trace(std::move(t)), source(trace) {}
    const TraceHeader& header() const override { return source.header(); }
    bool Next(TraceRecord* r) override { return source.Next(r); }
    Status status() const override { return source.status(); }
    int64_t size_hint() const override { return source.size_hint(); }
    Trace trace;
    TraceVectorSource source;
  };
  return std::make_unique<Owning>(std::move(trace));
}

TEST(MergingTraceSource, MergesByTimeWithStableInputTieBreak) {
  TraceBuilder a, b, c;
  a.Unlink(1.0, 10).Unlink(3.0, 11).Unlink(3.0, 12);
  b.Unlink(2.0, 20).Unlink(3.0, 21);
  c.Unlink(0.5, 30).Unlink(3.0, 31).Unlink(9.0, 32);

  std::vector<std::unique_ptr<TraceSource>> inputs;
  inputs.push_back(VectorSourceOwning(a.Build()));
  inputs.push_back(VectorSourceOwning(b.Build()));
  inputs.push_back(VectorSourceOwning(c.Build()));
  MergingTraceSource merge(std::move(inputs), TraceHeader{.machine = "merged", .description = ""});
  EXPECT_EQ(merge.size_hint(), 8);
  EXPECT_EQ(merge.header().machine, "merged");

  auto collected = CollectTrace(merge);
  ASSERT_TRUE(collected.ok()) << collected.status().message();
  std::vector<FileId> order;
  for (const TraceRecord& r : collected.value().records()) {
    order.push_back(r.file_id);
  }
  // Time order, and at t=3.0 the tie breaks input 0, then 1, then 2 — with
  // input 0's own two t=3.0 records kept in their original order.
  EXPECT_EQ(order, (std::vector<FileId>{30, 10, 20, 11, 12, 21, 31, 32}));
}

TEST(MergingTraceSource, HandlesEmptyAndSingleInputs) {
  MergingTraceSource empty({}, TraceHeader{});
  TraceRecord r;
  EXPECT_FALSE(empty.Next(&r));
  EXPECT_TRUE(empty.status().ok());

  TraceBuilder only;
  only.Unlink(1.0, 1).Unlink(2.0, 2);
  std::vector<std::unique_ptr<TraceSource>> one;
  one.push_back(VectorSourceOwning(only.Build()));
  // An exhausted-from-the-start input alongside it must not wedge the tree.
  one.push_back(VectorSourceOwning(Trace{}));
  MergingTraceSource merge(std::move(one), TraceHeader{});
  auto collected = CollectTrace(merge);
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(collected.value().size(), 2u);
}

TEST(MergingTraceSource, RewriteSeesCorrectInputIndex) {
  TraceBuilder a, b;
  a.Unlink(1.0, 100).Unlink(3.0, 100);
  b.Unlink(2.0, 100);

  std::vector<std::unique_ptr<TraceSource>> inputs;
  inputs.push_back(VectorSourceOwning(a.Build()));
  inputs.push_back(VectorSourceOwning(b.Build()));
  MergingTraceSource merge(std::move(inputs), TraceHeader{},
                           [](size_t input, TraceRecord& r) {
                             r.file_id = 1000 + static_cast<FileId>(input);
                           });
  auto collected = CollectTrace(merge);
  ASSERT_TRUE(collected.ok());
  std::vector<FileId> ids;
  for (const TraceRecord& r : collected.value().records()) {
    ids.push_back(r.file_id);
  }
  EXPECT_EQ(ids, (std::vector<FileId>{1000, 1001, 1000}));
}

TEST(MergingTraceSource, PropagatesTruncatedInputError) {
  // One good spill file, one truncated mid-record: the merge must stop with
  // the truncated input's diagnostic rather than emit a silently short
  // stream.
  TraceBuilder good, bad;
  good.Unlink(1.0, 1).Unlink(5.0, 2);
  bad.Unlink(2.0, 3).Unlink(3.0, 4).Unlink(4.0, 5);

  ScopedPath good_path("merge-good");
  ScopedPath bad_path("merge-bad");
  ASSERT_TRUE(SaveTrace(good_path.get(), good.Build()).ok());
  ASSERT_TRUE(SaveTrace(bad_path.get(), bad.Build()).ok());
  const std::string bytes = ReadFileBytes(bad_path.get());
  WriteFileBytes(bad_path.get(), bytes.substr(0, bytes.size() - 3));

  std::vector<std::unique_ptr<TraceSource>> inputs;
  inputs.push_back(std::make_unique<TraceFileSource>(good_path.get()));
  inputs.push_back(std::make_unique<TraceFileSource>(bad_path.get()));
  MergingTraceSource merge(std::move(inputs), TraceHeader{});

  TraceRecord r;
  while (merge.Next(&r)) {
  }
  EXPECT_FALSE(merge.status().ok());
  EXPECT_NE(merge.status().message().find("truncated"), std::string::npos)
      << merge.status().message();

  auto collected = CollectTrace(merge);
  EXPECT_FALSE(collected.ok());
}

TEST(MergingTraceSource, ManyInputsStressOrder) {
  // 13 inputs (a non-power-of-two loser tree) with interleaved times; the
  // merged stream must be globally sorted and complete.
  std::vector<std::unique_ptr<TraceSource>> inputs;
  size_t total = 0;
  for (int i = 0; i < 13; ++i) {
    TraceBuilder b;
    for (int j = 0; j < 17; ++j) {
      b.Unlink(0.1 * static_cast<double>((j * 13 + i) % 40) + 1.0,
               static_cast<FileId>(100 * i + j));
      ++total;
    }
    Trace t = b.Build();
    std::stable_sort(t.records().begin(), t.records().end(),
                     [](const TraceRecord& x, const TraceRecord& y) {
                       return x.time < y.time;
                     });
    inputs.push_back(VectorSourceOwning(std::move(t)));
  }
  MergingTraceSource merge(std::move(inputs), TraceHeader{});
  auto collected = CollectTrace(merge);
  ASSERT_TRUE(collected.ok());
  ASSERT_EQ(collected.value().size(), total);
  const auto& records = collected.value().records();
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].time, records[i].time) << "out of order at " << i;
  }
}

}  // namespace
}  // namespace bsdtrace
