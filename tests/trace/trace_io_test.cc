#include "src/trace/trace_io.h"

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "src/util/rng.h"
#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

Trace SampleTrace() {
  TraceBuilder b;
  b.Open(0.01, 1, 100, 4096, AccessMode::kReadOnly, 5)
      .Seek(0.02, 1, 100, 1024, 2048)
      .Close(0.03, 1, 100, 4096, 4096)
      .Create(0.04, 2, 101, AccessMode::kWriteOnly, 5)
      .Close(0.05, 2, 101, 512, 512)
      .Unlink(0.06, 101, 5)
      .Truncate(0.07, 100, 128, 5)
      .Execve(0.08, 102, 8192, 5);
  Trace t = b.Build();
  t.header().machine = "testbox";
  t.header().description = "sample";
  return t;
}

// Random record stream for round-trip property tests.
Trace RandomTrace(uint64_t seed, size_t n) {
  Rng rng(seed);
  Trace t(TraceHeader{.machine = "rand", .description = "fuzz"});
  int64_t time_us = 0;
  for (size_t i = 0; i < n; ++i) {
    time_us += rng.UniformInt(0, 1'000'000);
    const SimTime now = SimTime::FromMicros(time_us);
    const auto oid = static_cast<OpenId>(rng.UniformInt(1, 1000));
    const auto file = static_cast<FileId>(rng.UniformInt(1, 500));
    const auto user = static_cast<UserId>(rng.UniformInt(0, 50));
    const auto mode = static_cast<AccessMode>(rng.UniformInt(0, 2));
    const auto big = static_cast<uint64_t>(rng.UniformInt(0, 1 << 30));
    switch (rng.UniformInt(0, 6)) {
      case 0:
        t.Append(MakeOpen(now, oid, file, user, mode, big, big / 2));
        break;
      case 1:
        t.Append(MakeCreate(now, oid, file, user, mode));
        break;
      case 2:
        t.Append(MakeClose(now, oid, file, big / 2, big));
        break;
      case 3:
        t.Append(MakeSeek(now, oid, file, big / 3, big));
        break;
      case 4:
        t.Append(MakeUnlink(now, file, user));
        break;
      case 5:
        t.Append(MakeTruncate(now, file, user, big));
        break;
      default:
        t.Append(MakeExecve(now, file, user, big));
        break;
    }
  }
  return t;
}

TEST(BinaryTraceIo, RoundTripSample) {
  const Trace original = SampleTrace();
  std::stringstream buf;
  WriteBinaryTrace(buf, original);
  auto loaded = ReadBinaryTrace(buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value(), original);
}

TEST(BinaryTraceIo, EmptyTraceRoundTrips) {
  Trace empty(TraceHeader{.machine = "m", .description = ""});
  std::stringstream buf;
  WriteBinaryTrace(buf, empty);
  auto loaded = ReadBinaryTrace(buf);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 0u);
  EXPECT_EQ(loaded.value().header().machine, "m");
}

TEST(BinaryTraceIo, StreamingWriterCountsRecords) {
  std::stringstream buf;
  BinaryTraceWriter writer(buf, TraceHeader{});
  writer.Append(MakeUnlink(SimTime::FromSeconds(1), 1, 1));
  writer.Append(MakeUnlink(SimTime::FromSeconds(2), 2, 1));
  EXPECT_EQ(writer.records_written(), 2u);
  writer.Finish();
}

TEST(BinaryTraceIo, StreamingReaderDeliversInOrder) {
  const Trace original = SampleTrace();
  std::stringstream buf;
  WriteBinaryTrace(buf, original);
  BinaryTraceReader reader(buf);
  ASSERT_TRUE(reader.status().ok());
  EXPECT_EQ(reader.header().machine, "testbox");
  TraceRecord r;
  size_t i = 0;
  while (reader.Next(&r)) {
    ASSERT_LT(i, original.size());
    EXPECT_EQ(r, original.records()[i]);
    ++i;
  }
  EXPECT_TRUE(reader.status().ok()) << reader.status().message();
  EXPECT_EQ(i, original.size());
}

TEST(BinaryTraceIo, HeaderDeclaresRecordCount) {
  const Trace original = SampleTrace();
  std::stringstream buf;
  WriteBinaryTrace(buf, original);
  BinaryTraceReader reader(buf);
  ASSERT_TRUE(reader.status().ok());
  EXPECT_EQ(reader.declared_record_count(), static_cast<int64_t>(original.size()));
}

TEST(BinaryTraceIo, StreamingWriterDeclaresUnknownCount) {
  std::stringstream buf;
  {
    BinaryTraceWriter writer(buf, TraceHeader{});  // count not known up front
    writer.Append(MakeUnlink(SimTime::FromSeconds(1), 1, 1));
    writer.Finish();
  }
  BinaryTraceReader reader(buf);
  ASSERT_TRUE(reader.status().ok());
  EXPECT_EQ(reader.declared_record_count(), -1);
  TraceRecord r;
  EXPECT_TRUE(reader.Next(&r));
  EXPECT_FALSE(reader.Next(&r));
  EXPECT_TRUE(reader.status().ok());
}

TEST(BinaryTraceIo, ReadsVersion1FilesWithoutCount) {
  // Hand-encoded v1 stream: old magic, machine "m", empty description, end
  // sentinel — no record-count varint.
  const std::string v1 = std::string("BSDTRC1\n") + '\x01' + 'm' + '\x00' + '\x00';
  std::stringstream buf(v1);
  auto loaded = ReadBinaryTrace(buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().header().machine, "m");
  EXPECT_EQ(loaded.value().size(), 0u);
}

TEST(BinaryTraceIo, RejectsBadMagic) {
  std::stringstream buf("not a trace at all");
  auto loaded = ReadBinaryTrace(buf);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("magic"), std::string::npos);
}

TEST(BinaryTraceIo, RejectsTruncatedHeader) {
  const Trace original = SampleTrace();
  std::stringstream buf;
  WriteBinaryTrace(buf, original);
  std::string data = buf.str();
  std::stringstream cut(data.substr(0, 9));  // magic + 1 byte
  auto loaded = ReadBinaryTrace(cut);
  EXPECT_FALSE(loaded.ok());
}

TEST(BinaryTraceIo, RejectsTruncatedBody) {
  const Trace original = SampleTrace();
  std::stringstream buf;
  WriteBinaryTrace(buf, original);
  std::string data = buf.str();
  // Drop the trailing sentinel plus a few bytes of the last record.
  std::stringstream cut(data.substr(0, data.size() - 4));
  auto loaded = ReadBinaryTrace(cut);
  EXPECT_FALSE(loaded.ok());
}

TEST(BinaryTraceIo, RejectsCorruptEventType) {
  const Trace original = SampleTrace();
  std::stringstream buf;
  WriteBinaryTrace(buf, original);
  std::string data = buf.str();
  // The first record's type byte follows the header; smash it.
  // magic + len+machine + len+desc + record count varint
  const size_t header_size = 8 + 1 + 7 + 1 + 6 + 1;
  data[header_size] = static_cast<char>(0x7E);
  std::stringstream bad(data);
  auto loaded = ReadBinaryTrace(bad);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("unknown event type"), std::string::npos);
}

TEST(TextTraceIo, RoundTripSample) {
  const Trace original = SampleTrace();
  std::stringstream buf;
  WriteTextTrace(buf, original);
  auto loaded = ReadTextTrace(buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().header().machine, "testbox");
  ASSERT_EQ(loaded.value().size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    // Text timestamps are microsecond-precision; compare fieldwise.
    EXPECT_EQ(loaded.value().records()[i], original.records()[i]) << "record " << i;
  }
}

TEST(TextTraceIo, RejectsGarbageLine) {
  std::stringstream buf("0.5\tfrobnicate\tx=1\n");
  auto loaded = ReadTextTrace(buf);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 1"), std::string::npos);
}

TEST(TextTraceIo, RejectsBadTimestamp) {
  std::stringstream buf("abc\topen\toid=1\tfile=2\tuser=3\tmode=r\tsize=0\tpos=0\n");
  EXPECT_FALSE(ReadTextTrace(buf).ok());
}

TEST(TextTraceIo, RejectsMissingFields) {
  std::stringstream buf("1.0\tclose\toid=1\n");
  EXPECT_FALSE(ReadTextTrace(buf).ok());
}

TEST(TextTraceIo, SkipsBlankLinesAndComments) {
  std::stringstream buf("# machine foo\n\n# description a b c\n1.0\tunlink\tfile=5\tuser=2\n");
  auto loaded = ReadTextTrace(buf);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().header().machine, "foo");
  EXPECT_EQ(loaded.value().header().description, "a b c");
  EXPECT_EQ(loaded.value().size(), 1u);
}

TEST(TraceFileIo, SaveAndLoad) {
  const std::string path = ::testing::TempDir() + "/bsdtrace_io_test.trace";
  const Trace original = SampleTrace();
  ASSERT_TRUE(SaveTrace(path, original).ok());
  auto loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), original);
  std::remove(path.c_str());
}

TEST(TraceFileIo, LoadMissingFileFails) {
  auto loaded = LoadTrace("/nonexistent/dir/nothing.trace");
  EXPECT_FALSE(loaded.ok());
}

TEST(TraceFileIo, SaveToBadPathFails) {
  EXPECT_FALSE(SaveTrace("/nonexistent/dir/out.trace", SampleTrace()).ok());
}

// Property: binary round trip is the identity for arbitrary record streams.
class BinaryRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BinaryRoundTripProperty, Identity) {
  const Trace original = RandomTrace(GetParam(), 500);
  std::stringstream buf;
  WriteBinaryTrace(buf, original);
  auto loaded = ReadBinaryTrace(buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value(), original);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryRoundTripProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Property: the binary encoding is compact (well under the naive struct size;
// the paper cared about trace volume).
TEST(BinaryTraceIo, EncodingIsCompact) {
  const Trace t = RandomTrace(99, 2000);
  std::stringstream buf;
  WriteBinaryTrace(buf, t);
  EXPECT_LT(buf.str().size(), t.size() * sizeof(TraceRecord) / 2);
}

}  // namespace
}  // namespace bsdtrace
