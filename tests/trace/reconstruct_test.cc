#include "src/trace/reconstruct.h"

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/rng.h"
#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

// Collects everything the reconstructor emits.
struct CollectSink : ReconstructionSink {
  std::vector<Transfer> transfers;
  std::vector<AccessSummary> accesses;
  std::vector<TraceRecord> records;

  void OnTransfer(const Transfer& t) override { transfers.push_back(t); }
  void OnAccess(const AccessSummary& a) override { accesses.push_back(a); }
  void OnRecord(const TraceRecord& r) override { records.push_back(r); }
};

CollectSink RunTrace(const Trace& trace) {
  CollectSink sink;
  Reconstruct(trace, &sink);
  return sink;
}

TEST(Reconstruct, WholeFileReadProducesOneRun) {
  const auto sink = RunTrace(TraceBuilder().WholeRead(1, 2, 1, 10, 4096).Build());
  ASSERT_EQ(sink.transfers.size(), 1u);
  const Transfer& t = sink.transfers[0];
  EXPECT_EQ(t.offset, 0u);
  EXPECT_EQ(t.length, 4096u);
  EXPECT_EQ(t.direction, TransferDirection::kRead);
  EXPECT_EQ(t.time.seconds(), 2.0);  // billed at the close (§3.1)
  ASSERT_EQ(sink.accesses.size(), 1u);
  EXPECT_TRUE(sink.accesses[0].whole_file);
  EXPECT_TRUE(sink.accesses[0].sequential);
  EXPECT_EQ(sink.accesses[0].bytes_transferred, 4096u);
}

TEST(Reconstruct, WholeFileWriteViaCreate) {
  const auto sink = RunTrace(TraceBuilder().WholeWrite(1, 2, 1, 10, 512).Build());
  ASSERT_EQ(sink.transfers.size(), 1u);
  EXPECT_EQ(sink.transfers[0].direction, TransferDirection::kWrite);
  ASSERT_EQ(sink.accesses.size(), 1u);
  EXPECT_TRUE(sink.accesses[0].whole_file);
  EXPECT_TRUE(sink.accesses[0].created);
}

TEST(Reconstruct, SeekSplitsRunsAndBillsAtSeek) {
  // Read 0..1024, seek to 8192, read to 9216, close.
  const auto sink = RunTrace(TraceBuilder()
                            .Open(1, 1, 10, 16384)
                            .Seek(2, 1, 10, 1024, 8192)
                            .Close(3, 1, 10, 9216, 16384)
                            .Build());
  ASSERT_EQ(sink.transfers.size(), 2u);
  EXPECT_EQ(sink.transfers[0].offset, 0u);
  EXPECT_EQ(sink.transfers[0].length, 1024u);
  EXPECT_EQ(sink.transfers[0].time.seconds(), 2.0);  // billed at the seek
  EXPECT_EQ(sink.transfers[1].offset, 8192u);
  EXPECT_EQ(sink.transfers[1].length, 1024u);
  EXPECT_EQ(sink.transfers[1].time.seconds(), 3.0);  // billed at the close
  const AccessSummary& a = sink.accesses.at(0);
  EXPECT_FALSE(a.whole_file);
  EXPECT_FALSE(a.sequential);  // bytes moved before the reposition
  EXPECT_EQ(a.run_count, 2u);
  EXPECT_EQ(a.seek_count, 1u);
}

TEST(Reconstruct, InitialRepositionIsSequential) {
  // The paper's mailbox append: open, seek to end before any transfer, write.
  const auto sink = RunTrace(TraceBuilder()
                            .Open(1, 1, 10, 1000, AccessMode::kWriteOnly)
                            .Seek(2, 1, 10, 0, 1000)
                            .Close(3, 1, 10, 1200, 1200)
                            .Build());
  ASSERT_EQ(sink.accesses.size(), 1u);
  EXPECT_TRUE(sink.accesses[0].sequential);
  EXPECT_FALSE(sink.accesses[0].whole_file);
  ASSERT_EQ(sink.transfers.size(), 1u);
  EXPECT_EQ(sink.transfers[0].offset, 1000u);
  EXPECT_EQ(sink.transfers[0].length, 200u);
}

TEST(Reconstruct, AppendViaInitialPositionIsSequentialNotWhole) {
  const auto sink = RunTrace(TraceBuilder()
                            .Open(1, 1, 10, 1000, AccessMode::kWriteOnly, 1, 1000)
                            .Close(2, 1, 10, 1500, 1500)
                            .Build());
  ASSERT_EQ(sink.accesses.size(), 1u);
  EXPECT_TRUE(sink.accesses[0].sequential);
  EXPECT_FALSE(sink.accesses[0].whole_file);
  EXPECT_EQ(sink.accesses[0].bytes_transferred, 500u);
}

TEST(Reconstruct, PartialReadFromZeroIsSequentialNotWhole) {
  const auto sink =
      RunTrace(TraceBuilder().Open(1, 1, 10, 4096).Close(2, 1, 10, 1024, 4096).Build());
  ASSERT_EQ(sink.accesses.size(), 1u);
  EXPECT_TRUE(sink.accesses[0].sequential);
  EXPECT_FALSE(sink.accesses[0].whole_file);
}

TEST(Reconstruct, ZeroByteAccess) {
  const auto sink =
      RunTrace(TraceBuilder().Open(1, 1, 10, 4096).Close(2, 1, 10, 0, 4096).Build());
  EXPECT_TRUE(sink.transfers.empty());
  ASSERT_EQ(sink.accesses.size(), 1u);
  EXPECT_EQ(sink.accesses[0].bytes_transferred, 0u);
  EXPECT_FALSE(sink.accesses[0].whole_file);
  EXPECT_TRUE(sink.accesses[0].sequential);
}

TEST(Reconstruct, EmptyFileWholeRead) {
  const auto sink =
      RunTrace(TraceBuilder().Open(1, 1, 10, 0).Close(2, 1, 10, 0, 0).Build());
  ASSERT_EQ(sink.accesses.size(), 1u);
  EXPECT_TRUE(sink.accesses[0].whole_file);  // trivially whole
}

TEST(Reconstruct, MultiSeekNonSequential) {
  const auto sink = RunTrace(TraceBuilder()
                            .Open(1, 1, 10, 100000, AccessMode::kReadWrite)
                            .Seek(2, 1, 10, 0, 5000)
                            .Seek(3, 1, 10, 6000, 20000)
                            .Close(4, 1, 10, 21000, 100000)
                            .Build());
  const AccessSummary& a = sink.accesses.at(0);
  EXPECT_FALSE(a.sequential);
  EXPECT_EQ(a.seek_count, 2u);
  EXPECT_EQ(a.run_count, 2u);
  EXPECT_EQ(a.bytes_transferred, 2000u);
}

TEST(Reconstruct, ReadWriteDirectionHeuristic) {
  // A read-write open: runs beyond the size-at-open are writes.
  const auto sink = RunTrace(TraceBuilder()
                            .Open(1, 1, 10, 1000, AccessMode::kReadWrite)
                            .Seek(2, 1, 10, 500, 1000)
                            .Close(3, 1, 10, 1400, 1400)
                            .Build());
  ASSERT_EQ(sink.transfers.size(), 2u);
  EXPECT_EQ(sink.transfers[0].direction, TransferDirection::kRead);   // 0..500
  EXPECT_EQ(sink.transfers[1].direction, TransferDirection::kWrite);  // 1000..1400
}

TEST(Reconstruct, ConcurrentOpensOfSameFileIndependent) {
  const auto sink = RunTrace(TraceBuilder()
                            .Open(1, 1, 10, 4096)
                            .Open(1.5, 2, 10, 4096)
                            .Close(2, 1, 10, 4096, 4096)
                            .Close(3, 2, 10, 1024, 4096)
                            .Build());
  ASSERT_EQ(sink.accesses.size(), 2u);
  EXPECT_TRUE(sink.accesses[0].whole_file);
  EXPECT_FALSE(sink.accesses[1].whole_file);
}

TEST(Reconstruct, OpenDurationReported) {
  const auto sink = RunTrace(TraceBuilder().WholeRead(1, 4.5, 1, 10, 100).Build());
  EXPECT_DOUBLE_EQ(sink.accesses.at(0).open_duration().seconds(), 3.5);
}

TEST(Reconstruct, DanglingOpensDropped) {
  CollectSink sink;
  AccessReconstructor r(&sink);
  r.Process(MakeOpen(SimTime::FromSeconds(1), 1, 10, 1, AccessMode::kReadOnly, 100, 0));
  r.Finish();
  EXPECT_EQ(r.dangling_opens(), 1u);
  EXPECT_TRUE(sink.accesses.empty());
  EXPECT_TRUE(sink.transfers.empty());
}

TEST(Reconstruct, OrphanEventsCounted) {
  CollectSink sink;
  AccessReconstructor r(&sink);
  r.Process(MakeClose(SimTime::FromSeconds(1), 99, 10, 0, 0));
  r.Process(MakeSeek(SimTime::FromSeconds(2), 98, 10, 0, 5));
  r.Finish();
  EXPECT_EQ(r.orphan_events(), 2u);
}

TEST(Reconstruct, RawRecordsPassedThrough) {
  const Trace t = TraceBuilder().Unlink(1, 5).Execve(2, 6, 100).Build();
  const auto sink = RunTrace(t);
  ASSERT_EQ(sink.records.size(), 2u);
  EXPECT_EQ(sink.records[0].type, EventType::kUnlink);
  EXPECT_EQ(sink.records[1].type, EventType::kExecve);
}

TEST(Reconstruct, SeekToSamePositionKeepsSequentialFalseOnlyIfTransferred) {
  // A no-op seek before any transfer: still "one reposition before bytes".
  const auto sink = RunTrace(TraceBuilder()
                            .Open(1, 1, 10, 100)
                            .Seek(2, 1, 10, 0, 0)
                            .Close(3, 1, 10, 100, 100)
                            .Build());
  EXPECT_TRUE(sink.accesses.at(0).sequential);
  EXPECT_FALSE(sink.accesses.at(0).whole_file);  // repositioned, so not whole
}

// Property: billed bytes always equal the sum of run lengths, and every run
// lies within [0, size_at_close] for read-only accesses.
class ReconstructProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReconstructProperty, RunsConsistentWithSummaries) {
  Rng rng(GetParam());
  TraceBuilder b;
  double t = 1.0;
  for (OpenId oid = 1; oid <= 50; ++oid) {
    const uint64_t size = static_cast<uint64_t>(rng.UniformInt(0, 100000));
    b.Open(t, oid, 10 + oid % 7, size);
    t += 0.1;
    uint64_t pos = 0;
    const int seeks = static_cast<int>(rng.UniformInt(0, 3));
    for (int s = 0; s < seeks; ++s) {
      const uint64_t advance = static_cast<uint64_t>(rng.UniformInt(0, 1000));
      const uint64_t from = std::min(size, pos + advance);
      const uint64_t to = static_cast<uint64_t>(rng.UniformInt(0, static_cast<int64_t>(size)));
      b.Seek(t, oid, 10 + oid % 7, from, to);
      t += 0.1;
      pos = to;
    }
    const uint64_t fin = std::min(size, pos + static_cast<uint64_t>(rng.UniformInt(0, 2000)));
    b.Close(t, oid, 10 + oid % 7, std::max(pos, fin), size);
    t += 0.1;
  }
  const auto sink = RunTrace(b.Build());
  EXPECT_EQ(sink.accesses.size(), 50u);

  std::map<OpenId, uint64_t> run_bytes;
  for (const Transfer& tr : sink.transfers) {
    run_bytes[tr.open_id] += tr.length;
    EXPECT_GT(tr.length, 0u);
  }
  for (const AccessSummary& a : sink.accesses) {
    EXPECT_EQ(a.bytes_transferred, run_bytes[a.open_id]) << "open " << a.open_id;
    EXPECT_LE(a.bytes_transferred, 50u * 100000u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReconstructProperty, ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace bsdtrace
