// Trace format v3: checksummed blocks, the footer index, corruption
// detection, cursors, and back-compat with v1/v2 streams.

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/trace/trace_io.h"
#include "src/trace/trace_source.h"
#include "src/util/rng.h"
#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A trace long enough to span several size-split blocks and two simulated
// hours (so the hour-boundary split fires too).
Trace BigTrace(size_t n = 20'000) {
  Rng rng(7);
  Trace t(TraceHeader{.machine = "v3box", .description = "v3 round trip"});
  int64_t time_us = 0;
  for (size_t i = 0; i < n; ++i) {
    time_us += rng.UniformInt(100, 400'000);  // ~n * 0.2s: > 1 hour total
    const SimTime now = SimTime::FromMicros(time_us);
    const auto oid = static_cast<OpenId>(i + 1);
    const auto file = static_cast<FileId>(rng.UniformInt(1, 500));
    switch (rng.UniformInt(0, 3)) {
      case 0:
        t.Append(MakeOpen(now, oid, file, 3, AccessMode::kReadOnly, 4096, 0));
        break;
      case 1:
        t.Append(MakeSeek(now, static_cast<OpenId>(rng.UniformInt(1, 1000)),
                          file, 512, 1024));
        break;
      case 2:
        t.Append(MakeClose(now, static_cast<OpenId>(rng.UniformInt(1, 1000)),
                           file, 2048, 4096));
        break;
      default:
        t.Append(MakeUnlink(now, file, 3));
        break;
    }
  }
  return t;
}

TraceWriterOptions SmallBlocks() {
  TraceWriterOptions options;
  options.version = 3;
  options.block_target_bytes = 4 * 1024;
  return options;
}

TEST(TraceV3, RoundTripsThroughFileWriterAndReader) {
  const Trace original = BigTrace();
  const std::string path = TempPath("v3_roundtrip.trc");
  ASSERT_TRUE(SaveTrace(path, original, SmallBlocks()).ok());

  TraceFileReader reader(path);
  ASSERT_TRUE(reader.status().ok()) << reader.status().message();
  EXPECT_EQ(reader.version(), 3);
  EXPECT_EQ(reader.header().machine, "v3box");
  EXPECT_EQ(reader.declared_record_count(), static_cast<int64_t>(original.size()));
  TraceRecord r;
  size_t i = 0;
  while (reader.Next(&r)) {
    ASSERT_LT(i, original.size());
    ASSERT_EQ(r, original.records()[i]) << "record " << i;
    ++i;
  }
  EXPECT_TRUE(reader.status().ok()) << reader.status().message();
  EXPECT_EQ(i, original.size());
  EXPECT_GT(reader.blocks_verified(), 1u);
}

TEST(TraceV3, EmptyTraceRoundTrips) {
  Trace empty(TraceHeader{.machine = "m", .description = ""});
  const std::string path = TempPath("v3_empty.trc");
  TraceWriterOptions options;
  options.version = 3;
  ASSERT_TRUE(SaveTrace(path, empty, options).ok());
  auto loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().size(), 0u);
  EXPECT_EQ(loaded.value().header().machine, "m");
}

TEST(TraceV3, BlocksSplitAtHourBoundaries) {
  // Two records an hour apart must land in different blocks even though the
  // payload is tiny.
  Trace t(TraceHeader{.machine = "m", .description = ""});
  t.Append(MakeUnlink(SimTime::FromSeconds(10.0), 1, 1));
  t.Append(MakeUnlink(SimTime::FromSeconds(3'700.0), 2, 1));
  const std::string path = TempPath("v3_hours.trc");
  TraceWriterOptions options;
  options.version = 3;
  ASSERT_TRUE(SaveTrace(path, t, options).ok());

  SeekableTraceSource seekable(path);
  ASSERT_TRUE(seekable.status().ok()) << seekable.status().message();
  ASSERT_EQ(seekable.index().size(), 2u);
  EXPECT_EQ(seekable.index()[0].record_count, 1u);
  EXPECT_EQ(seekable.index()[1].record_count, 1u);
  EXPECT_EQ(seekable.index()[0].start_time, SimTime::FromSeconds(10.0));
  EXPECT_EQ(seekable.index()[1].start_time, SimTime::FromSeconds(3'700.0));
}

TEST(TraceV3, DetectsFlippedByte) {
  const Trace original = BigTrace(5'000);
  const std::string path = TempPath("v3_corrupt.trc");
  std::vector<TraceBlockIndexEntry> index;
  {
    TraceFileWriter writer(path, original.header(),
                           static_cast<int64_t>(original.size()), SmallBlocks());
    for (const TraceRecord& r : original.records()) {
      writer.Append(r);
    }
    ASSERT_TRUE(writer.Finish().ok());
    index = writer.index();
  }
  ASSERT_GT(index.size(), 2u);

  // Flip one payload byte in the second block (past the marker, the two
  // header varints, and the 4 CRC bytes).
  std::string bytes = ReadFileBytes(path);
  const size_t victim = index[1].offset + 12;
  ASSERT_LT(victim, static_cast<size_t>(index[2].offset));
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0x40);
  const std::string bad_path = TempPath("v3_corrupt_flipped.trc");
  WriteFileBytes(bad_path, bytes);

  for (const bool prefer_mmap : {true, false}) {
    TraceFileReader reader(bad_path, prefer_mmap);
    ASSERT_TRUE(reader.status().ok());
    TraceRecord r;
    size_t delivered = 0;
    while (reader.Next(&r)) {
      ++delivered;
    }
    EXPECT_FALSE(reader.status().ok());
    EXPECT_NE(reader.status().message().find("checksum"), std::string::npos)
        << reader.status().message();
    // Every record of the intact first block arrives; nothing from the
    // corrupt block does.
    EXPECT_EQ(delivered, index[0].record_count);
  }
}

TEST(TraceV3, ReadsV1AndV2Unchanged) {
  // v2: the default SaveTrace output, byte-for-byte.
  const Trace original = BigTrace(2'000);
  const std::string v2_path = TempPath("v3_compat_v2.trc");
  ASSERT_TRUE(SaveTrace(v2_path, original).ok());
  {
    std::stringstream buf;
    ASSERT_TRUE(WriteBinaryTrace(buf, original).ok());
    EXPECT_EQ(ReadFileBytes(v2_path), buf.str()) << "v2 bytes drifted";
  }
  TraceFileReader v2_reader(v2_path);
  EXPECT_EQ(v2_reader.version(), 2);
  auto v2_loaded = LoadTrace(v2_path);
  ASSERT_TRUE(v2_loaded.ok());
  EXPECT_EQ(v2_loaded.value(), original);

  // v1: hand-encoded magic + header without a record count.
  const std::string v1 =
      std::string("BSDTRC1\n") + '\x01' + 'm' + '\x00' + '\x00';
  const std::string v1_path = TempPath("v3_compat_v1.trc");
  WriteFileBytes(v1_path, v1);
  TraceFileReader v1_reader(v1_path);
  ASSERT_TRUE(v1_reader.status().ok()) << v1_reader.status().message();
  EXPECT_EQ(v1_reader.version(), 1);
  TraceRecord r;
  EXPECT_FALSE(v1_reader.Next(&r));
  EXPECT_TRUE(v1_reader.status().ok());
}

TEST(TraceV3, IostreamReaderRejectsV3) {
  const Trace original = BigTrace(100);
  const std::string path = TempPath("v3_iostream.trc");
  ASSERT_TRUE(SaveTrace(path, original, SmallBlocks()).ok());
  std::stringstream buf(ReadFileBytes(path));
  auto loaded = ReadBinaryTrace(buf);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("v3"), std::string::npos);
}

TEST(SeekableTraceSource, CursorsCoverTheWholeFile) {
  const Trace original = BigTrace();
  const std::string path = TempPath("v3_seekable.trc");
  ASSERT_TRUE(SaveTrace(path, original, SmallBlocks()).ok());

  SeekableTraceSource seekable(path);
  ASSERT_TRUE(seekable.status().ok()) << seekable.status().message();
  EXPECT_EQ(seekable.version(), 3);
  ASSERT_TRUE(seekable.has_index());
  ASSERT_GT(seekable.index().size(), 4u);
  EXPECT_EQ(seekable.indexed_records(), original.size());

  // One cursor per block: the concatenation is the original record stream.
  size_t i = 0;
  for (size_t b = 0; b < seekable.index().size(); ++b) {
    auto cursor = seekable.OpenCursor(b, 1);
    ASSERT_TRUE(cursor->status().ok()) << cursor->status().message();
    EXPECT_EQ(cursor->size_hint(),
              static_cast<int64_t>(seekable.index()[b].record_count));
    TraceRecord r;
    size_t in_block = 0;
    while (cursor->Next(&r)) {
      ASSERT_LT(i, original.size());
      ASSERT_EQ(r, original.records()[i]) << "record " << i;
      ++i;
      ++in_block;
    }
    ASSERT_TRUE(cursor->status().ok()) << cursor->status().message();
    EXPECT_EQ(in_block, seekable.index()[b].record_count);
  }
  EXPECT_EQ(i, original.size());

  // A multi-block cursor starting mid-file.
  const size_t first = seekable.index().size() / 2;
  auto cursor = seekable.OpenCursor(first, 2);
  uint64_t skip = 0;
  for (size_t b = 0; b < first; ++b) {
    skip += seekable.index()[b].record_count;
  }
  TraceRecord r;
  uint64_t delivered = 0;
  while (cursor->Next(&r)) {
    ASSERT_EQ(r, original.records()[skip + delivered]);
    ++delivered;
  }
  ASSERT_TRUE(cursor->status().ok());
  EXPECT_EQ(delivered, seekable.index()[first].record_count +
                           seekable.index()[first + 1].record_count);

  // Out-of-range requests clamp to empty.
  auto past = seekable.OpenCursor(seekable.index().size() + 3, 1);
  EXPECT_FALSE(past->Next(&r));
  EXPECT_TRUE(past->status().ok());
}

TEST(SeekableTraceSource, V2FileHasNoIndexButOpens) {
  const Trace original = BigTrace(500);
  const std::string path = TempPath("v3_seekable_v2.trc");
  ASSERT_TRUE(SaveTrace(path, original).ok());
  SeekableTraceSource seekable(path);
  EXPECT_TRUE(seekable.status().ok()) << seekable.status().message();
  EXPECT_EQ(seekable.version(), 2);
  EXPECT_FALSE(seekable.has_index());
}

TEST(SeekableTraceSource, IndexlessV3StillReadsSequentially) {
  const Trace original = BigTrace(500);
  const std::string path = TempPath("v3_noindex.trc");
  TraceWriterOptions options = SmallBlocks();
  options.write_index = false;
  ASSERT_TRUE(SaveTrace(path, original, options).ok());

  SeekableTraceSource seekable(path);
  EXPECT_TRUE(seekable.status().ok()) << seekable.status().message();
  EXPECT_EQ(seekable.version(), 3);
  EXPECT_FALSE(seekable.has_index());

  auto loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value(), original);
}

TEST(SeekableTraceSource, CorruptFooterIsReported) {
  const Trace original = BigTrace(500);
  const std::string path = TempPath("v3_badfooter.trc");
  ASSERT_TRUE(SaveTrace(path, original, SmallBlocks()).ok());
  std::string bytes = ReadFileBytes(path);
  // Point the tail's footer offset past the end of the file.
  const size_t tail = bytes.size() - kTraceIndexTailSize;
  for (size_t i = 0; i < 8; ++i) {
    bytes[tail + i] = static_cast<char>(0xFF);
  }
  WriteFileBytes(path, bytes);
  SeekableTraceSource seekable(path);
  EXPECT_FALSE(seekable.status().ok());
  EXPECT_FALSE(seekable.has_index());
}

}  // namespace
}  // namespace bsdtrace
