#include "src/trace/record.h"

#include <gtest/gtest.h>

namespace bsdtrace {
namespace {

TEST(EventTypeName, AllTypesNamed) {
  EXPECT_STREQ(EventTypeName(EventType::kOpen), "open");
  EXPECT_STREQ(EventTypeName(EventType::kCreate), "create");
  EXPECT_STREQ(EventTypeName(EventType::kClose), "close");
  EXPECT_STREQ(EventTypeName(EventType::kSeek), "seek");
  EXPECT_STREQ(EventTypeName(EventType::kUnlink), "unlink");
  EXPECT_STREQ(EventTypeName(EventType::kTruncate), "truncate");
  EXPECT_STREQ(EventTypeName(EventType::kExecve), "execve");
}

TEST(AccessModeName, AllModesNamed) {
  EXPECT_STREQ(AccessModeName(AccessMode::kReadOnly), "r");
  EXPECT_STREQ(AccessModeName(AccessMode::kWriteOnly), "w");
  EXPECT_STREQ(AccessModeName(AccessMode::kReadWrite), "rw");
}

TEST(MakeOpen, FieldsSet) {
  const TraceRecord r = MakeOpen(SimTime::FromSeconds(1.5), 10, 20, 30,
                                 AccessMode::kReadWrite, 4096, 100);
  EXPECT_EQ(r.type, EventType::kOpen);
  EXPECT_EQ(r.time.seconds(), 1.5);
  EXPECT_EQ(r.open_id, 10u);
  EXPECT_EQ(r.file_id, 20u);
  EXPECT_EQ(r.user_id, 30u);
  EXPECT_EQ(r.mode, AccessMode::kReadWrite);
  EXPECT_EQ(r.size, 4096u);
  EXPECT_EQ(r.position, 100u);
}

TEST(MakeCreate, SizeAndPositionZero) {
  const TraceRecord r = MakeCreate(SimTime::FromSeconds(2), 1, 2, 3, AccessMode::kWriteOnly);
  EXPECT_EQ(r.type, EventType::kCreate);
  EXPECT_EQ(r.size, 0u);
  EXPECT_EQ(r.position, 0u);
}

TEST(MakeClose, FinalPositionAndSize) {
  const TraceRecord r = MakeClose(SimTime::FromSeconds(3), 1, 2, 512, 1024);
  EXPECT_EQ(r.type, EventType::kClose);
  EXPECT_EQ(r.position, 512u);
  EXPECT_EQ(r.size, 1024u);
}

TEST(MakeSeek, FromAndTo) {
  const TraceRecord r = MakeSeek(SimTime::FromSeconds(4), 1, 2, 100, 900);
  EXPECT_EQ(r.type, EventType::kSeek);
  EXPECT_EQ(r.seek_from, 100u);
  EXPECT_EQ(r.seek_to, 900u);
}

TEST(MakeUnlinkTruncateExecve, Fields) {
  EXPECT_EQ(MakeUnlink(SimTime::FromSeconds(1), 7, 9).file_id, 7u);
  EXPECT_EQ(MakeTruncate(SimTime::FromSeconds(1), 7, 9, 128).size, 128u);
  EXPECT_EQ(MakeExecve(SimTime::FromSeconds(1), 7, 9, 4096).size, 4096u);
}

TEST(TraceRecord, EqualityIsFieldwise) {
  const TraceRecord a = MakeSeek(SimTime::FromSeconds(1), 2, 3, 4, 5);
  TraceRecord b = a;
  EXPECT_EQ(a, b);
  b.seek_to = 6;
  EXPECT_NE(a, b);
}

TEST(TraceRecord, ToStringIncludesTypeAndIds) {
  const std::string s = MakeOpen(SimTime::FromSeconds(1), 2, 3, 4,
                                 AccessMode::kReadOnly, 10, 0).ToString();
  EXPECT_NE(s.find("open"), std::string::npos);
  EXPECT_NE(s.find("oid=2"), std::string::npos);
  EXPECT_NE(s.find("file=3"), std::string::npos);
  EXPECT_NE(s.find("mode=r"), std::string::npos);
}

TEST(TraceRecord, ToStringForEveryType) {
  for (const TraceRecord& r :
       {MakeOpen(SimTime::Origin(), 1, 2, 3, AccessMode::kReadOnly, 10, 0),
        MakeCreate(SimTime::Origin(), 1, 2, 3, AccessMode::kWriteOnly),
        MakeClose(SimTime::Origin(), 1, 2, 10, 10), MakeSeek(SimTime::Origin(), 1, 2, 0, 5),
        MakeUnlink(SimTime::Origin(), 2, 3), MakeTruncate(SimTime::Origin(), 2, 3, 0),
        MakeExecve(SimTime::Origin(), 2, 3, 100)}) {
    EXPECT_FALSE(r.ToString().empty());
    EXPECT_NE(r.ToString().find(EventTypeName(r.type)), std::string::npos);
  }
}

}  // namespace
}  // namespace bsdtrace
