#include "src/trace/record.h"

#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace bsdtrace {
namespace {

TEST(EventTypeName, AllTypesNamed) {
  EXPECT_STREQ(EventTypeName(EventType::kOpen), "open");
  EXPECT_STREQ(EventTypeName(EventType::kCreate), "create");
  EXPECT_STREQ(EventTypeName(EventType::kClose), "close");
  EXPECT_STREQ(EventTypeName(EventType::kSeek), "seek");
  EXPECT_STREQ(EventTypeName(EventType::kUnlink), "unlink");
  EXPECT_STREQ(EventTypeName(EventType::kTruncate), "truncate");
  EXPECT_STREQ(EventTypeName(EventType::kExecve), "execve");
}

TEST(AccessModeName, AllModesNamed) {
  EXPECT_STREQ(AccessModeName(AccessMode::kReadOnly), "r");
  EXPECT_STREQ(AccessModeName(AccessMode::kWriteOnly), "w");
  EXPECT_STREQ(AccessModeName(AccessMode::kReadWrite), "rw");
}

TEST(MakeOpen, FieldsSet) {
  const TraceRecord r = MakeOpen(SimTime::FromSeconds(1.5), 10, 20, 30,
                                 AccessMode::kReadWrite, 4096, 100);
  EXPECT_EQ(r.type, EventType::kOpen);
  EXPECT_EQ(r.time.seconds(), 1.5);
  EXPECT_EQ(r.open_id, 10u);
  EXPECT_EQ(r.file_id, 20u);
  EXPECT_EQ(r.user_id, 30u);
  EXPECT_EQ(r.mode, AccessMode::kReadWrite);
  EXPECT_EQ(r.size, 4096u);
  EXPECT_EQ(r.position, 100u);
}

TEST(MakeCreate, SizeAndPositionZero) {
  const TraceRecord r = MakeCreate(SimTime::FromSeconds(2), 1, 2, 3, AccessMode::kWriteOnly);
  EXPECT_EQ(r.type, EventType::kCreate);
  EXPECT_EQ(r.size, 0u);
  EXPECT_EQ(r.position, 0u);
}

TEST(MakeClose, FinalPositionAndSize) {
  const TraceRecord r = MakeClose(SimTime::FromSeconds(3), 1, 2, 512, 1024);
  EXPECT_EQ(r.type, EventType::kClose);
  EXPECT_EQ(r.position, 512u);
  EXPECT_EQ(r.size, 1024u);
}

TEST(MakeSeek, FromAndTo) {
  const TraceRecord r = MakeSeek(SimTime::FromSeconds(4), 1, 2, 100, 900);
  EXPECT_EQ(r.type, EventType::kSeek);
  EXPECT_EQ(r.seek_from, 100u);
  EXPECT_EQ(r.seek_to, 900u);
}

TEST(MakeUnlinkTruncateExecve, Fields) {
  EXPECT_EQ(MakeUnlink(SimTime::FromSeconds(1), 7, 9).file_id, 7u);
  EXPECT_EQ(MakeTruncate(SimTime::FromSeconds(1), 7, 9, 128).size, 128u);
  EXPECT_EQ(MakeExecve(SimTime::FromSeconds(1), 7, 9, 4096).size, 4096u);
}

TEST(TraceRecord, EqualityIsFieldwise) {
  const TraceRecord a = MakeSeek(SimTime::FromSeconds(1), 2, 3, 4, 5);
  TraceRecord b = a;
  EXPECT_EQ(a, b);
  b.seek_to = 6;
  EXPECT_NE(a, b);
}

TEST(TraceRecord, ToStringIncludesTypeAndIds) {
  const std::string s = MakeOpen(SimTime::FromSeconds(1), 2, 3, 4,
                                 AccessMode::kReadOnly, 10, 0).ToString();
  EXPECT_NE(s.find("open"), std::string::npos);
  EXPECT_NE(s.find("oid=2"), std::string::npos);
  EXPECT_NE(s.find("file=3"), std::string::npos);
  EXPECT_NE(s.find("mode=r"), std::string::npos);
}

// The round-trip property that defines the bsdtxt text format: for every
// event type and arbitrary field values, Parse(ToString(r)) == r.  Exercised
// with the varint-boundary extremes the binary property tests use, plus
// timestamps where "%.6f"-style double formatting used to misround.
TEST(ParseTraceRecord, RoundTripsEveryEventTypeWithExtremeValues) {
  const uint64_t kValues[] = {0, 1, 127, 128, (1ull << 56) - 1, 1ull << 56,
                              std::numeric_limits<uint64_t>::max()};
  const int64_t kTimes[] = {0, 7, 999999, 1'000'000, 1'723'190'000'000'100,
                            std::numeric_limits<int64_t>::max()};
  Rng rng(19851201);
  const auto value = [&]() { return kValues[rng.UniformInt(0, 6)]; };
  const auto user = [&]() { return static_cast<UserId>(rng.UniformInt(0, 0xFFFFFFFFll)); };
  const auto mode = [&]() { return static_cast<AccessMode>(rng.UniformInt(0, 2)); };
  for (int i = 0; i < 500; ++i) {
    const SimTime t = SimTime::FromMicros(kTimes[rng.UniformInt(0, 5)]);
    TraceRecord r;
    switch (rng.UniformInt(1, 7)) {
      case 1:
        r = MakeOpen(t, value(), value(), user(), mode(), value(), value());
        break;
      case 2:
        r = MakeCreate(t, value(), value(), user(), mode());
        break;
      case 3:
        r = MakeClose(t, value(), value(), value(), value());
        break;
      case 4:
        r = MakeSeek(t, value(), value(), value(), value());
        break;
      case 5:
        r = MakeUnlink(t, value(), user());
        break;
      case 6:
        r = MakeTruncate(t, value(), user(), value());
        break;
      default:
        r = MakeExecve(t, value(), user(), value());
        break;
    }
    const std::string line = r.ToString();
    const StatusOr<TraceRecord> back = ParseTraceRecord(line);
    ASSERT_TRUE(back.ok()) << line << ": " << back.status().message();
    EXPECT_TRUE(back.value() == r) << line;
    // And the rendering itself is a fixed point.
    EXPECT_EQ(back.value().ToString(), line);
  }
}

TEST(ParseTraceRecord, AcceptsSpaceRunsAsSeparators) {
  const StatusOr<TraceRecord> r =
      ParseTraceRecord("1.5   open  oid=1 file=2\t user=3  mode=rw size=10 pos=0");
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value().time.micros(), 1'500'000);
  EXPECT_EQ(r.value().mode, AccessMode::kReadWrite);
}

TEST(ParseTraceRecord, RejectsMalformedLines) {
  const char* kBad[] = {
      "",
      "0.5",                                                        // no type
      "0.5 frobnicate file=1 user=2",                               // unknown type
      "oops open oid=1 file=2 user=3 mode=r size=10 pos=0",         // bad time
      "-1.0 unlink file=1 user=2",                                  // signed time
      "0.5 open oid=1 file=2 user=3 mode=r size=10",                // missing field
      "0.5 open oid=1 file=2 user=3 mode=r size=10 pos=0 extra=1",  // trailing field
      "0.5 open oid=1 file=2 user=3 mode=q size=10 pos=0",          // bad mode
      "0.5 open oid=1 file=2 user=3 mode=r size=0x10 pos=0",        // hex value
      "0.5 open oid=-1 file=2 user=3 mode=r size=10 pos=0",         // signed value
      "0.5 open oid=1 file=2 user=4294967296 mode=r size=10 pos=0",  // user overflow
      "0.5 close oid=1 file=2 from=0 to=5",                          // seek keys on close
      "0.5 seek oid=1 file=2 from=0 to=18446744073709551616",        // overflow
  };
  for (const char* line : kBad) {
    EXPECT_FALSE(ParseTraceRecord(line).ok()) << "accepted: " << line;
  }
}

TEST(ParseTraceRecord, ErrorsNameTheOffendingToken) {
  const StatusOr<TraceRecord> r =
      ParseTraceRecord("0.5 open oid=1 file=2 user=zork mode=r size=10 pos=0");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("user=zork"), std::string::npos)
      << r.status().message();
}

TEST(TraceRecord, ToStringForEveryType) {
  for (const TraceRecord& r :
       {MakeOpen(SimTime::Origin(), 1, 2, 3, AccessMode::kReadOnly, 10, 0),
        MakeCreate(SimTime::Origin(), 1, 2, 3, AccessMode::kWriteOnly),
        MakeClose(SimTime::Origin(), 1, 2, 10, 10), MakeSeek(SimTime::Origin(), 1, 2, 0, 5),
        MakeUnlink(SimTime::Origin(), 2, 3), MakeTruncate(SimTime::Origin(), 2, 3, 0),
        MakeExecve(SimTime::Origin(), 2, 3, 100)}) {
    EXPECT_FALSE(r.ToString().empty());
    EXPECT_NE(r.ToString().find(EventTypeName(r.type)), std::string::npos);
  }
}

}  // namespace
}  // namespace bsdtrace
