// The v4 block codec in isolation: round trips over byte distributions from
// all-zero to incompressible, determinism, and clean rejection of truncated
// or padded streams.  Whole-block corruption detection (CRC + size checks)
// lives in trace_v4_test.cc; this file exercises the raw codec contract.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/trace/lz_codec.h"
#include "src/util/rng.h"

namespace bsdtrace {
namespace {

std::vector<uint8_t> Compress(const std::vector<uint8_t>& src) {
  std::vector<uint8_t> dst(LzMaxCompressedSize(src.size()));
  dst.resize(LzCompress(src.data(), src.size(), dst.data()));
  return dst;
}

// Decompresses expecting exactly `want`'s size, and returns whether the
// codec accepted the stream AND reproduced the bytes.
bool RoundTripsTo(const std::vector<uint8_t>& stored, const std::vector<uint8_t>& want) {
  std::vector<uint8_t> out(want.size());
  if (!LzDecompress(stored.data(), stored.size(), out.data(), out.size())) {
    return false;
  }
  return out == want;
}

// Inputs spanning the distributions v4 payloads actually produce: runs,
// skewed low-entropy bytes, varint-like structure, long literal repeats,
// and uniform noise (which the codec must survive, not shrink).
std::vector<uint8_t> MakeInput(int kind, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> v(n);
  switch (kind) {
    case 0:  // constant
      for (auto& b : v) b = 0x42;
      break;
    case 1:  // heavily skewed: mostly tiny values, occasional spikes
      for (auto& b : v) {
        b = rng.UniformInt(0, 9) == 0 ? static_cast<uint8_t>(rng.UniformInt(0, 255))
                                      : static_cast<uint8_t>(rng.UniformInt(0, 3));
      }
      break;
    case 2:  // varint-ish: 1-3 byte little-endian groups with the top bit run
      for (size_t i = 0; i < n; ++i) {
        v[i] = (i % 3 == 2) ? static_cast<uint8_t>(rng.UniformInt(0, 127))
                            : static_cast<uint8_t>(rng.UniformInt(128, 255));
      }
      break;
    case 3: {  // repeated phrase: long matches the parser should take
      std::vector<uint8_t> phrase(97);
      for (auto& b : phrase) b = static_cast<uint8_t>(rng.UniformInt(0, 255));
      for (size_t i = 0; i < n; ++i) v[i] = phrase[i % phrase.size()];
      break;
    }
    default:  // incompressible noise
      for (auto& b : v) b = static_cast<uint8_t>(rng.UniformInt(0, 255));
      break;
  }
  return v;
}

TEST(LzCodec, RoundTripsAllDistributionsAndSizes) {
  for (int kind = 0; kind < 5; ++kind) {
    for (const size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{64}, size_t{4096},
                           size_t{100'000}}) {
      const std::vector<uint8_t> src = MakeInput(kind, n, 19851201 + kind);
      const std::vector<uint8_t> stored = Compress(src);
      ASSERT_GT(stored.size(), 0u);  // even empty input yields the coder flush
      EXPECT_TRUE(RoundTripsTo(stored, src)) << "kind " << kind << " n " << n;
    }
  }
}

TEST(LzCodec, CompressionIsDeterministic) {
  const std::vector<uint8_t> src = MakeInput(1, 50'000, 7);
  EXPECT_EQ(Compress(src), Compress(src));
}

TEST(LzCodec, SkewedPayloadActuallyShrinks) {
  // The whole point of the codec: low-entropy byte streams (what the v4
  // semantic pre-pass emits) must compress well below byte-aligned size.
  const std::vector<uint8_t> src = MakeInput(1, 100'000, 3);
  EXPECT_LT(Compress(src).size(), src.size() / 2);
}

TEST(LzCodec, NoiseStaysWithinTheDeclaredBound) {
  const std::vector<uint8_t> src = MakeInput(4, 100'000, 5);
  EXPECT_LE(Compress(src).size(), LzMaxCompressedSize(src.size()));
}

TEST(LzCodec, RejectsTruncatedStreams) {
  const std::vector<uint8_t> src = MakeInput(2, 20'000, 11);
  const std::vector<uint8_t> stored = Compress(src);
  std::vector<uint8_t> out(src.size());
  Rng rng(13);
  for (int i = 0; i < 32; ++i) {
    const size_t cut = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(stored.size()) - 1));
    EXPECT_FALSE(LzDecompress(stored.data(), cut, out.data(), out.size())) << "cut " << cut;
  }
}

TEST(LzCodec, RejectsTrailingGarbage) {
  const std::vector<uint8_t> src = MakeInput(1, 20'000, 17);
  std::vector<uint8_t> stored = Compress(src);
  stored.push_back(0x00);
  std::vector<uint8_t> out(src.size());
  EXPECT_FALSE(LzDecompress(stored.data(), stored.size(), out.data(), out.size()));
}

TEST(LzCodec, RejectsWrongOutputLength) {
  const std::vector<uint8_t> src = MakeInput(3, 10'000, 23);
  const std::vector<uint8_t> stored = Compress(src);
  std::vector<uint8_t> out(src.size() + 1);
  EXPECT_FALSE(LzDecompress(stored.data(), stored.size(), out.data(), src.size() - 1));
  EXPECT_FALSE(LzDecompress(stored.data(), stored.size(), out.data(), src.size() + 1));
}

TEST(LzCodec, RandomGarbageNeverCrashes) {
  // Fuzz the decoder entry: arbitrary bytes must yield false or some
  // dst_len-byte output — never a read/write out of bounds (run under
  // sanitizers in CI).
  Rng rng(29);
  std::vector<uint8_t> out(512);
  for (int i = 0; i < 200; ++i) {
    std::vector<uint8_t> junk(static_cast<size_t>(rng.UniformInt(0, 64)));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    LzDecompress(junk.data(), junk.size(), out.data(), out.size());
  }
}

TEST(LzCodec, CodecNamesAreStable) {
  EXPECT_STREQ(TraceCodecName(static_cast<uint8_t>(TraceCodec::kNone)), "none");
  EXPECT_STREQ(TraceCodecName(static_cast<uint8_t>(TraceCodec::kLz)), "lz");
  EXPECT_STREQ(TraceCodecName(250), "unknown");
}

}  // namespace
}  // namespace bsdtrace
