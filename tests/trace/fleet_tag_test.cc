#include "src/trace/fleet_tag.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace bsdtrace {
namespace {

TEST(FleetTag, AppendAndParseRoundTrip) {
  const std::vector<FleetInstanceTag> tags = {
      {.trace_name = "A5", .user_base = 0, .user_population = 90},
      {.trace_name = "A5", .user_base = 92, .user_population = 90},
      {.trace_name = "E3", .user_base = 184, .user_population = 1000},
  };
  const std::string tagged = AppendFleetTag("synthetic trace, 6h, seed 1", tags);
  EXPECT_EQ(tagged,
            "synthetic trace, 6h, seed 1; fleet A5:0:90+A5:92:90+E3:184:1000");
  EXPECT_EQ(ParseFleetTag(tagged), tags);
}

TEST(FleetTag, EmptyInstanceListAppendsNothing) {
  EXPECT_EQ(AppendFleetTag("desc", {}), "desc");
}

TEST(FleetTag, UntaggedDescriptionsParseEmpty) {
  EXPECT_TRUE(ParseFleetTag("").empty());
  EXPECT_TRUE(ParseFleetTag("synthetic A5 trace, 6h, seed 1").empty());
  // Mentions fleets but carries no tag intro.
  EXPECT_TRUE(ParseFleetTag("a fleet of machines").empty());
}

TEST(FleetTag, MalformedTagsParseEmpty) {
  // Missing fields, non-numeric fields, empty names: all reject as a whole.
  EXPECT_TRUE(ParseFleetTag("x; fleet A5").empty());
  EXPECT_TRUE(ParseFleetTag("x; fleet A5:0").empty());
  EXPECT_TRUE(ParseFleetTag("x; fleet A5:zero:90").empty());
  EXPECT_TRUE(ParseFleetTag("x; fleet A5:0:ninety").empty());
  EXPECT_TRUE(ParseFleetTag("x; fleet :0:90").empty());
  EXPECT_TRUE(ParseFleetTag("x; fleet A5:0:90+").empty());
  EXPECT_TRUE(ParseFleetTag("x; fleet A5:0:90+E3:2").empty());
}

// A description that itself contains "; fleet " earlier on: the parser keys
// off the LAST occurrence, which is the one the generator appended.
TEST(FleetTag, LastTagWins) {
  const std::vector<FleetInstanceTag> tags = {
      {.trace_name = "C4", .user_base = 0, .user_population = 40}};
  const std::string tagged = AppendFleetTag("about; fleet nonsense here", tags);
  EXPECT_EQ(ParseFleetTag(tagged), tags);
}

TEST(FleetTag, UserRangeConvention) {
  const FleetInstanceTag tag{.trace_name = "A5", .user_base = 92, .user_population = 90};
  // Daemons at base and base+1; humans are the next `population` ids.
  EXPECT_EQ(tag.FirstUser(), 94u);
  EXPECT_EQ(tag.LastUser(), 183u);
}

}  // namespace
}  // namespace bsdtrace
