#include "src/cache/hierarchy.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cache/sweep.h"
#include "src/trace/fleet_tag.h"
#include "src/trace/replay_log.h"
#include "src/workload/fleet.h"
#include "src/workload/generator.h"
#include "src/workload/profile.h"
#include "src/workload/sharded_generator.h"
#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

Trace GeneratedTrace(const char* profile, uint64_t seed) {
  GeneratorOptions options;
  options.duration = Duration::Minutes(20);
  options.seed = seed;
  return GenerateTraceOnly(ProfileByName(profile), options);
}

Trace SmallFleetTrace() {
  auto fleet = ParseFleetSpec("2xA5+1xE3");
  FleetGeneratorOptions options;
  options.base.duration = Duration::Minutes(8);
  options.base.seed = 4411;
  options.shards_per_machine = 2;
  options.threads = 2;
  auto result = GenerateFleetTrace(fleet.value(), options);
  EXPECT_TRUE(result.ok()) << result.status().message();
  return std::move(result.value().trace);
}

HierarchyConfig MakeHierarchy(uint64_t client_bytes, uint64_t server_bytes,
                              WritePolicy client_policy = WritePolicy::kDelayedWrite) {
  HierarchyConfig h;
  h.client.size_bytes = client_bytes;
  h.client.policy = client_policy;
  h.server.size_bytes = server_bytes;
  h.server.policy = WritePolicy::kDelayedWrite;
  return h;
}

// --- Degenerate topology: client size 0 IS the single-level simulator ------

TEST(HierarchyDegenerate, ClientZeroBitIdenticalToSingleLevel) {
  for (const char* profile : {"A5", "E3", "C4"}) {
    const Trace trace = GeneratedTrace(profile, 7009);
    const ReplayLog log = ReplayLog::Build(trace);
    for (const WritePolicy policy :
         {WritePolicy::kWriteThrough, WritePolicy::kFlushBack, WritePolicy::kDelayedWrite}) {
      HierarchyConfig h = MakeHierarchy(0, 2 << 20);
      h.server.policy = policy;
      const HierarchyMetrics hier = SimulateHierarchy(log, h);
      const CacheMetrics flat = SimulateCache(log, h.server);
      EXPECT_EQ(hier.client_count, 0u);
      EXPECT_TRUE(CacheMetricsBitIdentical(hier.server, flat))
          << profile << " policy " << WritePolicyName(policy);
      EXPECT_EQ(hier.DiskIos(), flat.DiskIos());
      EXPECT_EQ(hier.LogicalAccesses(), flat.logical_accesses);
    }
  }
}

TEST(HierarchyDegenerate, ClientZeroBitIdenticalWithPagein) {
  const Trace trace = GeneratedTrace("A5", 7010);
  const ReplayLog log = ReplayLog::Build(trace);
  HierarchyConfig h = MakeHierarchy(0, 1 << 20);
  h.server.simulate_execve_pagein = true;
  const HierarchyMetrics hier = SimulateHierarchy(log, h);
  const CacheMetrics flat = SimulateCache(log, h.server);
  EXPECT_TRUE(CacheMetricsBitIdentical(hier.server, flat));
}

// --- Client layer semantics ------------------------------------------------

// The client access stream does not depend on the client size (only hits vs
// misses change), so LRU stack inclusion makes client fetch misses monotone
// nonincreasing in client size.
TEST(HierarchyClient, ClientMissesMonotoneInClientSize) {
  const Trace trace = GeneratedTrace("A5", 7011);
  const ReplayLog log = ReplayLog::Build(trace);
  uint64_t prev_reads = ~0ull;
  for (const uint64_t client_bytes : {256ull << 10, 1ull << 20, 4ull << 20}) {
    const HierarchyMetrics m =
        SimulateHierarchy(log, MakeHierarchy(client_bytes, 4 << 20));
    ASSERT_EQ(m.client_count, 1u);
    EXPECT_LE(m.client_total.disk_reads, prev_reads) << client_bytes;
    prev_reads = m.client_total.disk_reads;
    // Every client fetch is a server read access; every client write-back a
    // server write access.  Nothing else reaches the server.
    EXPECT_EQ(m.server.logical_accesses,
              m.client_total.disk_reads + m.client_total.disk_writes);
    EXPECT_EQ(m.server.read_accesses, m.client_total.disk_reads);
    EXPECT_EQ(m.server.write_accesses, m.client_total.disk_writes);
    EXPECT_GE(m.ClientHitRatio(), 0.0);
    EXPECT_LE(m.GlobalMissRatio(), 1.0);
  }
}

// A delayed-write client absorbs overwrites, so the server sees at most the
// write-through client's write traffic.
TEST(HierarchyClient, DelayedWriteClientAbsorbsWrites) {
  const Trace trace = GeneratedTrace("E3", 7012);
  const ReplayLog log = ReplayLog::Build(trace);
  const HierarchyMetrics wt =
      SimulateHierarchy(log, MakeHierarchy(1 << 20, 4 << 20, WritePolicy::kWriteThrough));
  const HierarchyMetrics dw =
      SimulateHierarchy(log, MakeHierarchy(1 << 20, 4 << 20, WritePolicy::kDelayedWrite));
  EXPECT_LE(dw.client_total.disk_writes, wt.client_total.disk_writes);
  EXPECT_LE(dw.server.write_accesses, wt.server.write_accesses);
}

// --- Invalidation fan-out --------------------------------------------------

// Two instances; instance B dirties blocks of a file, instance A unlinks it.
// B's dirty blocks must be discarded (fan-out) without ever reaching the
// server as write-backs.
TEST(HierarchyInvalidation, UnlinkFansOutToAllClients) {
  // Instance 0: users [0, 3]; instance 1: users [4, 7].
  const std::vector<FleetInstanceTag> tags = {{"A5", 0, 2}, {"A5", 4, 2}};
  TraceBuilder b;
  const UserId user_a = 2;  // instance 0
  const UserId user_b = 6;  // instance 1
  b.WholeWrite(1.0, 2.0, /*oid=*/1, /*file=*/10, /*size=*/32768, user_b);
  b.WholeRead(3.0, 4.0, /*oid=*/2, /*file=*/11, /*size=*/4096, user_a);
  b.Unlink(5.0, /*file=*/10, user_a);
  // A trailing event so Finish-time censoring is not the only clock source.
  b.WholeRead(6.0, 7.0, /*oid=*/3, /*file=*/11, /*size=*/4096, user_b);
  Trace trace = b.Build();
  trace.header().description = AppendFleetTag(trace.header().description, tags);

  const ReplayLog log = ReplayLog::Build(trace);
  ASSERT_EQ(log.instance_count(), 2u);

  const HierarchyMetrics m = SimulateHierarchy(log, MakeHierarchy(1 << 20, 4 << 20));
  ASSERT_EQ(m.client_count, 2u);
  // Instance 1 wrote 8 dirty blocks; the unlink discarded them all.
  EXPECT_EQ(m.clients[1].dirty_discarded, 8u);
  EXPECT_EQ(m.clients[1].disk_writes, 0u);
  // The absorbed writes never became server write accesses.
  EXPECT_EQ(m.server.write_accesses, 0u);
  EXPECT_EQ(m.server.disk_writes, 0u);
  // Instance 0 never touched file 10: nothing of its to discard.
  EXPECT_EQ(m.clients[0].dirty_discarded, 0u);
}

// --- Multi-instance routing ------------------------------------------------

TEST(HierarchyRouting, FleetInstancesPartitionTheAccessStream) {
  const Trace trace = SmallFleetTrace();
  const ReplayLog log = ReplayLog::Build(trace);
  ASSERT_EQ(log.instance_count(), 3u);

  const HierarchyMetrics m = SimulateHierarchy(log, MakeHierarchy(512 << 10, 4 << 20));
  ASSERT_EQ(m.client_count, 3u);
  // Every instance generated traffic, and the per-client streams partition
  // exactly the single-level logical access stream.
  uint64_t sum = 0;
  for (const CacheMetrics& c : m.clients) {
    EXPECT_GT(c.logical_accesses, 0u);
    sum += c.logical_accesses;
  }
  const CacheMetrics flat = SimulateCache(log, MakeHierarchy(0, 4 << 20).server);
  EXPECT_EQ(sum, flat.logical_accesses);
  EXPECT_EQ(sum, m.client_total.logical_accesses);
}

TEST(HierarchyRouting, UntaggedTraceGetsOneClient) {
  const Trace trace = GeneratedTrace("A5", 7013);
  const ReplayLog log = ReplayLog::Build(trace);
  EXPECT_TRUE(log.fleet().empty());
  EXPECT_EQ(log.instance_count(), 1u);
  const HierarchyMetrics m = SimulateHierarchy(log, MakeHierarchy(1 << 20, 4 << 20));
  EXPECT_EQ(m.client_count, 1u);
  EXPECT_GT(m.clients[0].logical_accesses, 0u);
}

// --- ReplayLog instance attribution ----------------------------------------

TEST(HierarchyAttribution, EventsCarryTheirInstance) {
  const std::vector<FleetInstanceTag> tags = {{"A5", 0, 2}, {"E3", 4, 2}};
  TraceBuilder b;
  b.WholeRead(1.0, 2.0, 1, 10, 4096, /*user=*/2);   // instance 0
  b.WholeWrite(3.0, 4.0, 2, 11, 4096, /*user=*/6);  // instance 1
  b.Unlink(5.0, 11, /*user=*/5);                    // instance 1
  b.WholeRead(6.0, 7.0, 3, 12, 4096, /*user=*/99);  // outside every range -> 0
  Trace trace = b.Build();
  trace.header().description = AppendFleetTag(trace.header().description, tags);

  const ReplayLog log = ReplayLog::Build(trace);
  ASSERT_EQ(log.fleet().size(), 2u);
  EXPECT_EQ(log.fleet()[1].trace_name, "E3");

  struct Collector {
    std::vector<uint16_t> transfer_instances;
    std::vector<uint16_t> record_instances;
    void OnTransferFrom(uint16_t instance, const Transfer&) {
      transfer_instances.push_back(instance);
    }
    void OnRecordFrom(uint16_t instance, const TraceRecord&) {
      record_instances.push_back(instance);
    }
  } sink;
  log.ReplayDataEventsWithInstancesInto(sink);

  ASSERT_EQ(sink.transfer_instances.size(), 3u);
  EXPECT_EQ(sink.transfer_instances[0], 0u);
  EXPECT_EQ(sink.transfer_instances[1], 1u);
  EXPECT_EQ(sink.transfer_instances[2], 0u);  // user 99: out of range
  // The unlink record is attributed; any trailing clock record is instance 0.
  ASSERT_GE(sink.record_instances.size(), 1u);
  EXPECT_EQ(sink.record_instances[0], 1u);
}

// --- Hierarchy sweep -------------------------------------------------------

TEST(HierarchySweep, GridShapeAndParity) {
  const std::vector<HierarchyConfig> configs = HierarchySweepConfigs();
  // 4 client sizes x 5 server sizes x 3 policies.
  EXPECT_EQ(configs.size(), 60u);

  const Trace trace = GeneratedTrace("A5", 7014);
  const ReplayLog log = ReplayLog::Build(trace);
  const HierarchySweepResult result = RunHierarchySweep(log, configs, /*threads=*/4);
  ASSERT_EQ(result.points.size(), configs.size());
  EXPECT_TRUE(result.parity);
  EXPECT_GT(result.fused_replays, 0u);
  EXPECT_GT(result.hierarchy_replays, 0u);

  for (size_t i = 0; i < configs.size(); ++i) {
    const HierarchyPoint& p = result.points[i];
    EXPECT_EQ(p.config.client.size_bytes, configs[i].client.size_bytes) << i;
    EXPECT_GT(p.metrics.server.logical_accesses, 0u) << i;
    if (!configs[i].has_clients()) {
      // Fused client-0 rows must equal the direct single-level replay.
      const CacheMetrics flat = SimulateCache(log, configs[i].server);
      EXPECT_TRUE(CacheMetricsBitIdentical(p.metrics.server, flat)) << i;
    } else {
      EXPECT_EQ(p.metrics.client_count, 1u) << i;
    }
  }
}

TEST(HierarchySweep, ThreadCountInvariant) {
  const Trace trace = GeneratedTrace("E3", 7015);
  const ReplayLog log = ReplayLog::Build(trace);
  // A small mixed subset to keep the serial run fast.
  std::vector<HierarchyConfig> configs = {
      MakeHierarchy(0, 1 << 20),
      MakeHierarchy(0, 2 << 20),
      MakeHierarchy(256 << 10, 2 << 20, WritePolicy::kWriteThrough),
      MakeHierarchy(1 << 20, 4 << 20),
  };
  const HierarchySweepResult seq = RunHierarchySweep(log, configs, 1);
  const HierarchySweepResult par = RunHierarchySweep(log, configs, 4);
  ASSERT_EQ(seq.points.size(), par.points.size());
  EXPECT_TRUE(seq.parity);
  EXPECT_TRUE(par.parity);
  for (size_t i = 0; i < seq.points.size(); ++i) {
    EXPECT_TRUE(CacheMetricsBitIdentical(seq.points[i].metrics.server,
                                         par.points[i].metrics.server))
        << i;
    ASSERT_EQ(seq.points[i].metrics.clients.size(), par.points[i].metrics.clients.size());
    for (size_t c = 0; c < seq.points[i].metrics.clients.size(); ++c) {
      EXPECT_TRUE(CacheMetricsBitIdentical(seq.points[i].metrics.clients[c],
                                           par.points[i].metrics.clients[c]))
          << i << ":" << c;
    }
  }
}

TEST(HierarchySweep, EmptyConfigList) {
  const Trace trace = GeneratedTrace("A5", 7016);
  const HierarchySweepResult result = RunHierarchySweep(trace, {});
  EXPECT_TRUE(result.points.empty());
  EXPECT_TRUE(result.parity);
}

}  // namespace
}  // namespace bsdtrace
