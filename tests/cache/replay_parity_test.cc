// Parity between the two-phase sweep engine and the direct path: replaying a
// ReplayLog through the simulator must give bit-identical CacheMetrics to
// running AccessReconstructor straight into it, for every Fig. 5/6/7
// configuration and both billing policies.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cache/sweep.h"
#include "src/trace/replay_log.h"
#include "src/trace/trace_io.h"
#include "src/workload/generator.h"
#include "src/workload/profile.h"
#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

// Exact (bit-level) equality of every metric, including the floating-point
// residency statistics: both paths must perform the identical Add() sequence.
void ExpectIdentical(const CacheMetrics& a, const CacheMetrics& b,
                     const std::string& label) {
  EXPECT_EQ(a.logical_accesses, b.logical_accesses) << label;
  EXPECT_EQ(a.read_accesses, b.read_accesses) << label;
  EXPECT_EQ(a.write_accesses, b.write_accesses) << label;
  EXPECT_EQ(a.metadata_accesses, b.metadata_accesses) << label;
  EXPECT_EQ(a.disk_reads, b.disk_reads) << label;
  EXPECT_EQ(a.disk_writes, b.disk_writes) << label;
  EXPECT_EQ(a.dirty_discarded, b.dirty_discarded) << label;
  EXPECT_EQ(a.evictions, b.evictions) << label;
  EXPECT_EQ(a.residency_over_20min, b.residency_over_20min) << label;
  EXPECT_EQ(a.residency_samples, b.residency_samples) << label;
  EXPECT_EQ(a.residency_seconds.count(), b.residency_seconds.count()) << label;
  EXPECT_EQ(a.residency_seconds.sum(), b.residency_seconds.sum()) << label;
  EXPECT_EQ(a.residency_seconds.mean(), b.residency_seconds.mean()) << label;
  EXPECT_EQ(a.residency_seconds.variance(), b.residency_seconds.variance()) << label;
  EXPECT_EQ(a.residency_seconds.min(), b.residency_seconds.min()) << label;
  EXPECT_EQ(a.residency_seconds.max(), b.residency_seconds.max()) << label;
}

void CheckAllConfigs(const Trace& trace) {
  std::vector<CacheConfig> configs = Fig5Configs();
  for (const CacheConfig& c : Fig6Configs()) {
    configs.push_back(c);
  }
  for (const CacheConfig& c : Fig7Configs()) {
    configs.push_back(c);
  }
  for (BillingPolicy billing : {BillingPolicy::kAtNextEvent, BillingPolicy::kAtPreviousEvent}) {
    const ReplayLog log = ReplayLog::Build(trace, billing);
    for (const CacheConfig& c : configs) {
      const CacheMetrics direct = SimulateCache(trace, c, billing);
      const CacheMetrics replayed = SimulateCache(log, c);
      ExpectIdentical(direct, replayed,
                      c.ToString() + (billing == BillingPolicy::kAtNextEvent
                                          ? " / billed-at-next"
                                          : " / billed-at-previous"));
    }
  }
}

TEST(ReplayParity, GeneratedA5Trace) {
  GeneratorOptions options;
  options.duration = Duration::Minutes(20);
  options.seed = 8551;
  CheckAllConfigs(GenerateTraceOnly(ProfileA5(), options));
}

// Hand-built trace exercising the invalidation and page-in paths: seeks,
// truncates, unlinks, execve, read-write opens, and an orphan close.
TEST(ReplayParity, HandBuiltEdgeCases) {
  TraceBuilder b;
  b.WholeWrite(1.0, 2.0, 1, 10, 64 << 10);
  b.Open(3.0, 2, 10, 64 << 10, AccessMode::kReadWrite);
  b.Seek(4.0, 2, 10, 4096, 32 << 10);
  b.Seek(5.0, 2, 10, 48 << 10, 0);
  b.Close(6.0, 2, 10, 80 << 10, 80 << 10);  // extends the file: write runs
  b.Truncate(7.0, 10, 8 << 10);
  b.WholeRead(8.0, 9.0, 3, 11, 24 << 10);
  b.Execve(10.0, 11, 24 << 10);
  b.Unlink(11.0, 10);
  b.Close(12.0, 99, 50, 100, 100);  // orphan close (never opened)
  b.WholeWrite(13.0, 14.0, 4, 12, 4 << 10);
  // Long idle gap so flush-back intervals elapse, then more traffic.
  b.WholeRead(700.0, 701.0, 5, 11, 24 << 10);
  CheckAllConfigs(b.Build());
}

// With metadata simulation on, replay must also reproduce the i-node and
// directory accesses keyed off open/close/unlink records.
TEST(ReplayParity, MetadataSimulation) {
  GeneratorOptions options;
  options.duration = Duration::Minutes(10);
  options.seed = 8552;
  const Trace trace = GenerateTraceOnly(ProfileA5(), options);
  const ReplayLog log = ReplayLog::Build(trace);
  for (uint64_t size : {400ull << 10, 4ull << 20}) {
    CacheConfig c;
    c.size_bytes = size;
    c.policy = WritePolicy::kFlushBack;
    c.flush_interval = Duration::Seconds(30);
    c.simulate_metadata = true;
    ExpectIdentical(SimulateCache(trace, c), SimulateCache(log, c), c.ToString());
  }
}

// The sweep built from a trace and the sweep over a prebuilt log agree, and
// parallel workers sharing one log match the sequential result.
TEST(ReplayParity, SweepOverSharedLog) {
  GeneratorOptions options;
  options.duration = Duration::Minutes(10);
  options.seed = 8553;
  const Trace trace = GenerateTraceOnly(ProfileA5(), options);
  const ReplayLog log = ReplayLog::Build(trace);
  const auto from_trace = RunCacheSweep(trace, Fig5Configs(), 1);
  const auto from_log = RunCacheSweep(log, Fig5Configs(), 8);
  ASSERT_EQ(from_trace.size(), from_log.size());
  for (size_t i = 0; i < from_trace.size(); ++i) {
    ExpectIdentical(from_trace[i].metrics, from_log[i].metrics,
                    from_trace[i].config.ToString());
  }
}

// The streaming builders — Build over a TraceSource and BuildFromFile over a
// real trace file — must produce a log whose replay is bit-identical to the
// in-memory build's, and must surface file errors as a clean Status.
TEST(ReplayParity, StreamingBuildMatchesInMemory) {
  GeneratorOptions options;
  options.duration = Duration::Minutes(10);
  options.seed = 8554;
  const Trace trace = GenerateTraceOnly(ProfileA5(), options);
  const ReplayLog direct = ReplayLog::Build(trace);

  const std::string path = (std::filesystem::temp_directory_path() /
                            "bsdtrace-replay-parity-stream.trc")
                               .string();
  ASSERT_TRUE(SaveTrace(path, trace).ok());
  auto from_file = ReplayLog::BuildFromFile(path);
  std::remove(path.c_str());
  ASSERT_TRUE(from_file.ok()) << from_file.status().message();
  EXPECT_EQ(from_file.value().record_count(), direct.record_count());
  EXPECT_EQ(from_file.value().transfer_count(), direct.transfer_count());
  EXPECT_EQ(from_file.value().event_count(), direct.event_count());

  for (const CacheConfig& c : Fig5Configs()) {
    ExpectIdentical(SimulateCache(direct, c), SimulateCache(from_file.value(), c),
                    c.ToString());
  }

  auto missing = ReplayLog::BuildFromFile("/nonexistent/bsdtrace-replay.trc");
  EXPECT_FALSE(missing.ok());
}

TEST(ReplayLogStats, CountsAndBilling) {
  TraceBuilder b;
  b.WholeRead(1.0, 2.0, 1, 7, 8192);
  b.WholeWrite(3.0, 4.0, 2, 8, 4096);
  const Trace trace = b.Build();
  const ReplayLog log = ReplayLog::Build(trace, BillingPolicy::kAtPreviousEvent);
  EXPECT_EQ(log.billing(), BillingPolicy::kAtPreviousEvent);
  EXPECT_EQ(log.record_count(), trace.size());
  EXPECT_EQ(log.transfer_count(), 2u);
  EXPECT_EQ(log.event_count(), trace.size() + 2);
  EXPECT_EQ(log.distinct_files(), 2u);
  EXPECT_EQ(log.dangling_opens(), 0u);
  EXPECT_EQ(log.orphan_events(), 0u);
}

}  // namespace
}  // namespace bsdtrace
