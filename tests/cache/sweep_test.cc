#include "src/cache/sweep.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "src/util/rng.h"
#include "src/workload/fleet.h"
#include "src/workload/generator.h"
#include "src/workload/profile.h"
#include "src/workload/sharded_generator.h"
#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

Trace SmallTrace() {
  TraceBuilder b;
  double t = 1;
  for (OpenId oid = 1; oid <= 100; ++oid) {
    b.WholeRead(t, t + 0.1, oid, 1 + oid % 10, 8192);
    t += 1;
  }
  return b.Build();
}

TEST(RunCacheSweep, AllPointsComputed) {
  const auto points = RunCacheSweep(SmallTrace(), Fig5Configs());
  EXPECT_EQ(points.size(), 24u);  // 6 sizes x 4 policies
  for (const SweepPoint& p : points) {
    EXPECT_GT(p.metrics.logical_accesses, 0u);
  }
}

TEST(RunCacheSweep, SingleThreadMatchesParallel) {
  const Trace t = SmallTrace();
  const auto seq = RunCacheSweep(t, Fig5Configs(), 1);
  const auto par = RunCacheSweep(t, Fig5Configs(), 8);
  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].metrics.DiskIos(), par[i].metrics.DiskIos()) << i;
    EXPECT_EQ(seq[i].metrics.logical_accesses, par[i].metrics.logical_accesses) << i;
  }
}

TEST(Fig5Configs, CoversPaperAxes) {
  const auto configs = Fig5Configs();
  std::set<uint64_t> sizes;
  std::set<int> policies;
  for (const CacheConfig& c : configs) {
    sizes.insert(c.size_bytes);
    policies.insert(static_cast<int>(c.policy) * 1000 +
                    (c.policy == WritePolicy::kFlushBack
                         ? static_cast<int>(c.flush_interval.seconds())
                         : 0));
    EXPECT_EQ(c.block_size, 4096u);
  }
  EXPECT_EQ(sizes.size(), 6u);
  EXPECT_EQ(policies.size(), 4u);
  EXPECT_EQ(*sizes.begin(), 390u << 10);  // the "UNIX" point
  EXPECT_EQ(*sizes.rbegin(), 16u << 20);
}

TEST(Fig6Configs, CoversPaperAxes) {
  const auto configs = Fig6Configs();
  EXPECT_EQ(configs.size(), 24u);  // 6 block sizes x 4 cache sizes
  for (const CacheConfig& c : configs) {
    EXPECT_EQ(c.policy, WritePolicy::kDelayedWrite);
  }
}

TEST(Fig7Configs, PairsPageinOnOff) {
  const auto configs = Fig7Configs();
  EXPECT_EQ(configs.size(), 12u);
  size_t with = 0;
  for (const CacheConfig& c : configs) {
    with += c.simulate_execve_pagein ? 1 : 0;
  }
  EXPECT_EQ(with, 6u);
}

TEST(RunCacheSweep, EmptyConfigList) {
  EXPECT_TRUE(RunCacheSweep(SmallTrace(), {}).empty());
}

// --- Planned sweep (Mattson + fused replay) --------------------------------

// Bit-level CacheMetrics equality, floating-point residency stats included:
// the planned engines must perform the identical Add() sequence.
void ExpectIdentical(const CacheMetrics& a, const CacheMetrics& b, const std::string& label) {
  EXPECT_EQ(a.logical_accesses, b.logical_accesses) << label;
  EXPECT_EQ(a.read_accesses, b.read_accesses) << label;
  EXPECT_EQ(a.write_accesses, b.write_accesses) << label;
  EXPECT_EQ(a.metadata_accesses, b.metadata_accesses) << label;
  EXPECT_EQ(a.disk_reads, b.disk_reads) << label;
  EXPECT_EQ(a.disk_writes, b.disk_writes) << label;
  EXPECT_EQ(a.dirty_discarded, b.dirty_discarded) << label;
  EXPECT_EQ(a.evictions, b.evictions) << label;
  EXPECT_EQ(a.residency_over_20min, b.residency_over_20min) << label;
  EXPECT_EQ(a.residency_samples, b.residency_samples) << label;
  EXPECT_EQ(a.residency_seconds.count(), b.residency_seconds.count()) << label;
  EXPECT_EQ(a.residency_seconds.sum(), b.residency_seconds.sum()) << label;
  EXPECT_EQ(a.residency_seconds.variance(), b.residency_seconds.variance()) << label;
  EXPECT_EQ(a.residency_seconds.min(), b.residency_seconds.min()) << label;
  EXPECT_EQ(a.residency_seconds.max(), b.residency_seconds.max()) << label;
}

// Invalidation- and write-heavy builder trace (unlinks, truncates, whole-file
// overwrites, partial writes, reads) — the hard case for both fast paths.
Trace MixedTrace(uint64_t seed, int ops = 800) {
  Rng rng(seed);
  TraceBuilder b;
  double t = 1;
  OpenId oid = 1;
  for (int i = 0; i < ops; ++i) {
    const FileId file = static_cast<FileId>(rng.UniformInt(1, 25));
    const int kind = rng.UniformInt(0, 9);
    if (kind == 0) {
      b.Unlink(t, file);
    } else if (kind == 1) {
      b.Truncate(t, file, static_cast<uint64_t>(rng.UniformInt(0, 30000)));
    } else if (kind <= 3) {
      b.WholeWrite(t, t + 0.1, oid++, file, static_cast<uint64_t>(rng.UniformInt(1, 50000)));
    } else if (kind == 4) {
      const uint64_t offset = static_cast<uint64_t>(rng.UniformInt(0, 60000));
      const uint64_t len = static_cast<uint64_t>(rng.UniformInt(1, 16000));
      b.Open(t, oid, file, offset + len, AccessMode::kWriteOnly, 1, offset);
      b.Close(t + 0.1, oid, file, offset + len, offset + len);
      ++oid;
    } else if (kind == 5) {
      b.Execve(t, file, static_cast<uint64_t>(rng.UniformInt(0, 20000)));
    } else {
      b.WholeRead(t, t + 0.1, oid++, file, static_cast<uint64_t>(rng.UniformInt(1, 60000)));
    }
    t += 20;  // spread across flush epochs
  }
  return b.Build();
}

std::vector<CacheConfig> AllFigureConfigs() {
  std::vector<CacheConfig> configs = Fig5Configs();
  for (const CacheConfig& c : Fig6Configs()) {
    configs.push_back(c);
  }
  for (const CacheConfig& c : Fig7Configs()) {
    configs.push_back(c);
  }
  return configs;
}

void ExpectPlannedMatchesReplayed(const Trace& trace, const std::vector<CacheConfig>& configs,
                                  unsigned threads) {
  const ReplayLog log = ReplayLog::Build(trace);
  const std::vector<SweepPoint> replayed = RunCacheSweep(log, configs, threads);
  const PlannedSweep planned = RunPlannedSweep(log, configs, {}, threads);
  EXPECT_TRUE(planned.parity);
  ASSERT_EQ(planned.points.size(), replayed.size());
  for (size_t i = 0; i < replayed.size(); ++i) {
    ExpectIdentical(planned.points[i].metrics, replayed[i].metrics,
                    configs[i].ToString() + " threads=" + std::to_string(threads));
  }
}

TEST(PlannedSweep, MattsonFusedSweepBitIdenticalToReplayedSweep) {
  const Trace trace = MixedTrace(191);
  for (const unsigned threads : {1u, 8u}) {
    ExpectPlannedMatchesReplayed(trace, AllFigureConfigs(), threads);
  }
}

TEST(PlannedSweep, FusedSimulatorMatchesPerConfigSimulators) {
  const Trace trace = MixedTrace(733);
  const ReplayLog log = ReplayLog::Build(trace);
  CacheConfig base;
  base.size_bytes = 2 << 20;
  base.block_size = 4096;
  const std::vector<FusedCacheSimulator::PolicyLane> lanes = {
      {WritePolicy::kWriteThrough, Duration::Seconds(30)},
      {WritePolicy::kFlushBack, Duration::Seconds(30)},
      {WritePolicy::kFlushBack, Duration::Minutes(5)},
      {WritePolicy::kDelayedWrite, Duration::Seconds(30)},
  };
  FusedCacheSimulator fused(base, lanes);
  fused.SetExtentFeeds(log.transfer_extents().data(), log.execve_extents().data());
  fused.ReserveFiles(log.distinct_files());
  log.ReplayDataEventsInto(fused);
  fused.Finish();
  for (size_t i = 0; i < lanes.size(); ++i) {
    CacheConfig c = base;
    c.policy = lanes[i].policy;
    c.flush_interval = lanes[i].flush_interval;
    ExpectIdentical(fused.LaneMetrics(i), SimulateCache(log, c),
                    "lane " + std::to_string(i) + " " + c.ToString());
  }
}

TEST(PlannedSweep, MetadataConfigsFallBackToPerConfigReplay) {
  const Trace trace = MixedTrace(47, 300);
  std::vector<CacheConfig> configs = Fig5Configs();
  CacheConfig meta;
  meta.size_bytes = 1 << 20;
  meta.simulate_metadata = true;
  configs.push_back(meta);
  const ReplayLog log = ReplayLog::Build(trace);
  const PlannedSweep planned = RunPlannedSweep(log, configs);
  EXPECT_EQ(planned.replay_fallbacks, 1u);
  EXPECT_EQ(planned.fused_replays, 6u);   // one per Fig. 5 cache size
  EXPECT_EQ(planned.stack_passes, 1u);    // one (4 KB, no page-in) family
  EXPECT_TRUE(planned.parity);
  ExpectIdentical(planned.points.back().metrics, SimulateCache(log, meta), "metadata fallback");
}

TEST(PlannedSweep, CurvesCoverRequestedAndConfigSizes) {
  const Trace trace = MixedTrace(59, 300);
  const PlannedSweep planned = RunPlannedSweep(trace, Fig5Configs());
  ASSERT_EQ(planned.curves.size(), 1u);
  const SweepCurve& curve = planned.curves.front();
  EXPECT_EQ(curve.block_size, 4096u);
  // The requested dense axis plus every Fig. 5 size, deduplicated and sorted.
  const std::vector<uint64_t> dense = SweepCurveSizes();
  std::set<uint64_t> expected(dense.begin(), dense.end());
  for (const CacheConfig& c : Fig5Configs()) {
    expected.insert(c.size_bytes);
  }
  EXPECT_EQ(std::vector<uint64_t>(expected.begin(), expected.end()), curve.size_bytes);
  ASSERT_EQ(curve.fetch_misses.size(), curve.size_bytes.size());
  // Fetch misses fall (weakly) as the cache grows.
  for (size_t i = 1; i < curve.fetch_misses.size(); ++i) {
    EXPECT_LE(curve.fetch_misses[i], curve.fetch_misses[i - 1]) << i;
  }
}

TEST(PlannedSweep, EmptyConfigList) {
  EXPECT_TRUE(RunPlannedSweep(SmallTrace(), {}).points.empty());
}

// Property tests on generated workloads (ISSUE 6 satellite): the planned
// engine must match the replayed sweep on the paper's machine profiles and a
// mixed fleet, serial and threaded.
class PlannedSweepProfiles : public ::testing::TestWithParam<const char*> {};

TEST_P(PlannedSweepProfiles, MatchesReplayedSweepOnGeneratedTrace) {
  GeneratorOptions options;
  options.duration = Duration::Minutes(12);
  options.seed = 8806;
  const Trace trace = GenerateTraceOnly(ProfileByName(GetParam()), options);
  for (const unsigned threads : {1u, 4u}) {
    ExpectPlannedMatchesReplayed(trace, AllFigureConfigs(), threads);
  }
}

INSTANTIATE_TEST_SUITE_P(Machines, PlannedSweepProfiles, ::testing::Values("A5", "E3", "C4"));

TEST(PlannedSweep, MatchesReplayedSweepOnFleetTrace) {
  auto fleet = ParseFleetSpec("2xA5+1xE3");
  ASSERT_TRUE(fleet.ok()) << fleet.status().message();
  FleetGeneratorOptions options;
  options.base.duration = Duration::Minutes(8);
  options.base.seed = 2207;
  options.shards_per_machine = 2;
  options.threads = 2;
  auto result = GenerateFleetTrace(fleet.value(), options);
  ASSERT_TRUE(result.ok()) << result.status().message();
  for (const unsigned threads : {1u, 4u}) {
    ExpectPlannedMatchesReplayed(result.value().trace, Fig5Configs(), threads);
  }
}

}  // namespace
}  // namespace bsdtrace
