#include "src/cache/sweep.h"

#include <set>

#include <gtest/gtest.h>

#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

Trace SmallTrace() {
  TraceBuilder b;
  double t = 1;
  for (OpenId oid = 1; oid <= 100; ++oid) {
    b.WholeRead(t, t + 0.1, oid, 1 + oid % 10, 8192);
    t += 1;
  }
  return b.Build();
}

TEST(RunCacheSweep, AllPointsComputed) {
  const auto points = RunCacheSweep(SmallTrace(), Fig5Configs());
  EXPECT_EQ(points.size(), 24u);  // 6 sizes x 4 policies
  for (const SweepPoint& p : points) {
    EXPECT_GT(p.metrics.logical_accesses, 0u);
  }
}

TEST(RunCacheSweep, SingleThreadMatchesParallel) {
  const Trace t = SmallTrace();
  const auto seq = RunCacheSweep(t, Fig5Configs(), 1);
  const auto par = RunCacheSweep(t, Fig5Configs(), 8);
  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].metrics.DiskIos(), par[i].metrics.DiskIos()) << i;
    EXPECT_EQ(seq[i].metrics.logical_accesses, par[i].metrics.logical_accesses) << i;
  }
}

TEST(Fig5Configs, CoversPaperAxes) {
  const auto configs = Fig5Configs();
  std::set<uint64_t> sizes;
  std::set<int> policies;
  for (const CacheConfig& c : configs) {
    sizes.insert(c.size_bytes);
    policies.insert(static_cast<int>(c.policy) * 1000 +
                    (c.policy == WritePolicy::kFlushBack
                         ? static_cast<int>(c.flush_interval.seconds())
                         : 0));
    EXPECT_EQ(c.block_size, 4096u);
  }
  EXPECT_EQ(sizes.size(), 6u);
  EXPECT_EQ(policies.size(), 4u);
  EXPECT_EQ(*sizes.begin(), 390u << 10);  // the "UNIX" point
  EXPECT_EQ(*sizes.rbegin(), 16u << 20);
}

TEST(Fig6Configs, CoversPaperAxes) {
  const auto configs = Fig6Configs();
  EXPECT_EQ(configs.size(), 24u);  // 6 block sizes x 4 cache sizes
  for (const CacheConfig& c : configs) {
    EXPECT_EQ(c.policy, WritePolicy::kDelayedWrite);
  }
}

TEST(Fig7Configs, PairsPageinOnOff) {
  const auto configs = Fig7Configs();
  EXPECT_EQ(configs.size(), 12u);
  size_t with = 0;
  for (const CacheConfig& c : configs) {
    with += c.simulate_execve_pagein ? 1 : 0;
  }
  EXPECT_EQ(with, 6u);
}

TEST(RunCacheSweep, EmptyConfigList) {
  EXPECT_TRUE(RunCacheSweep(SmallTrace(), {}).empty());
}

}  // namespace
}  // namespace bsdtrace
