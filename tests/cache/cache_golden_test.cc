// Golden single-level cache metrics, captured from the pre-CacheLevel-split
// CacheSimulator (PR 9) on deterministic generated traces.  The CacheLevel
// refactor — and any future reshaping of the cache core — must reproduce
// these numbers bit-for-bit: the parity tests pin replay-vs-direct engines
// against each other, while this test pins both against history.

#include <cstdint>

#include <gtest/gtest.h>

#include "src/cache/sweep.h"
#include "src/trace/replay_log.h"
#include "src/workload/generator.h"
#include "src/workload/profile.h"

namespace bsdtrace {
namespace {

struct GoldenRow {
  const char* profile;
  size_t config;
  uint64_t logical_accesses;
  uint64_t read_accesses;
  uint64_t write_accesses;
  uint64_t disk_reads;
  uint64_t disk_writes;
  uint64_t dirty_discarded;
  uint64_t evictions;
  uint64_t residency_samples;
  double residency_sum_seconds;
};

// The five configurations exercise every policy, page-in, and metadata arm.
std::vector<CacheConfig> GoldenConfigs() {
  std::vector<CacheConfig> configs;
  CacheConfig c;
  c.size_bytes = 400 << 10;
  c.policy = WritePolicy::kDelayedWrite;
  configs.push_back(c);
  c.size_bytes = 2 << 20;
  c.policy = WritePolicy::kWriteThrough;
  configs.push_back(c);
  c.size_bytes = 4 << 20;
  c.policy = WritePolicy::kFlushBack;
  c.flush_interval = Duration::Seconds(30);
  configs.push_back(c);
  c = CacheConfig{};
  c.size_bytes = 1 << 20;
  c.policy = WritePolicy::kDelayedWrite;
  c.simulate_execve_pagein = true;
  configs.push_back(c);
  c = CacheConfig{};
  c.size_bytes = 1 << 20;
  c.policy = WritePolicy::kFlushBack;
  c.flush_interval = Duration::Minutes(5);
  c.simulate_metadata = true;
  configs.push_back(c);
  return configs;
}

// Captured 2026-08 from the pre-refactor simulator at commit "Live trace
// service..." (30-minute traces, seed 19851201).
const GoldenRow kGolden[] = {
    {"A5", 0, 609ull, 288ull, 321ull, 132ull, 6ull, 195ull, 69ull, 364ull, 147472.73000000004},
    {"A5", 1, 609ull, 288ull, 321ull, 129ull, 321ull, 0ull, 0ull, 361ull, 183914.98999999999},
    {"A5", 2, 609ull, 288ull, 321ull, 129ull, 288ull, 14ull, 0ull, 361ull, 183914.98999999999},
    {"A5", 3, 693ull, 372ull, 321ull, 197ull, 0ull, 195ull, 0ull, 429ull, 237616.98000000021},
    {"A5", 4, 1998ull, 884ull, 1114ull, 150ull, 173ull, 95ull, 0ull, 382ull, 212697.28000000009},
    {"E3", 0, 522ull, 204ull, 318ull, 86ull, 9ull, 197ull, 24ull, 321ull, 136903.68000000008},
    {"E3", 1, 522ull, 204ull, 318ull, 86ull, 318ull, 0ull, 0ull, 321ull, 141426.46999999994},
    {"E3", 2, 522ull, 204ull, 318ull, 86ull, 284ull, 15ull, 0ull, 321ull, 141426.46999999994},
    {"E3", 3, 591ull, 273ull, 318ull, 142ull, 0ull, 197ull, 0ull, 377ull, 206942.64999999997},
    {"E3", 4, 1815ull, 696ull, 1119ull, 111ull, 174ull, 97ull, 0ull, 346ull, 178719.09000000003},
    {"C4", 0, 779ull, 400ull, 379ull, 171ull, 19ull, 259ull, 135ull, 495ull, 134960.29000000018},
    {"C4", 1, 779ull, 400ull, 379ull, 152ull, 379ull, 0ull, 0ull, 476ull, 189851.85000000003},
    {"C4", 2, 779ull, 400ull, 379ull, 152ull, 333ull, 40ull, 0ull, 476ull, 189851.85000000003},
    {"C4", 3, 1459ull, 1080ull, 379ull, 702ull, 22ull, 258ull, 511ull, 1026ull, 296591.44000000239},
    {"C4", 4, 2086ull, 892ull, 1194ull, 179ull, 190ull, 161ull, 0ull, 503ull, 226086.49000000005},
};

Trace GoldenTrace(const char* profile) {
  GeneratorOptions options;
  options.duration = Duration::Minutes(30);
  options.seed = 19851201;
  if (std::string(profile) == "A5") {
    return GenerateTraceOnly(ProfileA5(), options);
  }
  if (std::string(profile) == "E3") {
    return GenerateTraceOnly(ProfileE3(), options);
  }
  return GenerateTraceOnly(ProfileC4(), options);
}

void ExpectGolden(const GoldenRow& row, const CacheMetrics& m) {
  SCOPED_TRACE(std::string(row.profile) + " config " + std::to_string(row.config));
  EXPECT_EQ(m.logical_accesses, row.logical_accesses);
  EXPECT_EQ(m.read_accesses, row.read_accesses);
  EXPECT_EQ(m.write_accesses, row.write_accesses);
  EXPECT_EQ(m.disk_reads, row.disk_reads);
  EXPECT_EQ(m.disk_writes, row.disk_writes);
  EXPECT_EQ(m.dirty_discarded, row.dirty_discarded);
  EXPECT_EQ(m.evictions, row.evictions);
  EXPECT_EQ(m.residency_samples, row.residency_samples);
  // Bit-exact: the golden value was printed with %.17g, which round-trips
  // doubles, and the accumulation order is deterministic.
  EXPECT_EQ(m.residency_seconds.sum(), row.residency_sum_seconds);
}

TEST(CacheGolden, SingleLevelMetricsMatchPreRefactorCapture) {
  const std::vector<CacheConfig> configs = GoldenConfigs();
  for (const char* profile : {"A5", "E3", "C4"}) {
    const Trace trace = GoldenTrace(profile);
    const ReplayLog log = ReplayLog::Build(trace);
    for (const GoldenRow& row : kGolden) {
      if (std::string(row.profile) != profile) {
        continue;
      }
      // Both engines — direct reconstruction and replay-log — must hit the
      // golden numbers.
      ExpectGolden(row, SimulateCache(trace, configs[row.config]));
      ExpectGolden(row, SimulateCache(log, configs[row.config]));
    }
  }
}

}  // namespace
}  // namespace bsdtrace
