#include "src/cache/block_cache.h"

#include <vector>

#include <gtest/gtest.h>

namespace bsdtrace {
namespace {

BlockKey Key(FileId f, uint64_t i) { return BlockKey{.file = f, .index = i}; }

auto NoEvict() {
  return [](const CacheEntry&) { FAIL() << "unexpected eviction"; };
}

TEST(BlockCache, MissOnEmpty) {
  BlockCache cache(4);
  EXPECT_EQ(cache.Touch(Key(1, 0)), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(BlockCache, InsertThenHit) {
  BlockCache cache(4);
  cache.Insert(Key(1, 0), SimTime::FromSeconds(1), NoEvict());
  CacheEntry* e = cache.Touch(Key(1, 0));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->key, Key(1, 0));
  EXPECT_FALSE(e->dirty);
  EXPECT_EQ(e->loaded, SimTime::FromSeconds(1));
}

TEST(BlockCache, EvictsLeastRecentlyUsed) {
  BlockCache cache(2);
  cache.Insert(Key(1, 0), SimTime::Origin(), NoEvict());
  cache.Insert(Key(1, 1), SimTime::Origin(), NoEvict());
  ASSERT_NE(cache.Touch(Key(1, 0)), nullptr);  // 0 becomes MRU; 1 is LRU
  std::vector<BlockKey> evicted;
  cache.Insert(Key(1, 2), SimTime::Origin(),
               [&](const CacheEntry& victim) { evicted.push_back(victim.key); });
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], Key(1, 1));
  EXPECT_NE(cache.Touch(Key(1, 0)), nullptr);
  EXPECT_EQ(cache.Touch(Key(1, 1)), nullptr);
}

TEST(BlockCache, EvictionSeesDirtyFlag) {
  BlockCache cache(1);
  cache.Insert(Key(1, 0), SimTime::Origin(), NoEvict());
  cache.MarkDirty(cache.Touch(Key(1, 0)));
  bool saw_dirty = false;
  cache.Insert(Key(2, 0), SimTime::Origin(),
               [&](const CacheEntry& victim) { saw_dirty = victim.dirty; });
  EXPECT_TRUE(saw_dirty);
  EXPECT_EQ(cache.dirty_count(), 0u);  // dirty count adjusted on eviction
}

TEST(BlockCache, RemoveSpecificBlock) {
  BlockCache cache(4);
  cache.Insert(Key(1, 0), SimTime::Origin(), NoEvict());
  cache.Insert(Key(1, 1), SimTime::Origin(), NoEvict());
  int dropped = 0;
  cache.Remove(Key(1, 0), [&](const CacheEntry&) { ++dropped; });
  EXPECT_EQ(dropped, 1);
  EXPECT_EQ(cache.Touch(Key(1, 0)), nullptr);
  EXPECT_NE(cache.Touch(Key(1, 1)), nullptr);
  // Removing a missing block is a no-op.
  cache.Remove(Key(9, 9), [&](const CacheEntry&) { ++dropped; });
  EXPECT_EQ(dropped, 1);
}

TEST(BlockCache, RemoveFileBlocksFromIndex) {
  BlockCache cache(8);
  for (uint64_t i = 0; i < 4; ++i) {
    cache.Insert(Key(1, i), SimTime::Origin(), NoEvict());
  }
  cache.Insert(Key(2, 0), SimTime::Origin(), NoEvict());
  int dropped = 0;
  cache.RemoveFileBlocks(1, 2, [&](const CacheEntry&) { ++dropped; });
  EXPECT_EQ(dropped, 2);  // blocks 2 and 3
  EXPECT_NE(cache.Touch(Key(1, 0)), nullptr);
  EXPECT_NE(cache.Touch(Key(1, 1)), nullptr);
  EXPECT_EQ(cache.Touch(Key(1, 2)), nullptr);
  EXPECT_NE(cache.Touch(Key(2, 0)), nullptr);
}

TEST(BlockCache, RemoveAllFileBlocks) {
  BlockCache cache(8);
  for (uint64_t i = 0; i < 3; ++i) {
    cache.Insert(Key(5, i), SimTime::Origin(), NoEvict());
  }
  int dropped = 0;
  cache.RemoveFileBlocks(5, 0, [&](const CacheEntry&) { ++dropped; });
  EXPECT_EQ(dropped, 3);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(BlockCache, ForEachVisitsAll) {
  BlockCache cache(8);
  for (uint64_t i = 0; i < 5; ++i) {
    cache.Insert(Key(1, i), SimTime::Origin(), NoEvict());
  }
  int visited = 0;
  cache.ForEach([&](CacheEntry&) { ++visited; });
  EXPECT_EQ(visited, 5);
}

TEST(BlockCache, DirtyCountBookkeeping) {
  BlockCache cache(4);
  cache.Insert(Key(1, 0), SimTime::Origin(), NoEvict());
  EXPECT_EQ(cache.dirty_count(), 0u);
  cache.MarkDirty(cache.Touch(Key(1, 0)));
  EXPECT_EQ(cache.dirty_count(), 1u);
  cache.MarkClean(cache.Touch(Key(1, 0)));
  EXPECT_EQ(cache.dirty_count(), 0u);
  cache.MarkDirty(cache.Touch(Key(1, 0)));
  cache.Remove(Key(1, 0), [](const CacheEntry&) {});
  EXPECT_EQ(cache.dirty_count(), 0u);
}

// DrainDirty must visit exactly the dirty blocks, clear them, and survive
// interleaved evictions that recycle dirty slots.
TEST(BlockCache, DrainDirtyWalksOnlyDirtyChain) {
  BlockCache cache(4);
  CacheEntry* a = cache.Insert(Key(1, 0), SimTime::Origin(), NoEvict());
  cache.Insert(Key(1, 1), SimTime::Origin(), NoEvict());
  CacheEntry* c = cache.Insert(Key(1, 2), SimTime::Origin(), NoEvict());
  cache.Insert(Key(1, 3), SimTime::Origin(), NoEvict());
  cache.MarkDirty(a);
  cache.MarkDirty(c);
  std::vector<BlockKey> cleaned;
  cache.DrainDirty([&](CacheEntry& e) { cleaned.push_back(e.key); });
  ASSERT_EQ(cleaned.size(), 2u);
  EXPECT_EQ(cache.dirty_count(), 0u);
  EXPECT_FALSE(cache.Touch(Key(1, 0))->dirty);
  EXPECT_FALSE(cache.Touch(Key(1, 2))->dirty);
  // Dirty again, then evict one dirty block: the chain must stay consistent.
  cache.MarkDirty(cache.Touch(Key(1, 1)));
  cache.MarkDirty(cache.Touch(Key(1, 3)));
  ASSERT_NE(cache.Touch(Key(1, 3)), nullptr);  // make 1 the LRU victim
  ASSERT_NE(cache.Touch(Key(1, 0)), nullptr);
  ASSERT_NE(cache.Touch(Key(1, 2)), nullptr);
  bool evicted_dirty = false;
  cache.Insert(Key(2, 0), SimTime::Origin(),
               [&](const CacheEntry& victim) { evicted_dirty = victim.dirty; });
  EXPECT_TRUE(evicted_dirty);
  EXPECT_EQ(cache.dirty_count(), 1u);
  cleaned.clear();
  cache.DrainDirty([&](CacheEntry& e) { cleaned.push_back(e.key); });
  ASSERT_EQ(cleaned.size(), 1u);
  EXPECT_EQ(cleaned[0], Key(1, 3));
}

TEST(BlockCache, CapacityOne) {
  BlockCache cache(1);
  cache.Insert(Key(1, 0), SimTime::Origin(), NoEvict());
  int evictions = 0;
  for (uint64_t i = 1; i < 10; ++i) {
    cache.Insert(Key(1, i), SimTime::Origin(), [&](const CacheEntry&) { ++evictions; });
  }
  EXPECT_EQ(evictions, 9);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(BlockCache, FifoIgnoresReuse) {
  BlockCache cache(2, ReplacementPolicy::kFifo);
  cache.Insert(Key(1, 0), SimTime::Origin(), NoEvict());
  cache.Insert(Key(1, 1), SimTime::Origin(), NoEvict());
  ASSERT_NE(cache.Touch(Key(1, 0)), nullptr);  // reuse must NOT protect 0
  std::vector<BlockKey> evicted;
  cache.Insert(Key(1, 2), SimTime::Origin(),
               [&](const CacheEntry& victim) { evicted.push_back(victim.key); });
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], Key(1, 0));  // oldest-loaded goes first
}

TEST(BlockCache, ClockGivesSecondChance) {
  BlockCache cache(3, ReplacementPolicy::kClock);
  cache.Insert(Key(1, 0), SimTime::Origin(), NoEvict());
  cache.Insert(Key(1, 1), SimTime::Origin(), NoEvict());
  cache.Insert(Key(1, 2), SimTime::Origin(), NoEvict());
  // Reference 0 and 1; 2 is the only unreferenced block, so the sweep spares
  // the referenced ones once and evicts 2 despite it being newest.
  ASSERT_NE(cache.Touch(Key(1, 0)), nullptr);
  ASSERT_NE(cache.Touch(Key(1, 1)), nullptr);
  std::vector<BlockKey> evicted;
  cache.Insert(Key(1, 3), SimTime::Origin(),
               [&](const CacheEntry& victim) { evicted.push_back(victim.key); });
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], Key(1, 2));
  // The sweep consumed 0's and 1's reference bits: next eviction takes the
  // tail without protection.
  cache.Insert(Key(1, 4), SimTime::Origin(),
               [&](const CacheEntry& victim) { evicted.push_back(victim.key); });
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_NE(cache.Touch(Key(1, 3)), nullptr);  // the newly-inserted survive
  EXPECT_NE(cache.Touch(Key(1, 4)), nullptr);
}

TEST(BlockCache, ClockAllReferencedFallsBackToFullSweep) {
  BlockCache cache(2, ReplacementPolicy::kClock);
  cache.Insert(Key(1, 0), SimTime::Origin(), NoEvict());
  cache.Insert(Key(1, 1), SimTime::Origin(), NoEvict());
  ASSERT_NE(cache.Touch(Key(1, 0)), nullptr);
  ASSERT_NE(cache.Touch(Key(1, 1)), nullptr);
  int evictions = 0;
  cache.Insert(Key(1, 2), SimTime::Origin(), [&](const CacheEntry&) { ++evictions; });
  EXPECT_EQ(evictions, 1);  // sweep clears every bit, then evicts
  EXPECT_EQ(cache.size(), 2u);
}

// Per-file invalidation must stay consistent while slab slots are recycled
// through evictions (the intrusive chain is rebuilt per slot reuse).
TEST(BlockCache, PerFileChainSurvivesSlotReuse) {
  BlockCache cache(4);
  int evictions = 0;
  auto count_evict = [&](const CacheEntry&) { ++evictions; };
  // Three rounds of churn across two files through the same four slots.
  for (uint64_t round = 0; round < 3; ++round) {
    cache.Insert(Key(1, 10 * round + 0), SimTime::Origin(), count_evict);
    cache.Insert(Key(2, 10 * round + 1), SimTime::Origin(), count_evict);
    cache.Insert(Key(1, 10 * round + 2), SimTime::Origin(), count_evict);
    cache.Insert(Key(2, 10 * round + 3), SimTime::Origin(), count_evict);
  }
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(evictions, 8);
  // Last round resident: file 1 blocks {20, 22}, file 2 blocks {21, 23}.
  std::vector<BlockKey> dropped;
  cache.RemoveFileBlocks(1, 0, [&](const CacheEntry& e) { dropped.push_back(e.key); });
  EXPECT_EQ(dropped.size(), 2u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Touch(Key(1, 20)), nullptr);
  EXPECT_EQ(cache.Touch(Key(1, 22)), nullptr);
  EXPECT_NE(cache.Touch(Key(2, 21)), nullptr);
  EXPECT_NE(cache.Touch(Key(2, 23)), nullptr);
  // Partial invalidation of file 2 from index 23 upward.
  dropped.clear();
  cache.RemoveFileBlocks(2, 23, [&](const CacheEntry& e) { dropped.push_back(e.key); });
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0], Key(2, 23));
  EXPECT_NE(cache.Touch(Key(2, 21)), nullptr);
}

TEST(BlockCache, EvictionOrderUnderChurn) {
  // Insert 1..6 into a 4-slot LRU, touching 1 and 2 mid-stream: the eviction
  // order must follow recency exactly (3, 4, then 1 ...).
  BlockCache cache(4);
  std::vector<BlockKey> evicted;
  auto log_evict = [&](const CacheEntry& e) { evicted.push_back(e.key); };
  for (uint64_t i = 1; i <= 4; ++i) {
    cache.Insert(Key(1, i), SimTime::Origin(), log_evict);
  }
  ASSERT_NE(cache.Touch(Key(1, 1)), nullptr);
  ASSERT_NE(cache.Touch(Key(1, 2)), nullptr);
  cache.Insert(Key(1, 5), SimTime::Origin(), log_evict);
  cache.Insert(Key(1, 6), SimTime::Origin(), log_evict);
  cache.Insert(Key(1, 7), SimTime::Origin(), log_evict);
  ASSERT_EQ(evicted.size(), 3u);
  EXPECT_EQ(evicted[0], Key(1, 3));
  EXPECT_EQ(evicted[1], Key(1, 4));
  EXPECT_EQ(evicted[2], Key(1, 1));
}

TEST(BlockCacheKey, HashDistinguishesFileAndIndex) {
  BlockKeyHash h;
  EXPECT_NE(h(Key(1, 2)), h(Key(2, 1)));
  EXPECT_EQ(h(Key(3, 4)), h(Key(3, 4)));
}

}  // namespace
}  // namespace bsdtrace
