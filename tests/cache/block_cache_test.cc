#include "src/cache/block_cache.h"

#include <vector>

#include <gtest/gtest.h>

namespace bsdtrace {
namespace {

BlockKey Key(FileId f, uint64_t i) { return BlockKey{.file = f, .index = i}; }

auto NoEvict() {
  return [](const CacheEntry&) { FAIL() << "unexpected eviction"; };
}

TEST(BlockCache, MissOnEmpty) {
  BlockCache cache(4);
  EXPECT_EQ(cache.Touch(Key(1, 0)), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(BlockCache, InsertThenHit) {
  BlockCache cache(4);
  cache.Insert(Key(1, 0), SimTime::FromSeconds(1), NoEvict());
  CacheEntry* e = cache.Touch(Key(1, 0));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->key, Key(1, 0));
  EXPECT_FALSE(e->dirty);
  EXPECT_EQ(e->loaded, SimTime::FromSeconds(1));
}

TEST(BlockCache, EvictsLeastRecentlyUsed) {
  BlockCache cache(2);
  cache.Insert(Key(1, 0), SimTime::Origin(), NoEvict());
  cache.Insert(Key(1, 1), SimTime::Origin(), NoEvict());
  ASSERT_NE(cache.Touch(Key(1, 0)), nullptr);  // 0 becomes MRU; 1 is LRU
  std::vector<BlockKey> evicted;
  cache.Insert(Key(1, 2), SimTime::Origin(),
               [&](const CacheEntry& victim) { evicted.push_back(victim.key); });
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], Key(1, 1));
  EXPECT_NE(cache.Touch(Key(1, 0)), nullptr);
  EXPECT_EQ(cache.Touch(Key(1, 1)), nullptr);
}

TEST(BlockCache, EvictionSeesDirtyFlag) {
  BlockCache cache(1);
  cache.Insert(Key(1, 0), SimTime::Origin(), NoEvict());
  CacheEntry* e = cache.Touch(Key(1, 0));
  e->dirty = true;
  cache.NoteDirtied();
  bool saw_dirty = false;
  cache.Insert(Key(2, 0), SimTime::Origin(),
               [&](const CacheEntry& victim) { saw_dirty = victim.dirty; });
  EXPECT_TRUE(saw_dirty);
  EXPECT_EQ(cache.dirty_count(), 0u);  // dirty count adjusted on eviction
}

TEST(BlockCache, RemoveSpecificBlock) {
  BlockCache cache(4);
  cache.Insert(Key(1, 0), SimTime::Origin(), NoEvict());
  cache.Insert(Key(1, 1), SimTime::Origin(), NoEvict());
  int dropped = 0;
  cache.Remove(Key(1, 0), [&](const CacheEntry&) { ++dropped; });
  EXPECT_EQ(dropped, 1);
  EXPECT_EQ(cache.Touch(Key(1, 0)), nullptr);
  EXPECT_NE(cache.Touch(Key(1, 1)), nullptr);
  // Removing a missing block is a no-op.
  cache.Remove(Key(9, 9), [&](const CacheEntry&) { ++dropped; });
  EXPECT_EQ(dropped, 1);
}

TEST(BlockCache, RemoveFileBlocksFromIndex) {
  BlockCache cache(8);
  for (uint64_t i = 0; i < 4; ++i) {
    cache.Insert(Key(1, i), SimTime::Origin(), NoEvict());
  }
  cache.Insert(Key(2, 0), SimTime::Origin(), NoEvict());
  int dropped = 0;
  cache.RemoveFileBlocks(1, 2, [&](const CacheEntry&) { ++dropped; });
  EXPECT_EQ(dropped, 2);  // blocks 2 and 3
  EXPECT_NE(cache.Touch(Key(1, 0)), nullptr);
  EXPECT_NE(cache.Touch(Key(1, 1)), nullptr);
  EXPECT_EQ(cache.Touch(Key(1, 2)), nullptr);
  EXPECT_NE(cache.Touch(Key(2, 0)), nullptr);
}

TEST(BlockCache, RemoveAllFileBlocks) {
  BlockCache cache(8);
  for (uint64_t i = 0; i < 3; ++i) {
    cache.Insert(Key(5, i), SimTime::Origin(), NoEvict());
  }
  int dropped = 0;
  cache.RemoveFileBlocks(5, 0, [&](const CacheEntry&) { ++dropped; });
  EXPECT_EQ(dropped, 3);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(BlockCache, ForEachVisitsAll) {
  BlockCache cache(8);
  for (uint64_t i = 0; i < 5; ++i) {
    cache.Insert(Key(1, i), SimTime::Origin(), NoEvict());
  }
  int visited = 0;
  cache.ForEach([&](CacheEntry&) { ++visited; });
  EXPECT_EQ(visited, 5);
}

TEST(BlockCache, DirtyCountBookkeeping) {
  BlockCache cache(4);
  cache.Insert(Key(1, 0), SimTime::Origin(), NoEvict());
  EXPECT_EQ(cache.dirty_count(), 0u);
  cache.Touch(Key(1, 0))->dirty = true;
  cache.NoteDirtied();
  EXPECT_EQ(cache.dirty_count(), 1u);
  cache.Remove(Key(1, 0), [](const CacheEntry&) {});
  EXPECT_EQ(cache.dirty_count(), 0u);
}

TEST(BlockCache, CapacityOne) {
  BlockCache cache(1);
  cache.Insert(Key(1, 0), SimTime::Origin(), NoEvict());
  int evictions = 0;
  for (uint64_t i = 1; i < 10; ++i) {
    cache.Insert(Key(1, i), SimTime::Origin(), [&](const CacheEntry&) { ++evictions; });
  }
  EXPECT_EQ(evictions, 9);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(BlockCacheKey, HashDistinguishesFileAndIndex) {
  BlockKeyHash h;
  EXPECT_NE(h(Key(1, 2)), h(Key(2, 1)));
  EXPECT_EQ(h(Key(3, 4)), h(Key(3, 4)));
}

}  // namespace
}  // namespace bsdtrace
