#include "src/util/flat_map.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace bsdtrace {
namespace {

TEST(FlatMap, InsertFindErase) {
  FlatMap<uint64_t, int, IdHash> map(0);
  EXPECT_EQ(map.Find(7), nullptr);
  map[7] = 42;
  ASSERT_NE(map.Find(7), nullptr);
  EXPECT_EQ(*map.Find(7), 42);
  EXPECT_EQ(map.size(), 1u);
  map[7] = 43;  // overwrite, not duplicate
  EXPECT_EQ(*map.Find(7), 43);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_TRUE(map.Erase(7));
  EXPECT_EQ(map.Find(7), nullptr);
  EXPECT_FALSE(map.Erase(7));
  EXPECT_EQ(map.size(), 0u);
}

TEST(FlatMap, FindOrInsertKeepsExisting) {
  FlatMap<uint64_t, int, IdHash> map(0);
  EXPECT_EQ(map.FindOrInsert(5, 10), 10);
  EXPECT_EQ(map.FindOrInsert(5, 99), 10);
}

TEST(FlatMap, GrowsPastReserveAndRetainsEntries) {
  FlatMap<uint64_t, uint64_t, IdHash> map(0, 16);
  for (uint64_t k = 1; k <= 1000; ++k) {
    map[k] = k * 3;
  }
  EXPECT_EQ(map.size(), 1000u);
  for (uint64_t k = 1; k <= 1000; ++k) {
    ASSERT_NE(map.Find(k), nullptr) << k;
    EXPECT_EQ(*map.Find(k), k * 3);
  }
}

// Degenerate hash forcing every key into one probe chain: exercises the
// backward-shift deletion across wrapped, maximally-colliding chains.
struct CollideHash {
  size_t operator()(uint64_t) const { return 3; }
};

TEST(FlatMap, BackwardShiftEraseUnderFullCollision) {
  FlatMap<uint64_t, uint64_t, CollideHash> map(0, 64);
  for (uint64_t k = 1; k <= 20; ++k) {
    map[k] = k;
  }
  // Erase from the middle, the front, and the back of the chain.
  for (uint64_t k : {10ull, 1ull, 20ull, 15ull, 2ull}) {
    ASSERT_TRUE(map.Erase(k));
  }
  for (uint64_t k = 1; k <= 20; ++k) {
    const bool erased = k == 10 || k == 1 || k == 20 || k == 15 || k == 2;
    if (erased) {
      EXPECT_EQ(map.Find(k), nullptr) << k;
    } else {
      ASSERT_NE(map.Find(k), nullptr) << k;
      EXPECT_EQ(*map.Find(k), k);
    }
  }
  EXPECT_EQ(map.size(), 15u);
}

// Randomized differential test against std::unordered_map.
TEST(FlatMap, MatchesUnorderedMapUnderRandomChurn) {
  FlatMap<uint64_t, uint64_t, IdHash> map(0, 16);
  std::unordered_map<uint64_t, uint64_t> ref;
  Rng rng(2026);
  for (int step = 0; step < 20000; ++step) {
    const uint64_t key = static_cast<uint64_t>(rng.UniformInt(1, 500));
    switch (rng.UniformInt(0, 2)) {
      case 0:
        map[key] = static_cast<uint64_t>(step);
        ref[key] = static_cast<uint64_t>(step);
        break;
      case 1:
        EXPECT_EQ(map.Erase(key), ref.erase(key) > 0);
        break;
      default: {
        const uint64_t* found = map.Find(key);
        auto it = ref.find(key);
        ASSERT_EQ(found != nullptr, it != ref.end()) << key;
        if (found != nullptr) {
          EXPECT_EQ(*found, it->second);
        }
        break;
      }
    }
  }
  EXPECT_EQ(map.size(), ref.size());
}

// Erase-heavy churn (ISSUE 9 satellite): the backward-shift deletion path is
// the map's subtlest code, and the single-level refactor made every cache
// level lean on it.  Bias the workload 2:1 toward erases so the table spends
// its life full of relocation chains, crossing the load limit repeatedly so
// growth rehashes interleave with the shifting.
TEST(FlatMap, EraseHeavyChurnMatchesReference) {
  FlatMap<uint64_t, uint64_t, IdHash> map(0, 16);
  std::unordered_map<uint64_t, uint64_t> ref;
  Rng rng(8509);
  for (int round = 0; round < 40; ++round) {
    // Fill burst: push well past the current table so FindOrInsert rehashes.
    for (int i = 0; i < 300; ++i) {
      const uint64_t key = static_cast<uint64_t>(rng.UniformInt(1, 2000));
      const uint64_t value = static_cast<uint64_t>(round * 1000 + i);
      map[key] = value;
      ref[key] = value;
    }
    // Drain burst: erase-heavy, including misses (absent keys must report
    // false without disturbing live probe chains).
    for (int i = 0; i < 600; ++i) {
      const uint64_t key = static_cast<uint64_t>(rng.UniformInt(1, 2000));
      EXPECT_EQ(map.Erase(key), ref.erase(key) > 0) << key;
    }
    // Full-range audit: presence, value, AND absence must match — a broken
    // backward shift typically loses a key that hashed behind the hole.
    ASSERT_EQ(map.size(), ref.size()) << "round " << round;
    for (uint64_t key = 1; key <= 2000; ++key) {
      const uint64_t* found = map.Find(key);
      auto it = ref.find(key);
      ASSERT_EQ(found != nullptr, it != ref.end()) << key;
      if (found != nullptr) {
        ASSERT_EQ(*found, it->second) << key;
      }
    }
  }
}

// Rehash correctness with holes: grow a table, erase most of it, then force
// a Rehash via Reserve.  Every survivor must re-land findable and every
// erased key stay absent (rehash iterates raw cells, so a stale key left
// behind by a bad erase would resurrect here).
TEST(FlatMap, ReserveRehashAfterErasesKeepsExactContents) {
  FlatMap<uint64_t, uint64_t, IdHash> map(0, 16);
  std::unordered_map<uint64_t, uint64_t> ref;
  Rng rng(8510);
  for (uint64_t key = 1; key <= 500; ++key) {
    map[key] = key * 7;
    ref[key] = key * 7;
  }
  for (int i = 0; i < 2000; ++i) {
    const uint64_t key = static_cast<uint64_t>(rng.UniformInt(1, 500));
    if (ref.erase(key) > 0) {
      EXPECT_TRUE(map.Erase(key));
    }
  }
  map.Reserve(4096);
  EXPECT_EQ(map.size(), ref.size());
  for (uint64_t key = 1; key <= 500; ++key) {
    const uint64_t* found = map.Find(key);
    auto it = ref.find(key);
    ASSERT_EQ(found != nullptr, it != ref.end()) << key;
    if (found != nullptr) {
      EXPECT_EQ(*found, it->second) << key;
    }
  }
}

// Backreference stability through EraseCell: the block cache stores each
// entry's cell index and relies on on_move to patch it when backward
// shifting relocates a chain.  Model that contract exactly — value = index
// into a side table of backrefs — under erase-heavy churn on a map
// Reserve()d up front (the cell-index interface's validity condition).
TEST(FlatMap, EraseCellKeepsBackrefsConsistentUnderChurn) {
  constexpr size_t kSlots = 256;
  FlatMap<uint64_t, size_t, IdHash> map(0, kSlots * 4);  // never rehashes
  std::vector<uint64_t> slot_key(kSlots, 0);             // 0 = free slot
  std::vector<size_t> slot_cell(kSlots, FlatMap<uint64_t, size_t, IdHash>::npos);
  Rng rng(8511);
  uint64_t next_key = 1;
  size_t live = 0;
  for (int step = 0; step < 50000; ++step) {
    const size_t slot = static_cast<size_t>(rng.UniformInt(0, kSlots - 1));
    if (slot_key[slot] == 0) {
      // Insert a fresh key into this slot; record its cell as its backref.
      const uint64_t key = next_key++;
      slot_key[slot] = key;
      slot_cell[slot] = map.InsertCell(key, slot);
      ++live;
    } else {
      // Erase via the stored backref, no re-probe — exactly the eviction
      // path.  on_move patches the backrefs of relocated entries.
      map.EraseCell(slot_cell[slot], [&](const size_t& moved_slot, size_t new_cell) {
        slot_cell[moved_slot] = new_cell;
      });
      slot_key[slot] = 0;
      slot_cell[slot] = FlatMap<uint64_t, size_t, IdHash>::npos;
      --live;
    }
    // Spot-audit a handful of live slots per step: the stored backref must
    // be exactly where FindCell lands, and its value must name the slot.
    for (int probe = 0; probe < 4; ++probe) {
      const size_t s = static_cast<size_t>(rng.UniformInt(0, kSlots - 1));
      if (slot_key[s] == 0) {
        continue;
      }
      ASSERT_EQ(map.FindCell(slot_key[s]), slot_cell[s]) << "step " << step;
      ASSERT_EQ(map.CellValue(slot_cell[s]), s);
    }
    ASSERT_EQ(map.size(), live);
  }
  // Drain everything through the backrefs; the map must end exactly empty.
  for (size_t slot = 0; slot < kSlots; ++slot) {
    if (slot_key[slot] != 0) {
      map.EraseCell(slot_cell[slot], [&](const size_t& moved_slot, size_t new_cell) {
        slot_cell[moved_slot] = new_cell;
      });
      slot_key[slot] = 0;
    }
  }
  EXPECT_EQ(map.size(), 0u);
}

}  // namespace
}  // namespace bsdtrace
