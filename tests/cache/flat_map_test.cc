#include "src/util/flat_map.h"

#include <cstdint>
#include <unordered_map>

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace bsdtrace {
namespace {

TEST(FlatMap, InsertFindErase) {
  FlatMap<uint64_t, int, IdHash> map(0);
  EXPECT_EQ(map.Find(7), nullptr);
  map[7] = 42;
  ASSERT_NE(map.Find(7), nullptr);
  EXPECT_EQ(*map.Find(7), 42);
  EXPECT_EQ(map.size(), 1u);
  map[7] = 43;  // overwrite, not duplicate
  EXPECT_EQ(*map.Find(7), 43);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_TRUE(map.Erase(7));
  EXPECT_EQ(map.Find(7), nullptr);
  EXPECT_FALSE(map.Erase(7));
  EXPECT_EQ(map.size(), 0u);
}

TEST(FlatMap, FindOrInsertKeepsExisting) {
  FlatMap<uint64_t, int, IdHash> map(0);
  EXPECT_EQ(map.FindOrInsert(5, 10), 10);
  EXPECT_EQ(map.FindOrInsert(5, 99), 10);
}

TEST(FlatMap, GrowsPastReserveAndRetainsEntries) {
  FlatMap<uint64_t, uint64_t, IdHash> map(0, 16);
  for (uint64_t k = 1; k <= 1000; ++k) {
    map[k] = k * 3;
  }
  EXPECT_EQ(map.size(), 1000u);
  for (uint64_t k = 1; k <= 1000; ++k) {
    ASSERT_NE(map.Find(k), nullptr) << k;
    EXPECT_EQ(*map.Find(k), k * 3);
  }
}

// Degenerate hash forcing every key into one probe chain: exercises the
// backward-shift deletion across wrapped, maximally-colliding chains.
struct CollideHash {
  size_t operator()(uint64_t) const { return 3; }
};

TEST(FlatMap, BackwardShiftEraseUnderFullCollision) {
  FlatMap<uint64_t, uint64_t, CollideHash> map(0, 64);
  for (uint64_t k = 1; k <= 20; ++k) {
    map[k] = k;
  }
  // Erase from the middle, the front, and the back of the chain.
  for (uint64_t k : {10ull, 1ull, 20ull, 15ull, 2ull}) {
    ASSERT_TRUE(map.Erase(k));
  }
  for (uint64_t k = 1; k <= 20; ++k) {
    const bool erased = k == 10 || k == 1 || k == 20 || k == 15 || k == 2;
    if (erased) {
      EXPECT_EQ(map.Find(k), nullptr) << k;
    } else {
      ASSERT_NE(map.Find(k), nullptr) << k;
      EXPECT_EQ(*map.Find(k), k);
    }
  }
  EXPECT_EQ(map.size(), 15u);
}

// Randomized differential test against std::unordered_map.
TEST(FlatMap, MatchesUnorderedMapUnderRandomChurn) {
  FlatMap<uint64_t, uint64_t, IdHash> map(0, 16);
  std::unordered_map<uint64_t, uint64_t> ref;
  Rng rng(2026);
  for (int step = 0; step < 20000; ++step) {
    const uint64_t key = static_cast<uint64_t>(rng.UniformInt(1, 500));
    switch (rng.UniformInt(0, 2)) {
      case 0:
        map[key] = static_cast<uint64_t>(step);
        ref[key] = static_cast<uint64_t>(step);
        break;
      case 1:
        EXPECT_EQ(map.Erase(key), ref.erase(key) > 0);
        break;
      default: {
        const uint64_t* found = map.Find(key);
        auto it = ref.find(key);
        ASSERT_EQ(found != nullptr, it != ref.end()) << key;
        if (found != nullptr) {
          EXPECT_EQ(*found, it->second);
        }
        break;
      }
    }
  }
  EXPECT_EQ(map.size(), ref.size());
}

}  // namespace
}  // namespace bsdtrace
