#include "src/cache/stack_distance.h"

#include <gtest/gtest.h>

#include "src/cache/sweep.h"
#include "src/util/rng.h"
#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

// Builds a read-only trace that touches the given 4 KB blocks of file 1 in
// order (one open per touch).
Trace BlockTouches(const std::vector<uint64_t>& blocks) {
  TraceBuilder b;
  double t = 1;
  OpenId oid = 1;
  for (uint64_t block : blocks) {
    b.Open(t, oid, 1, (block + 1) * 4096);
    if (block > 0) {
      b.Seek(t + 0.1, oid, 1, 0, block * 4096);
    }
    b.Close(t + 0.2, oid, 1, (block + 1) * 4096, (block + 1) * 4096);
    ++oid;
    t += 1;
  }
  return b.Build();
}

TEST(StackDistance, ColdMissesOnly) {
  const StackDistanceProfile p = ComputeStackDistances(BlockTouches({0, 1, 2, 3}), 4096);
  EXPECT_EQ(p.total_accesses(), 4u);
  EXPECT_EQ(p.cold_misses(), 4u);
  EXPECT_EQ(p.MissesAt(1), 4u);
  EXPECT_EQ(p.MissesAt(100), 4u);
}

TEST(StackDistance, ImmediateReuseIsDistanceOne) {
  const StackDistanceProfile p = ComputeStackDistances(BlockTouches({0, 0, 0}), 4096);
  EXPECT_EQ(p.total_accesses(), 3u);
  EXPECT_EQ(p.cold_misses(), 1u);
  // Distance-1 hits fit in a single-block cache.
  EXPECT_EQ(p.MissesAt(1), 1u);
}

TEST(StackDistance, ClassicSequence) {
  // Touch order: a b c a.  The re-access of `a` has stack distance 3.
  const StackDistanceProfile p = ComputeStackDistances(BlockTouches({0, 1, 2, 0}), 4096);
  EXPECT_EQ(p.cold_misses(), 3u);
  EXPECT_EQ(p.MissesAt(2), 4u);  // distance 3 misses in a 2-block cache
  EXPECT_EQ(p.MissesAt(3), 3u);  // ...but hits with 3 blocks
}

TEST(StackDistance, DistanceShrinksWithReReference) {
  // a b a b: each re-access at distance 2.
  const StackDistanceProfile p = ComputeStackDistances(BlockTouches({0, 1, 0, 1}), 4096);
  EXPECT_EQ(p.MissesAt(1), 4u);
  EXPECT_EQ(p.MissesAt(2), 2u);
  ASSERT_GT(p.distance_counts().size(), 2u);
  EXPECT_EQ(p.distance_counts()[2], 2u);
}

TEST(StackDistance, InvalidationForcesColdMiss) {
  TraceBuilder b;
  b.WholeRead(1, 1.1, 1, 7, 4096);
  b.Unlink(2, 7);
  b.WholeRead(3, 3.1, 2, 7, 4096);  // same file id, data re-created
  const StackDistanceProfile p = ComputeStackDistances(b.Build(), 4096);
  EXPECT_EQ(p.total_accesses(), 2u);
  EXPECT_EQ(p.cold_misses(), 2u);  // the unlink voided the first block
}

TEST(StackDistance, TruncateInvalidatesTailOnly) {
  TraceBuilder b;
  b.WholeRead(1, 1.1, 1, 7, 8192);   // blocks 0,1
  b.Truncate(2, 7, 4096);            // invalidates block 1
  b.WholeRead(3, 3.1, 2, 7, 8192);   // block 0 re-access, block 1 cold again
  const StackDistanceProfile p = ComputeStackDistances(b.Build(), 4096);
  EXPECT_EQ(p.total_accesses(), 4u);
  EXPECT_EQ(p.cold_misses(), 3u);
}

TEST(StackDistance, EmptyTrace) {
  const StackDistanceProfile p = ComputeStackDistances(Trace{}, 4096);
  EXPECT_EQ(p.total_accesses(), 0u);
  EXPECT_EQ(p.MissRatioAt(100), 0.0);
}

TEST(StackDistance, MissRatioMonotoneInCapacity) {
  Rng rng(3);
  std::vector<uint64_t> blocks;
  for (int i = 0; i < 2000; ++i) {
    blocks.push_back(static_cast<uint64_t>(rng.UniformInt(0, 50)));
  }
  const StackDistanceProfile p = ComputeStackDistances(BlockTouches(blocks), 4096);
  uint64_t prev = UINT64_MAX;
  for (uint64_t c = 1; c <= 64; ++c) {
    EXPECT_LE(p.MissesAt(c), prev);
    prev = p.MissesAt(c);
  }
  // Beyond the working set every non-cold access hits.
  EXPECT_EQ(p.MissesAt(64), p.cold_misses());
}

// Property: on read-only traces without invalidations, the one-pass analysis
// must match the full LRU simulator's disk reads at every capacity exactly.
class StackDistanceEquivalence : public ::testing::TestWithParam<uint64_t> {};

Trace ReadTrace(uint64_t seed, double unlink_probability) {
  Rng rng(seed);
  TraceBuilder b;
  double t = 1;
  OpenId oid = 1;
  for (int i = 0; i < 600; ++i) {
    const FileId file = static_cast<FileId>(rng.UniformInt(1, 20));
    if (rng.Bernoulli(unlink_probability)) {
      b.Unlink(t, file);
    } else {
      const uint64_t size = static_cast<uint64_t>(rng.UniformInt(1, 40000));
      b.WholeRead(t, t + 0.1, oid++, file, size);
    }
    t += 0.5;
  }
  return b.Build();
}

TEST_P(StackDistanceEquivalence, MatchesSimulatorExactlyWithoutInvalidation) {
  const Trace trace = ReadTrace(GetParam(), 0.0);
  const StackDistanceProfile p = ComputeStackDistances(trace, 4096);
  for (uint64_t capacity : {1u, 4u, 16u, 64u, 256u}) {
    CacheConfig c;
    c.size_bytes = capacity * 4096;
    c.block_size = 4096;
    c.policy = WritePolicy::kDelayedWrite;
    const CacheMetrics m = SimulateCache(trace, c);
    EXPECT_EQ(p.MissesAt(capacity), m.disk_reads) << "capacity " << capacity;
  }
}

TEST_P(StackDistanceEquivalence, SlightlyOptimisticUnderInvalidation) {
  // Invalidations break the LRU inclusion property: removing blocks can
  // shorten the stack distance of a block a small cache already evicted, so
  // the one-pass analysis under-counts misses by a small margin (it never
  // over-counts, and agrees at capacities covering the working set).
  const Trace trace = ReadTrace(GetParam() + 100, 0.06);
  const StackDistanceProfile p = ComputeStackDistances(trace, 4096);
  for (uint64_t capacity : {4u, 16u, 64u, 256u}) {
    CacheConfig c;
    c.size_bytes = capacity * 4096;
    c.block_size = 4096;
    c.policy = WritePolicy::kDelayedWrite;
    const CacheMetrics m = SimulateCache(trace, c);
    EXPECT_LE(p.MissesAt(capacity), m.disk_reads) << "capacity " << capacity;
    EXPECT_GE(p.MissesAt(capacity) * 100, m.disk_reads * 97) << "capacity " << capacity;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StackDistanceEquivalence, ::testing::Values(5, 17, 29, 43));

}  // namespace
}  // namespace bsdtrace
