#include "src/cache/stack_distance.h"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "src/cache/sweep.h"
#include "src/util/rng.h"
#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

// Builds a read-only trace that touches the given 4 KB blocks of file 1 in
// order (one open per touch).
Trace BlockTouches(const std::vector<uint64_t>& blocks) {
  TraceBuilder b;
  double t = 1;
  OpenId oid = 1;
  for (uint64_t block : blocks) {
    b.Open(t, oid, 1, (block + 1) * 4096);
    if (block > 0) {
      b.Seek(t + 0.1, oid, 1, 0, block * 4096);
    }
    b.Close(t + 0.2, oid, 1, (block + 1) * 4096, (block + 1) * 4096);
    ++oid;
    t += 1;
  }
  return b.Build();
}

TEST(StackDistance, ColdMissesOnly) {
  const StackDistanceProfile p = ComputeStackDistances(BlockTouches({0, 1, 2, 3}), 4096);
  EXPECT_EQ(p.total_accesses(), 4u);
  EXPECT_EQ(p.cold_misses(), 4u);
  EXPECT_EQ(p.MissesAt(1), 4u);
  EXPECT_EQ(p.MissesAt(100), 4u);
}

TEST(StackDistance, ImmediateReuseIsDistanceOne) {
  const StackDistanceProfile p = ComputeStackDistances(BlockTouches({0, 0, 0}), 4096);
  EXPECT_EQ(p.total_accesses(), 3u);
  EXPECT_EQ(p.cold_misses(), 1u);
  // Distance-1 hits fit in a single-block cache.
  EXPECT_EQ(p.MissesAt(1), 1u);
}

TEST(StackDistance, ClassicSequence) {
  // Touch order: a b c a.  The re-access of `a` has stack distance 3.
  const StackDistanceProfile p = ComputeStackDistances(BlockTouches({0, 1, 2, 0}), 4096);
  EXPECT_EQ(p.cold_misses(), 3u);
  EXPECT_EQ(p.MissesAt(2), 4u);  // distance 3 misses in a 2-block cache
  EXPECT_EQ(p.MissesAt(3), 3u);  // ...but hits with 3 blocks
}

TEST(StackDistance, DistanceShrinksWithReReference) {
  // a b a b: each re-access at distance 2.
  const StackDistanceProfile p = ComputeStackDistances(BlockTouches({0, 1, 0, 1}), 4096);
  EXPECT_EQ(p.MissesAt(1), 4u);
  EXPECT_EQ(p.MissesAt(2), 2u);
  ASSERT_GT(p.distance_counts().size(), 2u);
  EXPECT_EQ(p.distance_counts()[2], 2u);
}

TEST(StackDistance, InvalidationForcesColdMiss) {
  TraceBuilder b;
  b.WholeRead(1, 1.1, 1, 7, 4096);
  b.Unlink(2, 7);
  b.WholeRead(3, 3.1, 2, 7, 4096);  // same file id, data re-created
  const StackDistanceProfile p = ComputeStackDistances(b.Build(), 4096);
  EXPECT_EQ(p.total_accesses(), 2u);
  EXPECT_EQ(p.cold_misses(), 2u);  // the unlink voided the first block
}

TEST(StackDistance, TruncateInvalidatesTailOnly) {
  TraceBuilder b;
  b.WholeRead(1, 1.1, 1, 7, 8192);   // blocks 0,1
  b.Truncate(2, 7, 4096);            // invalidates block 1
  b.WholeRead(3, 3.1, 2, 7, 8192);   // block 0 re-access, block 1 cold again
  const StackDistanceProfile p = ComputeStackDistances(b.Build(), 4096);
  EXPECT_EQ(p.total_accesses(), 4u);
  EXPECT_EQ(p.cold_misses(), 3u);
}

TEST(StackDistance, EmptyTrace) {
  const StackDistanceProfile p = ComputeStackDistances(Trace{}, 4096);
  EXPECT_EQ(p.total_accesses(), 0u);
  EXPECT_EQ(p.MissRatioAt(100), 0.0);
}

TEST(StackDistance, MissRatioMonotoneInCapacity) {
  Rng rng(3);
  std::vector<uint64_t> blocks;
  for (int i = 0; i < 2000; ++i) {
    blocks.push_back(static_cast<uint64_t>(rng.UniformInt(0, 50)));
  }
  const StackDistanceProfile p = ComputeStackDistances(BlockTouches(blocks), 4096);
  uint64_t prev = UINT64_MAX;
  for (uint64_t c = 1; c <= 64; ++c) {
    EXPECT_LE(p.MissesAt(c), prev);
    prev = p.MissesAt(c);
  }
  // Beyond the working set every non-cold access hits.
  EXPECT_EQ(p.MissesAt(64), p.cold_misses());
}

// Property: on read-only traces without invalidations, the one-pass analysis
// must match the full LRU simulator's disk reads at every capacity exactly.
class StackDistanceEquivalence : public ::testing::TestWithParam<uint64_t> {};

Trace ReadTrace(uint64_t seed, double unlink_probability) {
  Rng rng(seed);
  TraceBuilder b;
  double t = 1;
  OpenId oid = 1;
  for (int i = 0; i < 600; ++i) {
    const FileId file = static_cast<FileId>(rng.UniformInt(1, 20));
    if (rng.Bernoulli(unlink_probability)) {
      b.Unlink(t, file);
    } else {
      const uint64_t size = static_cast<uint64_t>(rng.UniformInt(1, 40000));
      b.WholeRead(t, t + 0.1, oid++, file, size);
    }
    t += 0.5;
  }
  return b.Build();
}

TEST_P(StackDistanceEquivalence, MatchesSimulatorExactlyWithoutInvalidation) {
  const Trace trace = ReadTrace(GetParam(), 0.0);
  const StackDistanceProfile p = ComputeStackDistances(trace, 4096);
  for (uint64_t capacity : {1u, 4u, 16u, 64u, 256u}) {
    CacheConfig c;
    c.size_bytes = capacity * 4096;
    c.block_size = 4096;
    c.policy = WritePolicy::kDelayedWrite;
    const CacheMetrics m = SimulateCache(trace, c);
    EXPECT_EQ(p.MissesAt(capacity), m.disk_reads) << "capacity " << capacity;
  }
}

TEST_P(StackDistanceEquivalence, MatchesSimulatorExactlyUnderInvalidation) {
  // Invalidations are processed as true stack deletions with historic-max
  // distances (see stack_distance.h), so the one-pass analysis stays exact —
  // not merely a bound — on unlink-heavy traces at every capacity.
  const Trace trace = ReadTrace(GetParam() + 100, 0.06);
  const StackDistanceProfile p = ComputeStackDistances(trace, 4096);
  for (uint64_t capacity = 1; capacity <= 384; capacity = capacity * 3 / 2 + 1) {
    CacheConfig c;
    c.size_bytes = capacity * 4096;
    c.block_size = 4096;
    c.policy = WritePolicy::kDelayedWrite;
    const CacheMetrics m = SimulateCache(trace, c);
    EXPECT_EQ(p.MissesAt(capacity), m.disk_reads) << "capacity " << capacity;
  }
}

// Mixed read/write/invalidation trace: whole-file overwrites (kCreate),
// partial writes that trigger read-modify-write fetches, writes beyond the
// known extent, truncates, and unlinks.
Trace RwTrace(uint64_t seed, int ops = 700) {
  Rng rng(seed);
  TraceBuilder b;
  double t = 1;
  OpenId oid = 1;
  for (int i = 0; i < ops; ++i) {
    const FileId file = static_cast<FileId>(rng.UniformInt(1, 15));
    const int kind = rng.UniformInt(0, 9);
    if (kind == 0) {
      b.Unlink(t, file);
    } else if (kind == 1) {
      b.Truncate(t, file, static_cast<uint64_t>(rng.UniformInt(0, 20000)));
    } else if (kind <= 3) {
      // Whole-file overwrite: invalidates, then writes without fetching.
      b.WholeWrite(t, t + 0.1, oid++, file, static_cast<uint64_t>(rng.UniformInt(1, 30000)));
    } else if (kind <= 5) {
      // Partial write at a random offset: misses fetch unless the write
      // covers whole blocks or lies beyond the file's known extent.
      const uint64_t offset = static_cast<uint64_t>(rng.UniformInt(0, 40000));
      const uint64_t len = static_cast<uint64_t>(rng.UniformInt(1, 12000));
      b.Open(t, oid, file, offset + len, AccessMode::kWriteOnly, 1, offset);
      b.Close(t + 0.1, oid, file, offset + len, offset + len);
      ++oid;
    } else {
      b.WholeRead(t, t + 0.1, oid++, file, static_cast<uint64_t>(rng.UniformInt(1, 40000)));
    }
    t += 0.5;
  }
  return b.Build();
}

TEST_P(StackDistanceEquivalence, FetchMissParityOnWriteHeavyTrace) {
  // FetchMissesAt() must reproduce CacheMetrics::disk_reads bit-for-bit:
  // the no-fetch predicate (whole-block overwrite, write past known extent)
  // is capacity-independent, so it folds into a second histogram.
  const Trace trace = RwTrace(GetParam());
  const StackDistanceProfile p = ComputeStackDistances(trace, 4096);
  for (uint64_t capacity = 1; capacity <= 384; capacity = capacity * 3 / 2 + 1) {
    CacheConfig c;
    c.size_bytes = capacity * 4096;
    c.block_size = 4096;
    c.policy = WritePolicy::kDelayedWrite;
    const CacheMetrics m = SimulateCache(trace, c);
    EXPECT_EQ(p.FetchMissesAt(capacity), m.disk_reads) << "capacity " << capacity;
    EXPECT_EQ(p.total_accesses(), m.logical_accesses);
    EXPECT_EQ(p.read_accesses(), m.read_accesses);
    EXPECT_EQ(p.write_accesses(), m.write_accesses);
  }
}

TEST_P(StackDistanceEquivalence, DiskReadsIndependentOfWritePolicy) {
  // The fetch curve the analyzer produces serves every write policy: under
  // LRU the residency evolution — hence disk_reads — is policy-invariant.
  const Trace trace = RwTrace(GetParam() + 7);
  const StackDistanceProfile p = ComputeStackDistances(trace, 4096);
  for (uint64_t capacity : {3u, 17u, 96u}) {
    for (WritePolicy policy : {WritePolicy::kWriteThrough, WritePolicy::kFlushBack,
                               WritePolicy::kDelayedWrite}) {
      CacheConfig c;
      c.size_bytes = capacity * 4096;
      c.block_size = 4096;
      c.policy = policy;
      const CacheMetrics m = SimulateCache(trace, c);
      EXPECT_EQ(p.FetchMissesAt(capacity), m.disk_reads)
          << "capacity " << capacity << " policy " << WritePolicyName(policy);
    }
  }
}

TEST_P(StackDistanceEquivalence, MattsonCompactionInvariance) {
  // Forcing compaction every few accesses must not change any output: slot
  // renumbering preserves stack order and carries each block's historic max.
  const Trace trace = RwTrace(GetParam() + 23);
  const StackDistanceProfile base = ComputeStackDistances(trace, 4096);
  StackDistanceAnalyzer::Options tiny;
  tiny.initial_slots = 2;
  const StackDistanceProfile compacted = ComputeStackDistances(trace, 4096, tiny);
  EXPECT_EQ(base.total_accesses(), compacted.total_accesses());
  EXPECT_EQ(base.cold_misses(), compacted.cold_misses());
  EXPECT_EQ(base.fetch_accesses(), compacted.fetch_accesses());
  EXPECT_EQ(base.distance_counts(), compacted.distance_counts());
  for (uint64_t capacity = 1; capacity <= 256; capacity *= 2) {
    EXPECT_EQ(base.MissesAt(capacity), compacted.MissesAt(capacity)) << capacity;
    EXPECT_EQ(base.FetchMissesAt(capacity), compacted.FetchMissesAt(capacity)) << capacity;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StackDistanceEquivalence, ::testing::Values(5, 17, 29, 43));

TEST(StackDistanceProfileThreads, MattsonConcurrentReadersAreSafe) {
  // Take() finalizes the prefix sums eagerly, so const accessors are safe
  // from many threads at once (the sweep planner's workers do exactly this).
  // Run under TSan in CI.
  const StackDistanceProfile p = ComputeStackDistances(RwTrace(11), 4096);
  std::vector<std::thread> readers;
  std::atomic<uint64_t> sink{0};
  for (int i = 0; i < 8; ++i) {
    readers.emplace_back([&p, &sink, i] {
      uint64_t local = 0;
      for (uint64_t c = 1 + static_cast<uint64_t>(i); c < 400; c += 7) {
        local += p.MissesAt(c) + p.FetchMissesAt(c);
        local += static_cast<uint64_t>(p.MissRatioAt(c) * 1e6);
      }
      sink += local;
    });
  }
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_GT(sink.load(), 0u);
}

}  // namespace
}  // namespace bsdtrace
