#include "src/cache/simulator.h"

#include <gtest/gtest.h>

#include "src/cache/sweep.h"
#include "src/util/rng.h"
#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

CacheConfig Config(uint64_t size_bytes, WritePolicy policy,
                   Duration flush = Duration::Seconds(30), uint32_t block = 4096) {
  CacheConfig c;
  c.size_bytes = size_bytes;
  c.block_size = block;
  c.policy = policy;
  c.flush_interval = flush;
  return c;
}

// A trace that reads the same 4 KB block of file 10 `n` times.
Trace RepeatedReads(int n) {
  TraceBuilder b;
  for (int i = 0; i < n; ++i) {
    b.WholeRead(i + 1, i + 1.5, static_cast<OpenId>(i + 1), 10, 4096);
  }
  return b.Build();
}

TEST(CacheSimulator, FirstReadMissesThenHits) {
  const CacheMetrics m = SimulateCache(RepeatedReads(5), Config(1 << 20, WritePolicy::kDelayedWrite));
  EXPECT_EQ(m.logical_accesses, 5u);
  EXPECT_EQ(m.disk_reads, 1u);  // only the cold miss
  EXPECT_EQ(m.disk_writes, 0u);
  EXPECT_DOUBLE_EQ(m.MissRatio(), 0.2);
}

TEST(CacheSimulator, TransferSplitsIntoBlocks) {
  // 10000 bytes with 4 KB blocks = 3 block accesses.
  const Trace t = TraceBuilder().WholeRead(1, 2, 1, 10, 10000).Build();
  const CacheMetrics m = SimulateCache(t, Config(1 << 20, WritePolicy::kDelayedWrite));
  EXPECT_EQ(m.logical_accesses, 3u);
  EXPECT_EQ(m.disk_reads, 3u);
}

TEST(CacheSimulator, BlockSizeChangesAccessCount) {
  const Trace t = TraceBuilder().WholeRead(1, 2, 1, 10, 16384).Build();
  const CacheMetrics m1k =
      SimulateCache(t, Config(1 << 20, WritePolicy::kDelayedWrite, Duration::Seconds(30), 1024));
  const CacheMetrics m16k =
      SimulateCache(t, Config(1 << 20, WritePolicy::kDelayedWrite, Duration::Seconds(30), 16384));
  EXPECT_EQ(m1k.logical_accesses, 16u);
  EXPECT_EQ(m16k.logical_accesses, 1u);
}

TEST(CacheSimulator, WriteThroughChargesEveryWrite) {
  // Create a file and write 3 blocks, twice.
  TraceBuilder b;
  b.WholeWrite(1, 2, 1, 10, 12288);
  b.Create(3, 2, 10);
  b.Close(4, 2, 10, 12288, 12288);
  const CacheMetrics m = SimulateCache(b.Build(), Config(1 << 20, WritePolicy::kWriteThrough));
  EXPECT_EQ(m.write_accesses, 6u);
  EXPECT_EQ(m.disk_writes, 6u);
  EXPECT_EQ(m.disk_reads, 0u);  // whole-block writes never fetch
}

TEST(CacheSimulator, DelayedWriteCoalescesRewrites) {
  TraceBuilder b;
  b.WholeWrite(1, 2, 1, 10, 4096);
  b.Create(3, 2, 10);
  b.Close(4, 2, 10, 4096, 4096);
  const CacheMetrics m = SimulateCache(b.Build(), Config(1 << 20, WritePolicy::kDelayedWrite));
  EXPECT_EQ(m.disk_writes, 0u);  // never evicted, never flushed
}

TEST(CacheSimulator, NewFileWriteNeedsNoFetch) {
  // Partial-block write (2000 < 4096) to a brand new file: nothing on disk
  // to fetch.
  const Trace t = TraceBuilder().WholeWrite(1, 2, 1, 10, 2000).Build();
  const CacheMetrics m = SimulateCache(t, Config(1 << 20, WritePolicy::kDelayedWrite));
  EXPECT_EQ(m.disk_reads, 0u);
}

TEST(CacheSimulator, PartialOverwriteOfExistingDataFetches) {
  TraceBuilder b;
  // Somebody reads 8 KB of file 10 (so the data demonstrably exists)...
  b.WholeRead(1, 2, 1, 10, 8192);
  // ...then block 0 is partially rewritten in place via a read-write open
  // that writes bytes 0..2000 out of the existing 8 KB.
  b.Open(3, 2, 10, 8192, AccessMode::kWriteOnly);
  b.Close(4, 2, 10, 2000, 8192);
  CacheConfig tiny = Config(4096, WritePolicy::kDelayedWrite);  // 1 block: forces re-fetch
  const CacheMetrics m = SimulateCache(b.Build(), tiny);
  // Reads: 2 cold misses; the partial write misses and must fetch block 0.
  EXPECT_EQ(m.disk_reads, 3u);
}

TEST(CacheSimulator, UnlinkDiscardsDirtyBlocksWithoutDiskWrites) {
  TraceBuilder b;
  b.WholeWrite(1, 2, 1, 10, 8192);
  b.Unlink(3, 10);
  const CacheMetrics m = SimulateCache(b.Build(), Config(1 << 20, WritePolicy::kDelayedWrite));
  EXPECT_EQ(m.disk_writes, 0u);
  EXPECT_EQ(m.dirty_discarded, 2u);
}

TEST(CacheSimulator, RecreateDiscardsOldBlocks) {
  TraceBuilder b;
  b.WholeWrite(1, 2, 1, 10, 4096);
  b.WholeWrite(10, 11, 2, 10, 4096);  // O_TRUNC rewrite of the same file id
  const CacheMetrics m = SimulateCache(b.Build(), Config(1 << 20, WritePolicy::kDelayedWrite));
  EXPECT_EQ(m.dirty_discarded, 1u);
  EXPECT_EQ(m.disk_writes, 0u);
}

TEST(CacheSimulator, TruncateInvalidatesTailOnly) {
  TraceBuilder b;
  b.WholeWrite(1, 2, 1, 10, 16384);  // blocks 0..3 dirty
  b.Truncate(3, 10, 4096);           // drop blocks 1..3
  const CacheMetrics m = SimulateCache(b.Build(), Config(1 << 20, WritePolicy::kDelayedWrite));
  EXPECT_EQ(m.dirty_discarded, 3u);
}

TEST(CacheSimulator, FlushBackWritesDirtyAtInterval) {
  TraceBuilder b;
  b.WholeWrite(1, 2, 1, 10, 4096);
  // A later read advances the clock past the flush interval.
  b.WholeRead(40, 41, 2, 20, 4096);
  const CacheMetrics m =
      SimulateCache(b.Build(), Config(1 << 20, WritePolicy::kFlushBack, Duration::Seconds(30)));
  EXPECT_EQ(m.disk_writes, 1u);  // the dirty block was flushed at t=30
}

TEST(CacheSimulator, FlushBackBeforeIntervalKeepsDirty) {
  TraceBuilder b;
  b.WholeWrite(1, 2, 1, 10, 4096);
  b.WholeRead(10, 11, 2, 20, 4096);  // clock still below 30 s
  const CacheMetrics m =
      SimulateCache(b.Build(), Config(1 << 20, WritePolicy::kFlushBack, Duration::Seconds(30)));
  EXPECT_EQ(m.disk_writes, 0u);
}

TEST(CacheSimulator, FlushBackWriteDeadBeforeFlushNeverHitsDisk) {
  TraceBuilder b;
  b.WholeWrite(1, 2, 1, 10, 4096);
  b.Unlink(5, 10);                    // dies at t=5, before the 30 s flush
  b.WholeRead(60, 61, 2, 20, 4096);   // advance past a flush boundary
  const CacheMetrics m =
      SimulateCache(b.Build(), Config(1 << 20, WritePolicy::kFlushBack, Duration::Seconds(30)));
  EXPECT_EQ(m.disk_writes, 0u);
  EXPECT_EQ(m.dirty_discarded, 1u);
}

TEST(CacheSimulator, EvictionWritesBackDirty) {
  // 1-block cache: writing one block then touching another evicts the dirty one.
  TraceBuilder b;
  b.WholeWrite(1, 2, 1, 10, 4096);
  b.WholeRead(3, 4, 2, 20, 4096);
  const CacheMetrics m = SimulateCache(b.Build(), Config(4096, WritePolicy::kDelayedWrite));
  EXPECT_EQ(m.disk_writes, 1u);
  EXPECT_EQ(m.evictions, 1u);
}

TEST(CacheSimulator, DirtyBlocksAtEndOfTraceNotCharged) {
  const Trace t = TraceBuilder().WholeWrite(1, 2, 1, 10, 4096).Build();
  CacheSimulator sim(Config(1 << 20, WritePolicy::kDelayedWrite));
  Reconstruct(t, &sim);
  sim.Finish();
  EXPECT_EQ(sim.metrics().disk_writes, 0u);
  EXPECT_EQ(sim.metrics().residency_samples, 1u);  // censored residency
}

TEST(CacheSimulator, ExecvePageinOnlyWhenEnabled) {
  TraceBuilder b;
  b.Execve(1, 77, 16384);
  const Trace trace = b.Build();
  CacheConfig off = Config(1 << 20, WritePolicy::kDelayedWrite);
  CacheConfig on = off;
  on.simulate_execve_pagein = true;
  EXPECT_EQ(SimulateCache(trace, off).logical_accesses, 0u);
  const CacheMetrics m = SimulateCache(trace, on);
  EXPECT_EQ(m.logical_accesses, 4u);  // 16 KB / 4 KB
  EXPECT_EQ(m.disk_reads, 4u);
}

TEST(CacheSimulator, RepeatedExecveHitsCache) {
  TraceBuilder b;
  b.Execve(1, 77, 8192);
  b.Execve(2, 77, 8192);
  CacheConfig on = Config(1 << 20, WritePolicy::kDelayedWrite);
  on.simulate_execve_pagein = true;
  const CacheMetrics m = SimulateCache(b.Build(), on);
  EXPECT_EQ(m.disk_reads, 2u);  // second exec is all hits
}

TEST(CacheSimulator, ResidencyOver20MinutesTracked) {
  TraceBuilder b;
  b.WholeRead(1, 2, 1, 10, 4096);
  b.Unlink(60 * 25, 10);  // invalidated 25 minutes later
  const CacheMetrics m = SimulateCache(b.Build(), Config(1 << 20, WritePolicy::kDelayedWrite));
  EXPECT_EQ(m.residency_over_20min, 1u);
}

TEST(CacheSimulator, ConfigToStringDescribes) {
  EXPECT_NE(Config(4u << 20, WritePolicy::kDelayedWrite).ToString().find("delayed-write"),
            std::string::npos);
  EXPECT_NE(Config(1 << 20, WritePolicy::kFlushBack).ToString().find("flush-back"),
            std::string::npos);
  EXPECT_STREQ(WritePolicyName(WritePolicy::kWriteThrough), "write-through");
}

// ---------------------------------------------------------------------------
// Property sweeps over a randomized workload.

Trace RandomWorkloadTrace(uint64_t seed) {
  Rng rng(seed);
  TraceBuilder b;
  double t = 1.0;
  OpenId oid = 1;
  for (int i = 0; i < 400; ++i) {
    const FileId file = static_cast<FileId>(rng.UniformInt(1, 30));
    const uint64_t size = static_cast<uint64_t>(rng.UniformInt(1, 60000));
    if (rng.Bernoulli(0.5)) {
      b.WholeRead(t, t + 0.2, oid++, file, size);
    } else if (rng.Bernoulli(0.85)) {
      b.WholeWrite(t, t + 0.2, oid++, file, size);
    } else {
      b.Unlink(t, file);
    }
    t += rng.Uniform(0.5, 20.0);
  }
  return b.Build();
}

struct PolicyCase {
  uint64_t seed;
};

class CacheSimulatorProperty : public ::testing::TestWithParam<uint64_t> {};

// The LRU inclusion property: a bigger cache never does more disk I/O (same
// policy, same block size).
TEST_P(CacheSimulatorProperty, MissesMonotoneInCacheSize) {
  const Trace t = RandomWorkloadTrace(GetParam());
  uint64_t prev = UINT64_MAX;
  for (uint64_t size : {64u << 10, 256u << 10, 1u << 20, 4u << 20}) {
    const CacheMetrics m = SimulateCache(t, Config(size, WritePolicy::kDelayedWrite));
    EXPECT_LE(m.DiskIos(), prev) << "cache " << size;
    prev = m.DiskIos();
  }
}

// Write-policy ordering: delayed-write <= flush-back(5m) <= flush-back(30s)
// <= write-through in disk writes; reads are identical across policies.
TEST_P(CacheSimulatorProperty, PolicyOrdering) {
  const Trace t = RandomWorkloadTrace(GetParam() + 1000);
  const CacheMetrics wt = SimulateCache(t, Config(1 << 20, WritePolicy::kWriteThrough));
  const CacheMetrics fb30 =
      SimulateCache(t, Config(1 << 20, WritePolicy::kFlushBack, Duration::Seconds(30)));
  const CacheMetrics fb5m =
      SimulateCache(t, Config(1 << 20, WritePolicy::kFlushBack, Duration::Minutes(5)));
  const CacheMetrics dw = SimulateCache(t, Config(1 << 20, WritePolicy::kDelayedWrite));
  EXPECT_LE(dw.disk_writes, fb5m.disk_writes);
  EXPECT_LE(fb5m.disk_writes, fb30.disk_writes);
  EXPECT_LE(fb30.disk_writes, wt.disk_writes);
  EXPECT_EQ(dw.disk_reads, wt.disk_reads);
  EXPECT_EQ(dw.logical_accesses, wt.logical_accesses);
}

// Accounting identities that must hold for any input.
TEST_P(CacheSimulatorProperty, AccountingIdentities) {
  const Trace t = RandomWorkloadTrace(GetParam() + 2000);
  const CacheMetrics m = SimulateCache(t, Config(256 << 10, WritePolicy::kDelayedWrite));
  EXPECT_EQ(m.logical_accesses, m.read_accesses + m.write_accesses);
  EXPECT_LE(m.disk_reads, m.logical_accesses);
  EXPECT_GE(m.MissRatio(), 0.0);
  EXPECT_GT(m.residency_samples, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheSimulatorProperty, ::testing::Values(1, 7, 19, 31, 57));

}  // namespace
}  // namespace bsdtrace
