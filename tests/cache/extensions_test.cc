// Tests for simulator extensions: replacement policies, metadata injection,
// and billing-bound ablation.

#include <gtest/gtest.h>

#include "src/cache/sweep.h"
#include "src/util/rng.h"
#include "tests/testing/trace_builder.h"

namespace bsdtrace {
namespace {

BlockKey Key(FileId f, uint64_t i) { return BlockKey{.file = f, .index = i}; }

TEST(ReplacementPolicy, FifoIgnoresReuse) {
  BlockCache cache(2, ReplacementPolicy::kFifo);
  auto no_evict = [](const CacheEntry&) {};
  cache.Insert(Key(1, 0), SimTime::Origin(), no_evict);
  cache.Insert(Key(1, 1), SimTime::Origin(), no_evict);
  ASSERT_NE(cache.Touch(Key(1, 0)), nullptr);  // reuse must NOT protect block 0
  std::vector<BlockKey> evicted;
  cache.Insert(Key(1, 2), SimTime::Origin(),
               [&](const CacheEntry& v) { evicted.push_back(v.key); });
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], Key(1, 0));  // oldest-loaded goes, despite the touch
}

TEST(ReplacementPolicy, ClockGivesSecondChance) {
  BlockCache cache(2, ReplacementPolicy::kClock);
  auto no_evict = [](const CacheEntry&) {};
  cache.Insert(Key(1, 0), SimTime::Origin(), no_evict);
  cache.Insert(Key(1, 1), SimTime::Origin(), no_evict);
  ASSERT_NE(cache.Touch(Key(1, 0)), nullptr);  // referenced bit set on 0
  std::vector<BlockKey> evicted;
  cache.Insert(Key(1, 2), SimTime::Origin(),
               [&](const CacheEntry& v) { evicted.push_back(v.key); });
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], Key(1, 1));  // 0 was spared; unreferenced 1 evicted
}

TEST(ReplacementPolicy, ClockTerminatesWhenAllReferenced) {
  BlockCache cache(2, ReplacementPolicy::kClock);
  auto no_evict = [](const CacheEntry&) {};
  cache.Insert(Key(1, 0), SimTime::Origin(), no_evict);
  cache.Insert(Key(1, 1), SimTime::Origin(), no_evict);
  cache.Touch(Key(1, 0));
  cache.Touch(Key(1, 1));
  int evictions = 0;
  cache.Insert(Key(1, 2), SimTime::Origin(), [&](const CacheEntry&) { ++evictions; });
  EXPECT_EQ(evictions, 1);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ReplacementPolicy, Names) {
  EXPECT_STREQ(ReplacementPolicyName(ReplacementPolicy::kLru), "LRU");
  EXPECT_STREQ(ReplacementPolicyName(ReplacementPolicy::kFifo), "FIFO");
  EXPECT_STREQ(ReplacementPolicyName(ReplacementPolicy::kClock), "clock");
}

Trace RandomReadTrace(uint64_t seed, int n) {
  Rng rng(seed);
  TraceBuilder b;
  double t = 1;
  OpenId oid = 1;
  for (int i = 0; i < n; ++i) {
    b.WholeRead(t, t + 0.1, oid++, static_cast<FileId>(rng.UniformInt(1, 25)),
                static_cast<uint64_t>(rng.UniformInt(1, 30000)));
    t += 0.5;
  }
  return b.Build();
}

// LRU should not lose to FIFO on workloads with reuse, and clock should land
// between them (or tie) — checked on random read traces.
class ReplacementOrdering : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplacementOrdering, LruBeatsFifo) {
  const Trace trace = RandomReadTrace(GetParam(), 800);
  auto misses = [&](ReplacementPolicy rp) {
    CacheConfig c;
    c.size_bytes = 24 * 4096;
    c.replacement = rp;
    return SimulateCache(trace, c).disk_reads;
  };
  const uint64_t lru = misses(ReplacementPolicy::kLru);
  const uint64_t clock = misses(ReplacementPolicy::kClock);
  const uint64_t fifo = misses(ReplacementPolicy::kFifo);
  // LRU is not *universally* better than FIFO (looping patterns can tie or
  // invert it), so allow a small tolerance; on reuse-heavy traces it wins.
  EXPECT_LE(lru, fifo + fifo / 50);
  EXPECT_LE(lru, clock + clock / 10);  // clock approximates LRU
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplacementOrdering, ::testing::Values(3, 13, 23));

TEST(MetadataSimulation, OpensInjectMetadataAccesses) {
  TraceBuilder b;
  b.WholeRead(1, 2, 1, 10, 4096);
  CacheConfig c;
  c.size_bytes = 1 << 20;
  c.simulate_metadata = true;
  const CacheMetrics m = SimulateCache(b.Build(), c);
  // 1 data access + i-node read + directory read.
  EXPECT_EQ(m.logical_accesses, 3u);
  EXPECT_EQ(m.metadata_accesses, 2u);
}

TEST(MetadataSimulation, WriteCloseRewritesInode) {
  TraceBuilder b;
  b.WholeWrite(1, 2, 1, 10, 4096);
  CacheConfig c;
  c.size_bytes = 1 << 20;
  c.policy = WritePolicy::kWriteThrough;
  c.simulate_metadata = true;
  const CacheMetrics m = SimulateCache(b.Build(), c);
  // create: inode+dir writes; close: inode write; data: 1 write.
  EXPECT_EQ(m.metadata_accesses, 3u);
  EXPECT_EQ(m.write_accesses, 4u);
}

TEST(MetadataSimulation, ReadOnlyCloseDoesNotRewriteInode) {
  TraceBuilder b;
  b.WholeRead(1, 2, 1, 10, 4096);
  CacheConfig c;
  c.size_bytes = 1 << 20;
  c.simulate_metadata = true;
  const CacheMetrics m = SimulateCache(b.Build(), c);
  EXPECT_EQ(m.metadata_accesses, 2u);  // no close-time i-node write
}

TEST(MetadataSimulation, NearbyFilesShareMetadataBlocks) {
  // Files 10 and 11 share an i-node block (16 per block) and a directory
  // block (32 per block): the second open's metadata hits the cache.
  TraceBuilder b;
  b.WholeRead(1, 2, 1, 16, 4096);
  b.WholeRead(3, 4, 2, 17, 4096);
  CacheConfig c;
  c.size_bytes = 1 << 20;
  c.simulate_metadata = true;
  const CacheMetrics m = SimulateCache(b.Build(), c);
  // Disk reads: 2 data blocks + 1 inode block + 1 directory block.
  EXPECT_EQ(m.disk_reads, 4u);
}

TEST(MetadataSimulation, OffByDefault) {
  TraceBuilder b;
  b.WholeRead(1, 2, 1, 10, 4096);
  const CacheMetrics m = SimulateCache(b.Build(), CacheConfig{});
  EXPECT_EQ(m.metadata_accesses, 0u);
}

TEST(BillingPolicy, PreviousEventBillsRunsEarly) {
  struct Sink : ReconstructionSink {
    std::vector<SimTime> times;
    void OnTransfer(const Transfer& t) override { times.push_back(t.time); }
  };
  const Trace trace = TraceBuilder().WholeRead(1, 9, 1, 10, 4096).Build();
  Sink upper, lower;
  Reconstruct(trace, &upper, BillingPolicy::kAtNextEvent);
  Reconstruct(trace, &lower, BillingPolicy::kAtPreviousEvent);
  ASSERT_EQ(upper.times.size(), 1u);
  ASSERT_EQ(lower.times.size(), 1u);
  EXPECT_EQ(upper.times[0], SimTime::FromSeconds(9));  // at the close (paper)
  EXPECT_EQ(lower.times[0], SimTime::FromSeconds(1));  // at the open
}

TEST(BillingPolicy, SeekDelimitedRunsUseRunBounds) {
  struct Sink : ReconstructionSink {
    std::vector<SimTime> times;
    void OnTransfer(const Transfer& t) override { times.push_back(t.time); }
  };
  TraceBuilder b;
  b.Open(1, 1, 10, 100000);
  b.Seek(5, 1, 10, 4096, 50000);
  b.Close(9, 1, 10, 54096, 100000);
  const Trace trace = b.Build();
  Sink lower;
  Reconstruct(trace, &lower, BillingPolicy::kAtPreviousEvent);
  ASSERT_EQ(lower.times.size(), 2u);
  EXPECT_EQ(lower.times[0], SimTime::FromSeconds(1));  // run began at the open
  EXPECT_EQ(lower.times[1], SimTime::FromSeconds(5));  // run began at the seek
}

TEST(BillingPolicy, MetricsIdenticalExceptTiming) {
  // Same byte ranges either way: byte totals must match.
  Rng rng(9);
  TraceBuilder b;
  double t = 1;
  for (OpenId oid = 1; oid <= 100; ++oid) {
    b.WholeRead(t, t + rng.Uniform(0.1, 20.0), oid, 1 + oid % 9,
                static_cast<uint64_t>(rng.UniformInt(1, 50000)));
    t += 1;
  }
  const Trace trace = b.Build();
  CacheConfig c;
  c.size_bytes = 64 * 4096;
  const CacheMetrics upper = SimulateCache(trace, c, BillingPolicy::kAtNextEvent);
  const CacheMetrics lower = SimulateCache(trace, c, BillingPolicy::kAtPreviousEvent);
  EXPECT_EQ(upper.logical_accesses, lower.logical_accesses);
  // Pure LRU on the same reference order: identical misses; only flush
  // timing could differ.
  EXPECT_EQ(upper.disk_reads, lower.disk_reads);
}

}  // namespace
}  // namespace bsdtrace
