#include "src/fs/fsck.h"

#include <gtest/gtest.h>

#include "src/workload/generator.h"

namespace bsdtrace {
namespace {

FsOptions SmallDisk() {
  return FsOptions{.block_size = 4096, .frag_size = 1024, .total_blocks = 128};
}

TEST(Fsck, FreshFileSystemIsClean) {
  FileSystem fs(SmallDisk());
  const FsckReport report = CheckFileSystem(fs);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.inodes_checked, 1u);  // root
  EXPECT_EQ(report.reachable_inodes, 1u);
}

TEST(Fsck, PopulatedTreeIsClean) {
  FileSystem fs(SmallDisk());
  ASSERT_TRUE(fs.MkdirAll("/a/b/c").ok());
  auto f = fs.CreateFile("/a/b/c/file");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(fs.SetFileSize(f.value(), 10000, SimTime::Origin()).ok());
  ASSERT_TRUE(fs.Link("/a/b/c/file", "/a/link", SimTime::Origin()).ok());
  const FsckReport report = CheckFileSystem(fs);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.inodes_checked, 5u);
  EXPECT_EQ(report.orphan_inodes, 0u);
}

TEST(Fsck, UnreleasedOrphanIsCountedNotAnError) {
  FileSystem fs(SmallDisk());
  auto f = fs.CreateFile("/f");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(fs.SetFileSize(f.value(), 4096, SimTime::Origin()).ok());
  ASSERT_TRUE(fs.Unlink("/f").ok());
  // Simulates unlink-while-open: storage still held.
  const FsckReport report = CheckFileSystem(fs);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.orphan_inodes, 1u);
  fs.ReleaseInode(f.value());
  EXPECT_EQ(CheckFileSystem(fs).orphan_inodes, 0u);
}

TEST(Fsck, CleanAfterHeavyChurn) {
  FileSystem fs(SmallDisk());
  for (int round = 0; round < 20; ++round) {
    std::vector<InodeNum> created;
    for (int i = 0; i < 8; ++i) {
      const std::string path = "/f" + std::to_string(i);
      auto f = fs.CreateFile(path);
      ASSERT_TRUE(f.ok());
      ASSERT_TRUE(fs.SetFileSize(f.value(), static_cast<uint64_t>(1000 * (i + round)),
                                 SimTime::Origin()).ok());
      created.push_back(f.value());
    }
    // Mid-round consistency.
    ASSERT_TRUE(CheckFileSystem(fs).ok());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(fs.Unlink("/f" + std::to_string(i)).ok());
      // ReleaseInode is what the kernel does once no fd remains.
      fs.ReleaseInode(created[static_cast<size_t>(i)]);
    }
  }
  const FsckReport report = CheckFileSystem(fs);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.orphan_inodes, 0u);
}

TEST(Fsck, CleanAfterFullWorkloadGeneration) {
  // The strongest integration check: hours of simulated multi-user churn
  // leave the substrate file system fully consistent.
  GeneratorOptions options;
  options.duration = Duration::Hours(1);
  options.seed = 77;
  const GenerationResult result = GenerateTrace(ProfileA5(), options);
  EXPECT_TRUE(result.fsck.ok()) << result.fsck.Summary();
  // Open descriptors are all closed by the end of generation... except those
  // belonging to tasks clipped at the horizon, whose files may linger as
  // orphans; they must be few.
  EXPECT_LT(result.fsck.orphan_inodes, 50u);
  EXPECT_GT(result.fs_stats.allocated_bytes, result.fs_stats.live_bytes);
}

TEST(FsckReport, SummaryFormatsCounts) {
  FileSystem fs(SmallDisk());
  const std::string summary = CheckFileSystem(fs).Summary();
  EXPECT_NE(summary.find("1 inodes"), std::string::npos);
  EXPECT_NE(summary.find("clean"), std::string::npos);
}

}  // namespace
}  // namespace bsdtrace
