#include "src/fs/block_allocator.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace bsdtrace {
namespace {

TEST(BlockAllocator, FreshDiskFullyFree) {
  BlockAllocator a(100, 4);
  EXPECT_EQ(a.total_frags(), 400u);
  EXPECT_EQ(a.free_frags(), 400u);
  EXPECT_TRUE(a.AllFree());
  EXPECT_EQ(a.frags_per_block(), 4u);
}

TEST(BlockAllocator, AllocateBlockIsAligned) {
  BlockAllocator a(10, 4);
  auto b = a.AllocateBlock();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->frag_count, 4u);
  EXPECT_EQ(b->start_frag % 4, 0u);
  EXPECT_EQ(a.allocated_frags(), 4u);
}

TEST(BlockAllocator, AllocateAllBlocksThenFail) {
  BlockAllocator a(3, 4);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(a.AllocateBlock().has_value());
  }
  EXPECT_FALSE(a.AllocateBlock().has_value());
  EXPECT_EQ(a.free_frags(), 0u);
}

TEST(BlockAllocator, FragmentsDoNotCrossBlockBoundary) {
  BlockAllocator a(10, 4);
  // Ten 3-fragment tails fit (one per block); an eleventh cannot, because
  // the leftover single fragments are never combined across blocks.
  for (int i = 0; i < 10; ++i) {
    auto f = a.AllocateFragments(3);
    ASSERT_TRUE(f.has_value()) << i;
    EXPECT_EQ(f->start_frag / 4, (f->start_frag + f->frag_count - 1) / 4);
  }
  EXPECT_FALSE(a.AllocateFragments(3).has_value());
  EXPECT_EQ(a.free_frags(), 10u);
}

TEST(BlockAllocator, FullBlockTailAllocation) {
  // A file whose tail occupies every fragment of a block (e.g. a size of
  // block_size - 1 bytes) requests frag_count == frags_per_block.  The
  // allocation must succeed on a fully free block and stay block-aligned.
  BlockAllocator a(4, 4);
  ASSERT_TRUE(a.AllocateFragments(1).has_value());  // leave a partial block
  auto f = a.AllocateFragments(4);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->frag_count, 4u);
  EXPECT_EQ(f->start_frag % 4, 0u);
  a.Free(*f);
  EXPECT_EQ(a.free_frags(), 15u);
}

TEST(BlockAllocator, FragmentsPreferPartialBlocks) {
  BlockAllocator a(10, 4);
  auto f1 = a.AllocateFragments(2);
  ASSERT_TRUE(f1.has_value());
  auto f2 = a.AllocateFragments(2);
  ASSERT_TRUE(f2.has_value());
  // Second tail allocation should fill the same block's remaining half.
  EXPECT_EQ(f1->start_frag / 4, f2->start_frag / 4);
}

TEST(BlockAllocator, FreeMakesSpaceReusable) {
  BlockAllocator a(1, 4);
  auto b = a.AllocateBlock();
  ASSERT_TRUE(b.has_value());
  EXPECT_FALSE(a.AllocateBlock().has_value());
  a.Free(*b);
  EXPECT_TRUE(a.AllFree());
  EXPECT_TRUE(a.AllocateBlock().has_value());
}

TEST(BlockAllocator, BlockNeverAssembledFromScatteredFrags) {
  BlockAllocator a(2, 4);
  // Occupy one fragment in each block: no full block remains.
  auto f1 = a.AllocateFragments(1);
  ASSERT_TRUE(f1.has_value());
  auto b1 = a.AllocateBlock();  // takes the remaining free block
  ASSERT_TRUE(b1.has_value());
  EXPECT_FALSE(a.AllocateBlock().has_value());
  EXPECT_EQ(a.free_frags(), 3u);  // scattered inside the partial block
}

TEST(BlockAllocator, FragmentationMetric) {
  BlockAllocator a(2, 4);
  EXPECT_EQ(a.BlockFragmentation(), 0.0);
  auto f = a.AllocateFragments(1);
  ASSERT_TRUE(f.has_value());
  // 7 free frags, 4 of them in a fully-free block: fragmentation = 3/7.
  EXPECT_NEAR(a.BlockFragmentation(), 3.0 / 7.0, 1e-12);
}

TEST(BlockAllocator, ExhaustedFragmentsFail) {
  BlockAllocator a(1, 4);
  ASSERT_TRUE(a.AllocateFragments(3).has_value());
  EXPECT_FALSE(a.AllocateFragments(2).has_value());
  EXPECT_TRUE(a.AllocateFragments(1).has_value());
}

// Property: random alloc/free interleavings never double-allocate and always
// balance back to a fully-free disk.
class AllocatorProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AllocatorProperty, NoOverlapAndFullRecovery) {
  Rng rng(GetParam());
  BlockAllocator a(64, 8);
  std::vector<FragExtent> live;
  std::set<uint64_t> owned;

  for (int step = 0; step < 2000; ++step) {
    if (!live.empty() && rng.Bernoulli(0.45)) {
      const size_t i = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      for (uint32_t k = 0; k < live[i].frag_count; ++k) {
        owned.erase(live[i].start_frag + k);
      }
      a.Free(live[i]);
      live.erase(live.begin() + static_cast<long>(i));
      continue;
    }
    std::optional<FragExtent> got;
    if (rng.Bernoulli(0.5)) {
      got = a.AllocateBlock();
    } else {
      got = a.AllocateFragments(static_cast<uint32_t>(rng.UniformInt(1, 7)));
    }
    if (!got.has_value()) {
      continue;
    }
    for (uint32_t k = 0; k < got->frag_count; ++k) {
      // Overlap with an existing allocation would be a corruption bug.
      EXPECT_TRUE(owned.insert(got->start_frag + k).second);
    }
    live.push_back(*got);
  }
  EXPECT_EQ(a.allocated_frags(), owned.size());
  for (const FragExtent& e : live) {
    a.Free(e);
  }
  EXPECT_TRUE(a.AllFree());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorProperty, ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace bsdtrace
