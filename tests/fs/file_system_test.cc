#include "src/fs/file_system.h"

#include <gtest/gtest.h>

namespace bsdtrace {
namespace {

FsOptions SmallDisk() {
  return FsOptions{.block_size = 4096, .frag_size = 1024, .total_blocks = 64};
}

TEST(FileSystem, RootExists) {
  FileSystem fs(SmallDisk());
  auto root = fs.LookupPath("/");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value(), kRootInode);
  EXPECT_EQ(fs.GetInode(kRootInode)->type, FileType::kDirectory);
}

TEST(FileSystem, MkdirAndLookup) {
  FileSystem fs(SmallDisk());
  auto d = fs.Mkdir("/home");
  ASSERT_TRUE(d.ok());
  auto found = fs.LookupPath("/home");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), d.value());
}

TEST(FileSystem, MkdirRequiresParent) {
  FileSystem fs(SmallDisk());
  EXPECT_FALSE(fs.Mkdir("/a/b").ok());
  EXPECT_EQ(fs.Mkdir("/a/b").error(), FsError::kNotFound);
}

TEST(FileSystem, MkdirAllCreatesChain) {
  FileSystem fs(SmallDisk());
  ASSERT_TRUE(fs.MkdirAll("/a/b/c").ok());
  EXPECT_TRUE(fs.LookupPath("/a/b/c").ok());
  // Idempotent.
  EXPECT_TRUE(fs.MkdirAll("/a/b/c").ok());
}

TEST(FileSystem, MkdirDuplicateFails) {
  FileSystem fs(SmallDisk());
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  EXPECT_EQ(fs.Mkdir("/d").error(), FsError::kExists);
}

TEST(FileSystem, CreateFileAndSize) {
  FileSystem fs(SmallDisk());
  auto f = fs.CreateFile("/file.txt");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(fs.GetInode(f.value())->size, 0u);
  ASSERT_TRUE(fs.SetFileSize(f.value(), 10000, SimTime::FromSeconds(1)).ok());
  EXPECT_EQ(fs.GetInode(f.value())->size, 10000u);
  EXPECT_EQ(fs.GetInode(f.value())->mtime, SimTime::FromSeconds(1));
}

TEST(FileSystem, CreateFileDuplicateFails) {
  FileSystem fs(SmallDisk());
  ASSERT_TRUE(fs.CreateFile("/x").ok());
  EXPECT_EQ(fs.CreateFile("/x").error(), FsError::kExists);
}

TEST(FileSystem, FileIdsAreUniqueForever) {
  FileSystem fs(SmallDisk());
  auto a = fs.CreateFile("/a");
  ASSERT_TRUE(a.ok());
  const FileId id_a = fs.GetInode(a.value())->file_id;
  ASSERT_TRUE(fs.Unlink("/a").ok());
  fs.ReleaseInode(a.value());
  auto b = fs.CreateFile("/a");
  ASSERT_TRUE(b.ok());
  EXPECT_NE(fs.GetInode(b.value())->file_id, id_a);
}

TEST(FileSystem, SizeAllocationUsesBlocksAndTail) {
  FileSystem fs(SmallDisk());
  auto f = fs.CreateFile("/f");
  ASSERT_TRUE(f.ok());
  // 4096 + 4096 + 1500 -> 2 blocks plus a 2-fragment tail.
  ASSERT_TRUE(fs.SetFileSize(f.value(), 9692, SimTime::Origin()).ok());
  const Inode* inode = fs.GetInode(f.value());
  EXPECT_EQ(inode->blocks.size(), 2u);
  ASSERT_TRUE(inode->tail.has_value());
  EXPECT_EQ(inode->tail->frag_count, 2u);
}

TEST(FileSystem, ShrinkReleasesSpace) {
  FileSystem fs(SmallDisk());
  auto f = fs.CreateFile("/f");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(fs.SetFileSize(f.value(), 100000, SimTime::Origin()).ok());
  const uint64_t allocated = fs.Statistics().allocated_bytes;
  ASSERT_TRUE(fs.SetFileSize(f.value(), 1000, SimTime::Origin()).ok());
  EXPECT_LT(fs.Statistics().allocated_bytes, allocated);
}

TEST(FileSystem, NoSpaceLeavesFileUnchanged) {
  FileSystem fs(FsOptions{.block_size = 4096, .frag_size = 1024, .total_blocks = 4});
  auto f = fs.CreateFile("/f");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(fs.SetFileSize(f.value(), 4096, SimTime::Origin()).ok());
  const FsStatus st = fs.SetFileSize(f.value(), 1 << 20, SimTime::Origin());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error(), FsError::kNoSpace);
  EXPECT_EQ(fs.GetInode(f.value())->size, 4096u);
}

TEST(FileSystem, UnlinkRemovesName) {
  FileSystem fs(SmallDisk());
  auto f = fs.CreateFile("/f");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(fs.Unlink("/f").ok());
  EXPECT_FALSE(fs.LookupPath("/f").ok());
}

TEST(FileSystem, UnlinkedInodePersistsUntilRelease) {
  FileSystem fs(SmallDisk());
  auto f = fs.CreateFile("/f");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(fs.SetFileSize(f.value(), 8192, SimTime::Origin()).ok());
  ASSERT_TRUE(fs.Unlink("/f").ok());
  EXPECT_TRUE(fs.IsOrphan(f.value()));
  EXPECT_NE(fs.GetInode(f.value()), nullptr);  // kernel may still read it
  const uint64_t before = fs.Statistics().allocated_bytes;
  fs.ReleaseInode(f.value());
  EXPECT_EQ(fs.GetInode(f.value()), nullptr);
  EXPECT_LT(fs.Statistics().allocated_bytes, before);
}

TEST(FileSystem, ReleaseLinkedInodeIsNoOp) {
  FileSystem fs(SmallDisk());
  auto f = fs.CreateFile("/f");
  ASSERT_TRUE(f.ok());
  fs.ReleaseInode(f.value());
  EXPECT_NE(fs.GetInode(f.value()), nullptr);
}

TEST(FileSystem, HardLinksShareInode) {
  FileSystem fs(SmallDisk());
  auto f = fs.CreateFile("/f");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(fs.Link("/f", "/g", SimTime::Origin()).ok());
  EXPECT_EQ(fs.LookupPath("/g").value(), f.value());
  EXPECT_EQ(fs.GetInode(f.value())->nlink, 2u);
  ASSERT_TRUE(fs.Unlink("/f").ok());
  EXPECT_FALSE(fs.IsOrphan(f.value()));  // still reachable via /g
  EXPECT_TRUE(fs.LookupPath("/g").ok());
}

TEST(FileSystem, UnlinkDirectoryRejected) {
  FileSystem fs(SmallDisk());
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  EXPECT_EQ(fs.Unlink("/d").error(), FsError::kIsDirectory);
}

TEST(FileSystem, RmdirOnlyEmpty) {
  FileSystem fs(SmallDisk());
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.CreateFile("/d/f").ok());
  EXPECT_EQ(fs.Rmdir("/d").error(), FsError::kNotEmpty);
  ASSERT_TRUE(fs.Unlink("/d/f").ok());
  EXPECT_TRUE(fs.Rmdir("/d").ok());
  EXPECT_FALSE(fs.LookupPath("/d").ok());
}

TEST(FileSystem, RenameMovesFile) {
  FileSystem fs(SmallDisk());
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Mkdir("/b").ok());
  auto f = fs.CreateFile("/a/f");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(fs.Rename("/a/f", "/b/g", SimTime::Origin()).ok());
  EXPECT_FALSE(fs.LookupPath("/a/f").ok());
  EXPECT_EQ(fs.LookupPath("/b/g").value(), f.value());
}

TEST(FileSystem, RenameReplacesTarget) {
  FileSystem fs(SmallDisk());
  auto f = fs.CreateFile("/f");
  auto g = fs.CreateFile("/g");
  ASSERT_TRUE(f.ok() && g.ok());
  ASSERT_TRUE(fs.Rename("/f", "/g", SimTime::Origin()).ok());
  EXPECT_EQ(fs.LookupPath("/g").value(), f.value());
  EXPECT_EQ(fs.GetInode(g.value()), nullptr);  // old target released
}

TEST(FileSystem, ListDirectorySorted) {
  FileSystem fs(SmallDisk());
  ASSERT_TRUE(fs.CreateFile("/b").ok());
  ASSERT_TRUE(fs.CreateFile("/a").ok());
  auto names = fs.ListDirectory("/");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(), (std::vector<std::string>{"a", "b"}));
}

TEST(FileSystem, DirectoriesHaveSizes) {
  FileSystem fs(SmallDisk());
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  const Inode* root = fs.GetInode(kRootInode);
  EXPECT_GE(root->size, 512u);  // old-UNIX directory block
  // Adding many entries grows the directory.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(fs.CreateFile("/f" + std::to_string(i)).ok());
  }
  EXPECT_GT(fs.GetInode(kRootInode)->size, 512u);
}

TEST(FileSystem, StatisticsTrackLiveBytes) {
  FileSystem fs(SmallDisk());
  auto f = fs.CreateFile("/f");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(fs.SetFileSize(f.value(), 5000, SimTime::Origin()).ok());
  const FsStatistics stats = fs.Statistics();
  EXPECT_EQ(stats.files, 1u);
  EXPECT_GE(stats.directories, 1u);
  EXPECT_EQ(stats.live_bytes, 5000u);
  EXPECT_GE(stats.allocated_bytes, 5000u);
  EXPECT_GE(stats.internal_fragmentation, 0.0);
}

TEST(FileSystem, TruncateDirectoryRejected) {
  FileSystem fs(SmallDisk());
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  auto d = fs.LookupPath("/d");
  EXPECT_EQ(fs.SetFileSize(d.value(), 100, SimTime::Origin()).error(), FsError::kIsDirectory);
}

TEST(FileSystem, LookupThroughFileFails) {
  FileSystem fs(SmallDisk());
  ASSERT_TRUE(fs.CreateFile("/f").ok());
  EXPECT_EQ(fs.LookupPath("/f/sub").error(), FsError::kNotDirectory);
}

TEST(FileSystem, InvalidPathsRejected) {
  FileSystem fs(SmallDisk());
  EXPECT_EQ(fs.CreateFile("relative").error(), FsError::kInvalidArgument);
  EXPECT_EQ(fs.LookupPath("").error(), FsError::kInvalidArgument);
}

TEST(FsErrorName, AllNamed) {
  EXPECT_STREQ(FsErrorName(FsError::kNotFound), "not found");
  EXPECT_STREQ(FsErrorName(FsError::kNoSpace), "no space on device");
}

}  // namespace
}  // namespace bsdtrace
