#include "src/fs/path.h"

#include <gtest/gtest.h>

namespace bsdtrace {
namespace {

TEST(SplitPath, Basic) {
  EXPECT_EQ(SplitPath("/a/b/c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitPath("/"), (std::vector<std::string>{}));
  EXPECT_EQ(SplitPath(""), (std::vector<std::string>{}));
}

TEST(SplitPath, CollapsesRepeatedSlashes) {
  EXPECT_EQ(SplitPath("//a///b/"), (std::vector<std::string>{"a", "b"}));
}

TEST(SplitPath, ResolvesDotAndDotDot) {
  EXPECT_EQ(SplitPath("/a/./b"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitPath("/a/b/../c"), (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(SplitPath("/../a"), (std::vector<std::string>{"a"}));
}

TEST(IsValidAbsolutePath, Checks) {
  EXPECT_TRUE(IsValidAbsolutePath("/a"));
  EXPECT_TRUE(IsValidAbsolutePath("/"));
  EXPECT_FALSE(IsValidAbsolutePath("a/b"));
  EXPECT_FALSE(IsValidAbsolutePath(""));
}

TEST(Dirname, Cases) {
  EXPECT_EQ(Dirname("/a/b/c"), "/a/b");
  EXPECT_EQ(Dirname("/a"), "/");
  EXPECT_EQ(Dirname("/"), "/");
  EXPECT_EQ(Dirname("/a/b/"), "/a");
}

TEST(Basename, Cases) {
  EXPECT_EQ(Basename("/a/b/c"), "c");
  EXPECT_EQ(Basename("/a"), "a");
  EXPECT_EQ(Basename("/"), "");
  EXPECT_EQ(Basename("/a/b/"), "b");
}

TEST(JoinPath, Cases) {
  EXPECT_EQ(JoinPath("/a", "b"), "/a/b");
  EXPECT_EQ(JoinPath("/a/", "b"), "/a/b");
  EXPECT_EQ(JoinPath("/", "b"), "/b");
}

TEST(PathRoundTrip, DirnameBasenameRecompose) {
  for (const char* p : {"/a/b/c", "/x", "/usr/spool/mail/user3"}) {
    EXPECT_EQ(JoinPath(Dirname(p), Basename(p)), p);
  }
}

}  // namespace
}  // namespace bsdtrace
