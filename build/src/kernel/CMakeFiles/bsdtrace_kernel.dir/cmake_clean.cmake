file(REMOVE_RECURSE
  "CMakeFiles/bsdtrace_kernel.dir/traced_kernel.cc.o"
  "CMakeFiles/bsdtrace_kernel.dir/traced_kernel.cc.o.d"
  "libbsdtrace_kernel.a"
  "libbsdtrace_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsdtrace_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
