# Empty compiler generated dependencies file for bsdtrace_kernel.
# This may be replaced when dependencies are built.
