file(REMOVE_RECURSE
  "libbsdtrace_kernel.a"
)
