file(REMOVE_RECURSE
  "libbsdtrace_trace.a"
)
