file(REMOVE_RECURSE
  "CMakeFiles/bsdtrace_trace.dir/filter.cc.o"
  "CMakeFiles/bsdtrace_trace.dir/filter.cc.o.d"
  "CMakeFiles/bsdtrace_trace.dir/reconstruct.cc.o"
  "CMakeFiles/bsdtrace_trace.dir/reconstruct.cc.o.d"
  "CMakeFiles/bsdtrace_trace.dir/record.cc.o"
  "CMakeFiles/bsdtrace_trace.dir/record.cc.o.d"
  "CMakeFiles/bsdtrace_trace.dir/trace_io.cc.o"
  "CMakeFiles/bsdtrace_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/bsdtrace_trace.dir/validate.cc.o"
  "CMakeFiles/bsdtrace_trace.dir/validate.cc.o.d"
  "libbsdtrace_trace.a"
  "libbsdtrace_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsdtrace_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
