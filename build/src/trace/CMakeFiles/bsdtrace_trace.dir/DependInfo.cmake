
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/filter.cc" "src/trace/CMakeFiles/bsdtrace_trace.dir/filter.cc.o" "gcc" "src/trace/CMakeFiles/bsdtrace_trace.dir/filter.cc.o.d"
  "/root/repo/src/trace/reconstruct.cc" "src/trace/CMakeFiles/bsdtrace_trace.dir/reconstruct.cc.o" "gcc" "src/trace/CMakeFiles/bsdtrace_trace.dir/reconstruct.cc.o.d"
  "/root/repo/src/trace/record.cc" "src/trace/CMakeFiles/bsdtrace_trace.dir/record.cc.o" "gcc" "src/trace/CMakeFiles/bsdtrace_trace.dir/record.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/trace/CMakeFiles/bsdtrace_trace.dir/trace_io.cc.o" "gcc" "src/trace/CMakeFiles/bsdtrace_trace.dir/trace_io.cc.o.d"
  "/root/repo/src/trace/validate.cc" "src/trace/CMakeFiles/bsdtrace_trace.dir/validate.cc.o" "gcc" "src/trace/CMakeFiles/bsdtrace_trace.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bsdtrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
