# Empty dependencies file for bsdtrace_trace.
# This may be replaced when dependencies are built.
