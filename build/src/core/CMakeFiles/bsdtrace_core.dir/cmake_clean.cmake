file(REMOVE_RECURSE
  "CMakeFiles/bsdtrace_core.dir/experiments.cc.o"
  "CMakeFiles/bsdtrace_core.dir/experiments.cc.o.d"
  "libbsdtrace_core.a"
  "libbsdtrace_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsdtrace_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
