# Empty dependencies file for bsdtrace_core.
# This may be replaced when dependencies are built.
