file(REMOVE_RECURSE
  "libbsdtrace_core.a"
)
