# Empty dependencies file for bsdtrace_workload.
# This may be replaced when dependencies are built.
