
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/apps_cad.cc" "src/workload/CMakeFiles/bsdtrace_workload.dir/apps_cad.cc.o" "gcc" "src/workload/CMakeFiles/bsdtrace_workload.dir/apps_cad.cc.o.d"
  "/root/repo/src/workload/apps_common.cc" "src/workload/CMakeFiles/bsdtrace_workload.dir/apps_common.cc.o" "gcc" "src/workload/CMakeFiles/bsdtrace_workload.dir/apps_common.cc.o.d"
  "/root/repo/src/workload/apps_daemon.cc" "src/workload/CMakeFiles/bsdtrace_workload.dir/apps_daemon.cc.o" "gcc" "src/workload/CMakeFiles/bsdtrace_workload.dir/apps_daemon.cc.o.d"
  "/root/repo/src/workload/apps_develop.cc" "src/workload/CMakeFiles/bsdtrace_workload.dir/apps_develop.cc.o" "gcc" "src/workload/CMakeFiles/bsdtrace_workload.dir/apps_develop.cc.o.d"
  "/root/repo/src/workload/apps_office.cc" "src/workload/CMakeFiles/bsdtrace_workload.dir/apps_office.cc.o" "gcc" "src/workload/CMakeFiles/bsdtrace_workload.dir/apps_office.cc.o.d"
  "/root/repo/src/workload/apps_shell.cc" "src/workload/CMakeFiles/bsdtrace_workload.dir/apps_shell.cc.o" "gcc" "src/workload/CMakeFiles/bsdtrace_workload.dir/apps_shell.cc.o.d"
  "/root/repo/src/workload/apps_system.cc" "src/workload/CMakeFiles/bsdtrace_workload.dir/apps_system.cc.o" "gcc" "src/workload/CMakeFiles/bsdtrace_workload.dir/apps_system.cc.o.d"
  "/root/repo/src/workload/context.cc" "src/workload/CMakeFiles/bsdtrace_workload.dir/context.cc.o" "gcc" "src/workload/CMakeFiles/bsdtrace_workload.dir/context.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/workload/CMakeFiles/bsdtrace_workload.dir/generator.cc.o" "gcc" "src/workload/CMakeFiles/bsdtrace_workload.dir/generator.cc.o.d"
  "/root/repo/src/workload/profile.cc" "src/workload/CMakeFiles/bsdtrace_workload.dir/profile.cc.o" "gcc" "src/workload/CMakeFiles/bsdtrace_workload.dir/profile.cc.o.d"
  "/root/repo/src/workload/scheduler.cc" "src/workload/CMakeFiles/bsdtrace_workload.dir/scheduler.cc.o" "gcc" "src/workload/CMakeFiles/bsdtrace_workload.dir/scheduler.cc.o.d"
  "/root/repo/src/workload/system_image.cc" "src/workload/CMakeFiles/bsdtrace_workload.dir/system_image.cc.o" "gcc" "src/workload/CMakeFiles/bsdtrace_workload.dir/system_image.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/bsdtrace_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/bsdtrace_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bsdtrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bsdtrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
