file(REMOVE_RECURSE
  "CMakeFiles/bsdtrace_workload.dir/apps_cad.cc.o"
  "CMakeFiles/bsdtrace_workload.dir/apps_cad.cc.o.d"
  "CMakeFiles/bsdtrace_workload.dir/apps_common.cc.o"
  "CMakeFiles/bsdtrace_workload.dir/apps_common.cc.o.d"
  "CMakeFiles/bsdtrace_workload.dir/apps_daemon.cc.o"
  "CMakeFiles/bsdtrace_workload.dir/apps_daemon.cc.o.d"
  "CMakeFiles/bsdtrace_workload.dir/apps_develop.cc.o"
  "CMakeFiles/bsdtrace_workload.dir/apps_develop.cc.o.d"
  "CMakeFiles/bsdtrace_workload.dir/apps_office.cc.o"
  "CMakeFiles/bsdtrace_workload.dir/apps_office.cc.o.d"
  "CMakeFiles/bsdtrace_workload.dir/apps_shell.cc.o"
  "CMakeFiles/bsdtrace_workload.dir/apps_shell.cc.o.d"
  "CMakeFiles/bsdtrace_workload.dir/apps_system.cc.o"
  "CMakeFiles/bsdtrace_workload.dir/apps_system.cc.o.d"
  "CMakeFiles/bsdtrace_workload.dir/context.cc.o"
  "CMakeFiles/bsdtrace_workload.dir/context.cc.o.d"
  "CMakeFiles/bsdtrace_workload.dir/generator.cc.o"
  "CMakeFiles/bsdtrace_workload.dir/generator.cc.o.d"
  "CMakeFiles/bsdtrace_workload.dir/profile.cc.o"
  "CMakeFiles/bsdtrace_workload.dir/profile.cc.o.d"
  "CMakeFiles/bsdtrace_workload.dir/scheduler.cc.o"
  "CMakeFiles/bsdtrace_workload.dir/scheduler.cc.o.d"
  "CMakeFiles/bsdtrace_workload.dir/system_image.cc.o"
  "CMakeFiles/bsdtrace_workload.dir/system_image.cc.o.d"
  "libbsdtrace_workload.a"
  "libbsdtrace_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsdtrace_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
