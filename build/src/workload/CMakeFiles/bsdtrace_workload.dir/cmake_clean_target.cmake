file(REMOVE_RECURSE
  "libbsdtrace_workload.a"
)
