# Empty dependencies file for bsdtrace_util.
# This may be replaced when dependencies are built.
