file(REMOVE_RECURSE
  "libbsdtrace_util.a"
)
