file(REMOVE_RECURSE
  "CMakeFiles/bsdtrace_util.dir/csv.cc.o"
  "CMakeFiles/bsdtrace_util.dir/csv.cc.o.d"
  "CMakeFiles/bsdtrace_util.dir/distributions.cc.o"
  "CMakeFiles/bsdtrace_util.dir/distributions.cc.o.d"
  "CMakeFiles/bsdtrace_util.dir/plot.cc.o"
  "CMakeFiles/bsdtrace_util.dir/plot.cc.o.d"
  "CMakeFiles/bsdtrace_util.dir/rng.cc.o"
  "CMakeFiles/bsdtrace_util.dir/rng.cc.o.d"
  "CMakeFiles/bsdtrace_util.dir/sim_time.cc.o"
  "CMakeFiles/bsdtrace_util.dir/sim_time.cc.o.d"
  "CMakeFiles/bsdtrace_util.dir/stats.cc.o"
  "CMakeFiles/bsdtrace_util.dir/stats.cc.o.d"
  "CMakeFiles/bsdtrace_util.dir/table.cc.o"
  "CMakeFiles/bsdtrace_util.dir/table.cc.o.d"
  "libbsdtrace_util.a"
  "libbsdtrace_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsdtrace_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
