
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/activity.cc" "src/analysis/CMakeFiles/bsdtrace_analysis.dir/activity.cc.o" "gcc" "src/analysis/CMakeFiles/bsdtrace_analysis.dir/activity.cc.o.d"
  "/root/repo/src/analysis/analyzer.cc" "src/analysis/CMakeFiles/bsdtrace_analysis.dir/analyzer.cc.o" "gcc" "src/analysis/CMakeFiles/bsdtrace_analysis.dir/analyzer.cc.o.d"
  "/root/repo/src/analysis/lifetimes.cc" "src/analysis/CMakeFiles/bsdtrace_analysis.dir/lifetimes.cc.o" "gcc" "src/analysis/CMakeFiles/bsdtrace_analysis.dir/lifetimes.cc.o.d"
  "/root/repo/src/analysis/overall.cc" "src/analysis/CMakeFiles/bsdtrace_analysis.dir/overall.cc.o" "gcc" "src/analysis/CMakeFiles/bsdtrace_analysis.dir/overall.cc.o.d"
  "/root/repo/src/analysis/patterns.cc" "src/analysis/CMakeFiles/bsdtrace_analysis.dir/patterns.cc.o" "gcc" "src/analysis/CMakeFiles/bsdtrace_analysis.dir/patterns.cc.o.d"
  "/root/repo/src/analysis/popularity.cc" "src/analysis/CMakeFiles/bsdtrace_analysis.dir/popularity.cc.o" "gcc" "src/analysis/CMakeFiles/bsdtrace_analysis.dir/popularity.cc.o.d"
  "/root/repo/src/analysis/sequentiality.cc" "src/analysis/CMakeFiles/bsdtrace_analysis.dir/sequentiality.cc.o" "gcc" "src/analysis/CMakeFiles/bsdtrace_analysis.dir/sequentiality.cc.o.d"
  "/root/repo/src/analysis/working_set.cc" "src/analysis/CMakeFiles/bsdtrace_analysis.dir/working_set.cc.o" "gcc" "src/analysis/CMakeFiles/bsdtrace_analysis.dir/working_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/bsdtrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/bsdtrace_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bsdtrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
