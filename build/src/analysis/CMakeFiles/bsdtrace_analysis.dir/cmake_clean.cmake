file(REMOVE_RECURSE
  "CMakeFiles/bsdtrace_analysis.dir/activity.cc.o"
  "CMakeFiles/bsdtrace_analysis.dir/activity.cc.o.d"
  "CMakeFiles/bsdtrace_analysis.dir/analyzer.cc.o"
  "CMakeFiles/bsdtrace_analysis.dir/analyzer.cc.o.d"
  "CMakeFiles/bsdtrace_analysis.dir/lifetimes.cc.o"
  "CMakeFiles/bsdtrace_analysis.dir/lifetimes.cc.o.d"
  "CMakeFiles/bsdtrace_analysis.dir/overall.cc.o"
  "CMakeFiles/bsdtrace_analysis.dir/overall.cc.o.d"
  "CMakeFiles/bsdtrace_analysis.dir/patterns.cc.o"
  "CMakeFiles/bsdtrace_analysis.dir/patterns.cc.o.d"
  "CMakeFiles/bsdtrace_analysis.dir/popularity.cc.o"
  "CMakeFiles/bsdtrace_analysis.dir/popularity.cc.o.d"
  "CMakeFiles/bsdtrace_analysis.dir/sequentiality.cc.o"
  "CMakeFiles/bsdtrace_analysis.dir/sequentiality.cc.o.d"
  "CMakeFiles/bsdtrace_analysis.dir/working_set.cc.o"
  "CMakeFiles/bsdtrace_analysis.dir/working_set.cc.o.d"
  "libbsdtrace_analysis.a"
  "libbsdtrace_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsdtrace_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
