file(REMOVE_RECURSE
  "libbsdtrace_analysis.a"
)
