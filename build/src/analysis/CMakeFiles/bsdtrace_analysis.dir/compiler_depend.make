# Empty compiler generated dependencies file for bsdtrace_analysis.
# This may be replaced when dependencies are built.
