file(REMOVE_RECURSE
  "CMakeFiles/bsdtrace_fs.dir/block_allocator.cc.o"
  "CMakeFiles/bsdtrace_fs.dir/block_allocator.cc.o.d"
  "CMakeFiles/bsdtrace_fs.dir/file_system.cc.o"
  "CMakeFiles/bsdtrace_fs.dir/file_system.cc.o.d"
  "CMakeFiles/bsdtrace_fs.dir/fsck.cc.o"
  "CMakeFiles/bsdtrace_fs.dir/fsck.cc.o.d"
  "CMakeFiles/bsdtrace_fs.dir/path.cc.o"
  "CMakeFiles/bsdtrace_fs.dir/path.cc.o.d"
  "libbsdtrace_fs.a"
  "libbsdtrace_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsdtrace_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
