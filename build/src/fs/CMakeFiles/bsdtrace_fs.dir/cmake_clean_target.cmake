file(REMOVE_RECURSE
  "libbsdtrace_fs.a"
)
