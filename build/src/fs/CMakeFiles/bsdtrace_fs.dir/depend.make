# Empty dependencies file for bsdtrace_fs.
# This may be replaced when dependencies are built.
