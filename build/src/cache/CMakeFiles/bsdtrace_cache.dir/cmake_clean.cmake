file(REMOVE_RECURSE
  "CMakeFiles/bsdtrace_cache.dir/block_cache.cc.o"
  "CMakeFiles/bsdtrace_cache.dir/block_cache.cc.o.d"
  "CMakeFiles/bsdtrace_cache.dir/simulator.cc.o"
  "CMakeFiles/bsdtrace_cache.dir/simulator.cc.o.d"
  "CMakeFiles/bsdtrace_cache.dir/stack_distance.cc.o"
  "CMakeFiles/bsdtrace_cache.dir/stack_distance.cc.o.d"
  "CMakeFiles/bsdtrace_cache.dir/sweep.cc.o"
  "CMakeFiles/bsdtrace_cache.dir/sweep.cc.o.d"
  "libbsdtrace_cache.a"
  "libbsdtrace_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsdtrace_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
