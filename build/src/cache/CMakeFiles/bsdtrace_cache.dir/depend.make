# Empty dependencies file for bsdtrace_cache.
# This may be replaced when dependencies are built.
