file(REMOVE_RECURSE
  "libbsdtrace_cache.a"
)
