
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/block_cache.cc" "src/cache/CMakeFiles/bsdtrace_cache.dir/block_cache.cc.o" "gcc" "src/cache/CMakeFiles/bsdtrace_cache.dir/block_cache.cc.o.d"
  "/root/repo/src/cache/simulator.cc" "src/cache/CMakeFiles/bsdtrace_cache.dir/simulator.cc.o" "gcc" "src/cache/CMakeFiles/bsdtrace_cache.dir/simulator.cc.o.d"
  "/root/repo/src/cache/stack_distance.cc" "src/cache/CMakeFiles/bsdtrace_cache.dir/stack_distance.cc.o" "gcc" "src/cache/CMakeFiles/bsdtrace_cache.dir/stack_distance.cc.o.d"
  "/root/repo/src/cache/sweep.cc" "src/cache/CMakeFiles/bsdtrace_cache.dir/sweep.cc.o" "gcc" "src/cache/CMakeFiles/bsdtrace_cache.dir/sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/bsdtrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bsdtrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
