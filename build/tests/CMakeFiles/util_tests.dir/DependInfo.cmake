
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/csv_test.cc" "tests/CMakeFiles/util_tests.dir/util/csv_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/csv_test.cc.o.d"
  "/root/repo/tests/util/distributions_test.cc" "tests/CMakeFiles/util_tests.dir/util/distributions_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/distributions_test.cc.o.d"
  "/root/repo/tests/util/plot_test.cc" "tests/CMakeFiles/util_tests.dir/util/plot_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/plot_test.cc.o.d"
  "/root/repo/tests/util/rng_test.cc" "tests/CMakeFiles/util_tests.dir/util/rng_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/rng_test.cc.o.d"
  "/root/repo/tests/util/sim_time_test.cc" "tests/CMakeFiles/util_tests.dir/util/sim_time_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/sim_time_test.cc.o.d"
  "/root/repo/tests/util/stats_test.cc" "tests/CMakeFiles/util_tests.dir/util/stats_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/stats_test.cc.o.d"
  "/root/repo/tests/util/status_test.cc" "tests/CMakeFiles/util_tests.dir/util/status_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/status_test.cc.o.d"
  "/root/repo/tests/util/table_test.cc" "tests/CMakeFiles/util_tests.dir/util/table_test.cc.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/table_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bsdtrace_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/bsdtrace_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/bsdtrace_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bsdtrace_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/bsdtrace_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/bsdtrace_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bsdtrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bsdtrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
