
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/activity_test.cc" "tests/CMakeFiles/analysis_tests.dir/analysis/activity_test.cc.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/activity_test.cc.o.d"
  "/root/repo/tests/analysis/analyzer_test.cc" "tests/CMakeFiles/analysis_tests.dir/analysis/analyzer_test.cc.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/analyzer_test.cc.o.d"
  "/root/repo/tests/analysis/lifetimes_test.cc" "tests/CMakeFiles/analysis_tests.dir/analysis/lifetimes_test.cc.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/lifetimes_test.cc.o.d"
  "/root/repo/tests/analysis/overall_test.cc" "tests/CMakeFiles/analysis_tests.dir/analysis/overall_test.cc.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/overall_test.cc.o.d"
  "/root/repo/tests/analysis/patterns_test.cc" "tests/CMakeFiles/analysis_tests.dir/analysis/patterns_test.cc.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/patterns_test.cc.o.d"
  "/root/repo/tests/analysis/popularity_test.cc" "tests/CMakeFiles/analysis_tests.dir/analysis/popularity_test.cc.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/popularity_test.cc.o.d"
  "/root/repo/tests/analysis/sequentiality_test.cc" "tests/CMakeFiles/analysis_tests.dir/analysis/sequentiality_test.cc.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/sequentiality_test.cc.o.d"
  "/root/repo/tests/analysis/working_set_test.cc" "tests/CMakeFiles/analysis_tests.dir/analysis/working_set_test.cc.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/working_set_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bsdtrace_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/bsdtrace_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/bsdtrace_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bsdtrace_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/bsdtrace_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/bsdtrace_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bsdtrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bsdtrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
