file(REMOVE_RECURSE
  "CMakeFiles/analysis_tests.dir/analysis/activity_test.cc.o"
  "CMakeFiles/analysis_tests.dir/analysis/activity_test.cc.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/analyzer_test.cc.o"
  "CMakeFiles/analysis_tests.dir/analysis/analyzer_test.cc.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/lifetimes_test.cc.o"
  "CMakeFiles/analysis_tests.dir/analysis/lifetimes_test.cc.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/overall_test.cc.o"
  "CMakeFiles/analysis_tests.dir/analysis/overall_test.cc.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/patterns_test.cc.o"
  "CMakeFiles/analysis_tests.dir/analysis/patterns_test.cc.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/popularity_test.cc.o"
  "CMakeFiles/analysis_tests.dir/analysis/popularity_test.cc.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/sequentiality_test.cc.o"
  "CMakeFiles/analysis_tests.dir/analysis/sequentiality_test.cc.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/working_set_test.cc.o"
  "CMakeFiles/analysis_tests.dir/analysis/working_set_test.cc.o.d"
  "analysis_tests"
  "analysis_tests.pdb"
  "analysis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
