file(REMOVE_RECURSE
  "CMakeFiles/fs_tests.dir/fs/block_allocator_test.cc.o"
  "CMakeFiles/fs_tests.dir/fs/block_allocator_test.cc.o.d"
  "CMakeFiles/fs_tests.dir/fs/file_system_test.cc.o"
  "CMakeFiles/fs_tests.dir/fs/file_system_test.cc.o.d"
  "CMakeFiles/fs_tests.dir/fs/fsck_test.cc.o"
  "CMakeFiles/fs_tests.dir/fs/fsck_test.cc.o.d"
  "CMakeFiles/fs_tests.dir/fs/path_test.cc.o"
  "CMakeFiles/fs_tests.dir/fs/path_test.cc.o.d"
  "fs_tests"
  "fs_tests.pdb"
  "fs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
