file(REMOVE_RECURSE
  "CMakeFiles/cache_tests.dir/cache/block_cache_test.cc.o"
  "CMakeFiles/cache_tests.dir/cache/block_cache_test.cc.o.d"
  "CMakeFiles/cache_tests.dir/cache/extensions_test.cc.o"
  "CMakeFiles/cache_tests.dir/cache/extensions_test.cc.o.d"
  "CMakeFiles/cache_tests.dir/cache/simulator_test.cc.o"
  "CMakeFiles/cache_tests.dir/cache/simulator_test.cc.o.d"
  "CMakeFiles/cache_tests.dir/cache/stack_distance_test.cc.o"
  "CMakeFiles/cache_tests.dir/cache/stack_distance_test.cc.o.d"
  "CMakeFiles/cache_tests.dir/cache/sweep_test.cc.o"
  "CMakeFiles/cache_tests.dir/cache/sweep_test.cc.o.d"
  "cache_tests"
  "cache_tests.pdb"
  "cache_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
