# Empty compiler generated dependencies file for bench_fig5_table6_cache.
# This may be replaced when dependencies are built.
