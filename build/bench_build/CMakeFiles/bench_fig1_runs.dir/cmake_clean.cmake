file(REMOVE_RECURSE
  "../bench/bench_fig1_runs"
  "../bench/bench_fig1_runs.pdb"
  "CMakeFiles/bench_fig1_runs.dir/bench_fig1_runs.cc.o"
  "CMakeFiles/bench_fig1_runs.dir/bench_fig1_runs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_runs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
