# Empty dependencies file for bench_fig1_runs.
# This may be replaced when dependencies are built.
