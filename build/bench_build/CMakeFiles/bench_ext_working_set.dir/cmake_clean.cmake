file(REMOVE_RECURSE
  "../bench/bench_ext_working_set"
  "../bench/bench_ext_working_set.pdb"
  "CMakeFiles/bench_ext_working_set.dir/bench_ext_working_set.cc.o"
  "CMakeFiles/bench_ext_working_set.dir/bench_ext_working_set.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_working_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
