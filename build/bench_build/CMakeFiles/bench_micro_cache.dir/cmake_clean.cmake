file(REMOVE_RECURSE
  "../bench/bench_micro_cache"
  "../bench/bench_micro_cache.pdb"
  "CMakeFiles/bench_micro_cache.dir/bench_micro_cache.cc.o"
  "CMakeFiles/bench_micro_cache.dir/bench_micro_cache.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
