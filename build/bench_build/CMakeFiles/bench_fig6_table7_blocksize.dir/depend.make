# Empty dependencies file for bench_fig6_table7_blocksize.
# This may be replaced when dependencies are built.
