file(REMOVE_RECURSE
  "../bench/bench_fig6_table7_blocksize"
  "../bench/bench_fig6_table7_blocksize.pdb"
  "CMakeFiles/bench_fig6_table7_blocksize.dir/bench_fig6_table7_blocksize.cc.o"
  "CMakeFiles/bench_fig6_table7_blocksize.dir/bench_fig6_table7_blocksize.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_table7_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
