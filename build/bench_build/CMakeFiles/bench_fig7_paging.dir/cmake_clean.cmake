file(REMOVE_RECURSE
  "../bench/bench_fig7_paging"
  "../bench/bench_fig7_paging.pdb"
  "CMakeFiles/bench_fig7_paging.dir/bench_fig7_paging.cc.o"
  "CMakeFiles/bench_fig7_paging.dir/bench_fig7_paging.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
