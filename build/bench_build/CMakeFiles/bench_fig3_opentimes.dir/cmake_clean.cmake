file(REMOVE_RECURSE
  "../bench/bench_fig3_opentimes"
  "../bench/bench_fig3_opentimes.pdb"
  "CMakeFiles/bench_fig3_opentimes.dir/bench_fig3_opentimes.cc.o"
  "CMakeFiles/bench_fig3_opentimes.dir/bench_fig3_opentimes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_opentimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
