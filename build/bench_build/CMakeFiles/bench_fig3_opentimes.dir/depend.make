# Empty dependencies file for bench_fig3_opentimes.
# This may be replaced when dependencies are built.
