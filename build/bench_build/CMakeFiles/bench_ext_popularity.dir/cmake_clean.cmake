file(REMOVE_RECURSE
  "../bench/bench_ext_popularity"
  "../bench/bench_ext_popularity.pdb"
  "CMakeFiles/bench_ext_popularity.dir/bench_ext_popularity.cc.o"
  "CMakeFiles/bench_ext_popularity.dir/bench_ext_popularity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
