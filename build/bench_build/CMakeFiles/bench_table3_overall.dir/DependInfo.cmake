
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_overall.cc" "bench_build/CMakeFiles/bench_table3_overall.dir/bench_table3_overall.cc.o" "gcc" "bench_build/CMakeFiles/bench_table3_overall.dir/bench_table3_overall.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench_build/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bsdtrace_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/bsdtrace_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/bsdtrace_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bsdtrace_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/bsdtrace_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/bsdtrace_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bsdtrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bsdtrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
