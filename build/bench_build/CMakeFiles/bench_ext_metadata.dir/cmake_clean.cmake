file(REMOVE_RECURSE
  "../bench/bench_ext_metadata"
  "../bench/bench_ext_metadata.pdb"
  "CMakeFiles/bench_ext_metadata.dir/bench_ext_metadata.cc.o"
  "CMakeFiles/bench_ext_metadata.dir/bench_ext_metadata.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
