file(REMOVE_RECURSE
  "../bench/bench_fig2_filesizes"
  "../bench/bench_fig2_filesizes.pdb"
  "CMakeFiles/bench_fig2_filesizes.dir/bench_fig2_filesizes.cc.o"
  "CMakeFiles/bench_fig2_filesizes.dir/bench_fig2_filesizes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_filesizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
