file(REMOVE_RECURSE
  "../bench/bench_ablation_flush"
  "../bench/bench_ablation_flush.pdb"
  "CMakeFiles/bench_ablation_flush.dir/bench_ablation_flush.cc.o"
  "CMakeFiles/bench_ablation_flush.dir/bench_ablation_flush.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_flush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
