file(REMOVE_RECURSE
  "../bench/bench_table5_sequentiality"
  "../bench/bench_table5_sequentiality.pdb"
  "CMakeFiles/bench_table5_sequentiality.dir/bench_table5_sequentiality.cc.o"
  "CMakeFiles/bench_table5_sequentiality.dir/bench_table5_sequentiality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_sequentiality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
