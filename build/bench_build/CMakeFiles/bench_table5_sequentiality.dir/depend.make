# Empty dependencies file for bench_table5_sequentiality.
# This may be replaced when dependencies are built.
