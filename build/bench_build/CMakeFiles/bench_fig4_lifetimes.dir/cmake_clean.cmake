file(REMOVE_RECURSE
  "../bench/bench_fig4_lifetimes"
  "../bench/bench_fig4_lifetimes.pdb"
  "CMakeFiles/bench_fig4_lifetimes.dir/bench_fig4_lifetimes.cc.o"
  "CMakeFiles/bench_fig4_lifetimes.dir/bench_fig4_lifetimes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_lifetimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
