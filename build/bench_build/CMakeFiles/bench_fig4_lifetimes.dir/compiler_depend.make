# Empty compiler generated dependencies file for bench_fig4_lifetimes.
# This may be replaced when dependencies are built.
