# Empty dependencies file for bench_ext_stack_distance.
# This may be replaced when dependencies are built.
