file(REMOVE_RECURSE
  "../bench/bench_ext_stack_distance"
  "../bench/bench_ext_stack_distance.pdb"
  "CMakeFiles/bench_ext_stack_distance.dir/bench_ext_stack_distance.cc.o"
  "CMakeFiles/bench_ext_stack_distance.dir/bench_ext_stack_distance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_stack_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
