file(REMOVE_RECURSE
  "../bench/bench_micro_trace"
  "../bench/bench_micro_trace.pdb"
  "CMakeFiles/bench_micro_trace.dir/bench_micro_trace.cc.o"
  "CMakeFiles/bench_micro_trace.dir/bench_micro_trace.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
