file(REMOVE_RECURSE
  "../bench/bench_ablation_billing"
  "../bench/bench_ablation_billing.pdb"
  "CMakeFiles/bench_ablation_billing.dir/bench_ablation_billing.cc.o"
  "CMakeFiles/bench_ablation_billing.dir/bench_ablation_billing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_billing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
