file(REMOVE_RECURSE
  "../bench/bench_table4_activity"
  "../bench/bench_table4_activity.pdb"
  "CMakeFiles/bench_table4_activity.dir/bench_table4_activity.cc.o"
  "CMakeFiles/bench_table4_activity.dir/bench_table4_activity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
