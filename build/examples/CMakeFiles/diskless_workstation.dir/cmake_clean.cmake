file(REMOVE_RECURSE
  "CMakeFiles/diskless_workstation.dir/diskless_workstation.cpp.o"
  "CMakeFiles/diskless_workstation.dir/diskless_workstation.cpp.o.d"
  "diskless_workstation"
  "diskless_workstation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diskless_workstation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
