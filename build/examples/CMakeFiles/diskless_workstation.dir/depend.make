# Empty dependencies file for diskless_workstation.
# This may be replaced when dependencies are built.
