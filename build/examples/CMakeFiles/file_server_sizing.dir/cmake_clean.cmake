file(REMOVE_RECURSE
  "CMakeFiles/file_server_sizing.dir/file_server_sizing.cpp.o"
  "CMakeFiles/file_server_sizing.dir/file_server_sizing.cpp.o.d"
  "file_server_sizing"
  "file_server_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_server_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
