# Empty dependencies file for file_server_sizing.
# This may be replaced when dependencies are built.
