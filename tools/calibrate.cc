// Developer calibration tool: per-file byte accounting + headline stats.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/trace/reconstruct.h"
#include "src/workload/generator.h"

using namespace bsdtrace;

namespace {
struct ByteSink : ReconstructionSink {
  std::map<FileId, uint64_t> bytes;
  std::map<FileId, uint64_t> size_at_close;
  std::map<FileId, uint64_t> accesses;
  void OnTransfer(const Transfer& t) override { bytes[t.file_id] += t.length; }
  void OnAccess(const AccessSummary& a) override {
    size_at_close[a.file_id] = a.size_at_close;
    accesses[a.file_id] += 1;
  }
};
}  // namespace

int main(int argc, char** argv) {
  const double hours = argc > 1 ? atof(argv[1]) : 24;
  const char* name = argc > 2 ? argv[2] : "A5";
  GeneratorOptions opt;
  opt.duration = Duration::Hours(hours);
  auto result = GenerateTrace(ProfileByName(name), opt);
  ByteSink sink;
  Reconstruct(result.trace, &sink);
  std::vector<std::pair<uint64_t, FileId>> top;
  uint64_t total = 0;
  for (auto& [f, b] : sink.bytes) { top.push_back({b, f}); total += b; }
  std::sort(top.rbegin(), top.rend());
  printf("total bytes: %.1f MB over %zu files\n", total / 1048576.0, top.size());
  for (size_t i = 0; i < 15 && i < top.size(); ++i) {
    printf("  file %6lu: %8.2f MB (size ~%lu, %lu accesses)\n", top[i].second,
           top[i].first / 1048576.0, sink.size_at_close[top[i].second],
           sink.accesses[top[i].second]);
  }
  AnalyzeOptions analyze_options;
  analyze_options.trace = &result.trace;
  const TraceAnalysis a = Analyze(analyze_options).value();
  printf("\nrecords=%lu opens=%lu\n", a.overall.total_records, a.overall.Count(EventType::kOpen));
  printf("mix: create %.1f%% open %.1f%% seek %.1f%% unlink %.1f%% exec %.1f%%\n",
         100*a.overall.Fraction(EventType::kCreate), 100*a.overall.Fraction(EventType::kOpen),
         100*a.overall.Fraction(EventType::kSeek), 100*a.overall.Fraction(EventType::kUnlink),
         100*a.overall.Fraction(EventType::kExecve));
  printf("whole-file RO %.0f%% WO %.0f%% | wf bytes %.0f%% seq bytes %.0f%%\n",
         100*a.sequentiality.Mode(AccessMode::kReadOnly).WholeFileFraction(),
         100*a.sequentiality.Mode(AccessMode::kWriteOnly).WholeFileFraction(),
         100*a.sequentiality.WholeFileByteFraction(), 100*a.sequentiality.SequentialByteFraction());
  printf("runs<4KB %.0f%% | bytes in runs>=25KB %.0f%%\n",
         100*a.runs.by_runs.FractionAtOrBelow(4096),
         100*(1-a.runs.by_bytes.FractionAtOrBelow(25*1024)));
  printf("accesses to files<10KB %.0f%% | bytes via files<10KB %.0f%%\n",
         100*a.file_sizes.by_accesses.FractionAtOrBelow(10240),
         100*a.file_sizes.by_bytes.FractionAtOrBelow(10240));
  printf("open<0.5s %.0f%% <10s %.0f%%\n", 100*a.open_times.seconds.FractionAtOrBelow(0.5),
         100*a.open_times.seconds.FractionAtOrBelow(10));
  printf("lifetime: files<30s %.0f%% <180s %.0f%% spike[179,181] %.0f%% | bytes<30s %.0f%% <300s %.0f%%\n",
         100*a.lifetimes.by_files.FractionAtOrBelow(30),
         100*a.lifetimes.by_files.FractionAtOrBelow(180.5),
         100*a.lifetimes.FileFractionIn(179,181),
         100*a.lifetimes.by_bytes.FractionAtOrBelow(30),
         100*a.lifetimes.by_bytes.FractionAtOrBelow(300));
  printf("active users 10min: avg %.1f max %ld | tput/user 10min %.0f B/s 10s %.0f B/s\n",
         a.activity.ten_minute.active_users.mean(), a.activity.ten_minute.max_active_users,
         a.activity.ten_minute.throughput_per_user.mean(),
         a.activity.ten_second.throughput_per_user.mean());
  printf("intervals: <0.5s %.0f%% <10s %.0f%%\n",
         100*a.overall.inter_event_interval_seconds.FractionAtOrBelow(0.5),
         100*a.overall.inter_event_interval_seconds.FractionAtOrBelow(10));
  return 0;
}
