// Streaming trace pipeline CLI; the implementation lives in
// src/core/trace_stream_cli.{h,cc} so the CLI tests can drive it in-process.

#include "src/core/trace_stream_cli.h"

int main(int argc, char** argv) { return bsdtrace::TraceStreamMain(argc, argv); }
