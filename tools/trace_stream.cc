// Streaming trace pipeline CLI: generate a trace straight to disk through
// the spill-and-merge engine, analyze a trace file without loading it into
// memory, or print a file's header.  The generate-to-file → analyze-from-file
// recipe in EXPERIMENTS.md; also the CI low-memory smoke test's workhorse.
//
//   trace_stream generate <out.trc> [profile] [hours] [shards] [threads] [seed]
//   trace_stream analyze  <in.trc> [--threads=N]
//   trace_stream info     <in.trc>
//
// `analyze` runs the segmented parallel analyzer on v3 files with a block
// index (bit-identical to the serial pass; --threads=1 forces serial, the
// default 0 uses hardware concurrency).  `info` verifies every block
// checksum and the footer index on the way through and exits non-zero on
// corruption.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/analysis/analyzer.h"
#include "src/core/experiments.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_source.h"
#include "src/trace/validate.h"
#include "src/workload/profile.h"
#include "src/workload/sharded_generator.h"

using namespace bsdtrace;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: trace_stream generate <out.trc> [profile=A5] [hours=6] "
               "[shards=8] [threads=0] [seed=19851201]\n"
               "       trace_stream analyze  <in.trc> [--threads=N]\n"
               "       trace_stream info     <in.trc>\n");
  return 2;
}

int Generate(int argc, char** argv) {
  if (argc < 1) {
    return Usage();
  }
  const std::string out_path = argv[0];
  ShardedGeneratorOptions options;
  options.base.seed = 19851201;
  options.base.duration = Duration::Hours(argc > 2 ? std::atof(argv[2]) : 6.0);
  options.shard_count = argc > 3 ? std::atoi(argv[3]) : 8;
  options.threads = argc > 4 ? std::atoi(argv[4]) : 0;
  if (argc > 5) {
    options.base.seed = std::strtoull(argv[5], nullptr, 10);
  }
  const MachineProfile profile = ProfileByName(argc > 1 ? argv[1] : "A5");

  auto stats = GenerateTraceShardedToFile(profile, options, out_path);
  if (!stats.ok()) {
    std::fprintf(stderr, "generate failed: %s\n", stats.status().message().c_str());
    return 1;
  }
  const ShardedStreamStats& s = stats.value();
  std::printf("wrote %s: %llu records (%s)\n", out_path.c_str(),
              static_cast<unsigned long long>(s.records_streamed),
              s.header.description.c_str());
  std::printf("spilled %.1f MB across %d shards; fsck %s\n",
              static_cast<double>(s.spill_bytes_written) / 1048576.0, options.shard_count,
              s.fsck.ok() ? "clean" : s.fsck.Summary().c_str());
  return s.fsck.ok() ? 0 : 1;
}

int Analyze(int argc, char** argv) {
  const char* path = argv[0];
  unsigned threads = 0;  // hardware concurrency
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
    } else {
      return Usage();
    }
  }
  auto analysis = AnalyzeTraceFile(path, threads);
  if (!analysis.ok()) {
    std::fprintf(stderr, "analyze failed: %s\n", analysis.status().message().c_str());
    return 1;
  }
  TraceFileSource source(path);  // header only, for the table label
  const std::string label = source.status().ok() ? source.header().machine : path;
  const std::vector<NamedAnalysis> named = {{label, &analysis.value()}};
  std::fputs(RenderTable3(named).c_str(), stdout);
  std::fputs(RenderTable4(named).c_str(), stdout);
  std::fputs(RenderTable5(named).c_str(), stdout);
  return 0;
}

int Info(const char* path) {
  TraceFileSource source(path);
  if (!source.status().ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", path, source.status().message().c_str());
    return 1;
  }
  std::printf("machine:     %s\n", source.header().machine.c_str());
  std::printf("description: %s\n", source.header().description.c_str());
  if (source.size_hint() >= 0) {
    std::printf("declared:    %lld records\n", static_cast<long long>(source.size_hint()));
  } else {
    std::printf("declared:    unknown (v1 or streamed file)\n");
  }

  // Full integrity pass: decodes every record, verifies v3 block checksums,
  // and cross-checks the footer index against the blocks.
  const TraceFileCheck check = CheckTraceFile(path);
  std::printf("format:      v%d\n", check.version);
  if (check.has_index) {
    std::printf("index:       %llu blocks, %llu records indexed\n",
                static_cast<unsigned long long>(check.index_entries),
                static_cast<unsigned long long>(check.indexed_records));
  } else if (check.version == 3) {
    std::printf("index:       none (sequential-only v3 file)\n");
  } else {
    std::printf("index:       n/a (v%d has no block index)\n", check.version);
  }
  if (check.version == 3) {
    std::printf("checksums:   %llu blocks %s\n",
                static_cast<unsigned long long>(check.blocks_verified),
                check.ok() ? "verified" : "scanned before failure");
  }
  if (!check.ok()) {
    std::fprintf(stderr, "integrity check failed after %llu records: %s\n",
                 static_cast<unsigned long long>(check.records),
                 check.status.message().c_str());
    return 1;
  }
  std::printf("records:     %llu\n", static_cast<unsigned long long>(check.records));
  std::printf("span:        %.2f simulated hours\n",
              (check.last_time - SimTime::Origin()).hours());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  const char* cmd = argv[1];
  if (std::strcmp(cmd, "generate") == 0) {
    return Generate(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "analyze") == 0) {
    return Analyze(argc - 2, argv + 2);
  }
  if (std::strcmp(cmd, "info") == 0) {
    return Info(argv[2]);
  }
  return Usage();
}
